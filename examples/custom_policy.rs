//! Extending FlowCon: plug a custom policy into the worker runtime.
//!
//! Implements a "deadline-favoring" policy — the job that has been running
//! longest gets the largest share — purely against the public
//! `ResourcePolicy` trait, and races it against FlowCon and NA.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use std::collections::BTreeMap;

use flowcon_container::ContainerId;
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::metric::GrowthMeasurement;
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy, ResourcePolicy};
use flowcon_core::session::Session;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::time::{SimDuration, SimTime};

/// Oldest-job-first proportional shares, reconfigured every 15 s.
struct SeniorityPolicy {
    started: BTreeMap<ContainerId, SimTime>,
}

impl SeniorityPolicy {
    fn new() -> Self {
        SeniorityPolicy {
            started: BTreeMap::new(),
        }
    }
}

impl ResourcePolicy for SeniorityPolicy {
    fn name(&self) -> String {
        "Seniority".to_string()
    }

    fn initial_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(15))
    }

    fn reconfigure_into(
        &mut self,
        now: SimTime,
        measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration> {
        updates.clear();
        // Weight each container by its age (+1 s so newcomers get a sliver).
        let age = |m: &GrowthMeasurement| {
            let started = self.started.get(&m.id).copied().unwrap_or(now);
            now.saturating_since(started).as_secs_f64() + 1.0
        };
        let total: f64 = measures.iter().map(age).sum();
        updates.extend(
            measures
                .iter()
                .map(|m| (m.id, (age(m) / total).clamp(0.05, 1.0))),
        );
        Some(SimDuration::from_secs(15))
    }

    fn on_pool_change(&mut self, now: SimTime, pool_ids: &[ContainerId]) -> bool {
        for &id in pool_ids {
            self.started.entry(id).or_insert(now);
        }
        self.started.retain(|id, _| pool_ids.contains(id));
        true
    }
}

fn main() {
    let node = NodeConfig::default();
    let plan = WorkloadPlan::random_five(2024);

    let policies: Vec<Box<dyn ResourcePolicy>> = vec![
        Box::new(SeniorityPolicy::new()),
        Box::new(FlowConPolicy::new(FlowConConfig::default())),
        Box::new(FairSharePolicy::new()),
    ];

    println!("policy        makespan (s)   mean completion (s)");
    println!("--------------------------------------------------");
    for policy in policies {
        let result = Session::builder()
            .node(node)
            .plan(plan.clone())
            .policy_box(policy)
            .build()
            .run();
        let completions: Vec<f64> = result
            .output
            .completions
            .iter()
            .map(|c| c.completion_secs())
            .collect();
        let mean = completions.iter().sum::<f64>() / completions.len() as f64;
        println!(
            "{:<13} {:>10.1} {:>16.1}",
            result.output.policy,
            result.output.makespan_secs(),
            mean
        );
    }
}
