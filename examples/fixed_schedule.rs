//! The §5.3 fixed-schedule parameter study: sweep `itval` and `alpha` and
//! print the completion-time tables behind Figs. 3–6.
//!
//! ```sh
//! cargo run --release --example fixed_schedule
//! ```

use flowcon_bench::experiments::{default_node, fixed};
use flowcon_bench::report::completion_table;
use flowcon_metrics::summary::RunSummary;

fn main() {
    let node = default_node();
    for (title, sweep) in [
        ("alpha = 5%, itval in {20..60}  (Fig. 3)", fixed::fig3(node)),
        ("alpha = 10%, itval in {20..60} (Fig. 4)", fixed::fig4(node)),
        ("itval = 20, alpha in {1..15}%  (Fig. 5)", fixed::fig5(node)),
        ("itval = 30, alpha in {1..15}%  (Fig. 6)", fixed::fig6(node)),
    ] {
        println!("\n## {title}\n");
        let labels: Vec<String> = sweep
            .baseline
            .completions
            .iter()
            .map(|c| c.label.clone())
            .collect();
        let mut runs: Vec<&RunSummary> = sweep.cells.iter().map(|c| &c.summary).collect();
        runs.push(&sweep.baseline);
        print!("{}", completion_table(&runs, &labels));
        println!("\nMNIST (Tensorflow) reductions vs NA:");
        for (name, red) in sweep.reductions() {
            println!("  {name:<18} {red:5.1}%");
        }
    }
}
