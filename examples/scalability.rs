//! The §5.5 scalability study: 10 and 15 randomly submitted jobs
//! (Figs. 12 and 17), with the growth-efficiency exemplars of Figs. 13–14 —
//! plus the beyond-the-paper scale demo: a 2048-worker cluster driven
//! headless (CompletionsOnly recorder, O(completions) memory).
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use flowcon_bench::experiments::{default_node, scale, DEFAULT_SEED};
use flowcon_bench::report::completion_table;
use flowcon_cluster::{ClusterSession, PolicyKind};
use flowcon_core::config::FlowConConfig;
use flowcon_dl::workload::WorkloadPlan;

fn main() {
    let node = default_node();

    for (title, cmp) in [
        ("Ten jobs (Fig. 12)", scale::fig12(node, DEFAULT_SEED)),
        ("Fifteen jobs (Fig. 17)", scale::fig17(node, DEFAULT_SEED)),
    ] {
        println!("\n## {title}\n");
        let labels = cmp.labels();
        print!(
            "{}",
            completion_table(&[&cmp.flowcon, &cmp.baseline], &labels)
        );
        let (wins, losses) = cmp.wins_losses();
        println!(
            "FlowCon wins {wins} / loses {losses} of {} jobs",
            labels.len()
        );
        if let Some((job, red)) = cmp.biggest_winner() {
            println!("largest improvement: {job} ({red:.1}%)");
        }
        let (loser, winner) = cmp.exemplars();
        println!("Fig. 13/14 exemplars: loser = {loser}, winner = {winner}");
    }

    // Beyond the paper: a cluster three orders of magnitude past the
    // testbed, run headless.  No traces, no labels — just completions.
    let workers = 2048;
    let plan = WorkloadPlan::random_n(workers * 2, DEFAULT_SEED);
    let start = std::time::Instant::now();
    let run = ClusterSession::builder()
        .nodes(workers, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(plan)
        .build()
        .run();
    println!(
        "\n## Headless cluster: {workers} workers, {} jobs\n",
        run.placements.len()
    );
    println!(
        "completed {} jobs, makespan {:.1}s, mean completion {:.1}s, {} sim events in {:.0} ms wall",
        run.completed_jobs(),
        run.makespan_secs(),
        run.mean_completion_secs().unwrap_or(f64::NAN),
        run.events_processed(),
        start.elapsed().as_secs_f64() * 1e3,
    );
}
