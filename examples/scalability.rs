//! The §5.5 scalability study: 10 and 15 randomly submitted jobs
//! (Figs. 12 and 17), with the growth-efficiency exemplars of Figs. 13–14.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use flowcon_bench::experiments::{default_node, scale, DEFAULT_SEED};
use flowcon_bench::report::completion_table;

fn main() {
    let node = default_node();

    for (title, cmp) in [
        ("Ten jobs (Fig. 12)", scale::fig12(node, DEFAULT_SEED)),
        ("Fifteen jobs (Fig. 17)", scale::fig17(node, DEFAULT_SEED)),
    ] {
        println!("\n## {title}\n");
        let labels = cmp.labels();
        print!(
            "{}",
            completion_table(&[&cmp.flowcon, &cmp.baseline], &labels)
        );
        let (wins, losses) = cmp.wins_losses();
        println!(
            "FlowCon wins {wins} / loses {losses} of {} jobs",
            labels.len()
        );
        if let Some((job, red)) = cmp.biggest_winner() {
            println!("largest improvement: {job} ({red:.1}%)");
        }
        let (loser, winner) = cmp.exemplars();
        println!("Fig. 13/14 exemplars: loser = {loser}, winner = {winner}");
    }
}
