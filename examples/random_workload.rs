//! The §5.4 random-submission study: five models submitted at random times,
//! FlowCon under four parameter settings vs NA (Fig. 9).
//!
//! Pass a seed to try a different random schedule:
//!
//! ```sh
//! cargo run --release --example random_workload -- 1234
//! ```

use flowcon_bench::experiments::{default_node, random, DEFAULT_SEED};
use flowcon_bench::report::completion_table;
use flowcon_metrics::summary::RunSummary;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let cmp = random::fig9(default_node(), seed);

    println!("workload (seed {seed}):");
    for job in &cmp.plan.jobs {
        println!(
            "  {:<8} {:<22} arrives {:>6.1}s",
            job.label,
            format!("{:?}", job.model),
            job.arrival.as_secs_f64()
        );
    }

    println!();
    let labels = cmp.labels();
    let mut runs: Vec<&RunSummary> = cmp.flowcon.iter().collect();
    runs.push(&cmp.baseline);
    print!("{}", completion_table(&runs, &labels));

    println!();
    for (policy, wins, losses) in cmp.win_loss_rows() {
        let ties = labels.len() - wins - losses;
        println!("{policy:<16} {wins} wins, {losses} losses, {ties} ties vs NA");
    }
}
