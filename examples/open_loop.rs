//! Open-loop workloads end to end: a Poisson arrival stream feeding a
//! 64-worker headless cluster until a time horizon, then a single fully
//! observed worker under sustained load, then duration-hint-aware trace
//! binding.
//!
//! ```sh
//! cargo run --release --example open_loop
//! ```

use flowcon_repro::cluster::{ClusterSession, Horizon, PolicyKind, StreamSource};
use flowcon_repro::core::config::{FlowConConfig, NodeConfig};
use flowcon_repro::core::session::Session;
use flowcon_repro::sim::time::SimTime;
use flowcon_repro::workload::catalog::nominal_duration_secs;
use flowcon_repro::workload::{ArrivalProcess, ArrivalTrace, SyntheticStreamSource, TraceCatalog};

fn main() {
    // 1. Open-loop cluster: 64 workers, each pulling its own unbounded
    //    Poisson stream (0.01 jobs/s per worker), admissions stop at
    //    t = 600 s, admitted jobs drain.  No plan is ever materialized —
    //    arrivals are injected into live simulations.
    let node = NodeConfig::default().with_seed(0xF10C);
    let workers = 64;
    let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.01), 0xC1A5).unlabeled();
    let horizon = Horizon::until(SimTime::from_secs(600));
    let run = ClusterSession::builder()
        .nodes(workers, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .stream(&source, horizon)
        .build()
        .run();

    let totals = run.stream_totals();
    println!(
        "open-loop cluster: {workers} workers, {} submitted / {} completed",
        totals.submitted, totals.completed
    );
    println!(
        "  arrival {:.4} jobs/s vs completion {:.4} jobs/s, mean queue {:.1} jobs, utilization {:.1}%",
        totals.arrival_rate(),
        totals.completion_rate(),
        totals.mean_queue_depth(),
        100.0 * totals.utilization()
    );
    assert_eq!(totals.completed, totals.submitted, "admitted jobs drain");
    assert!(totals.submitted > 0, "a 600 s window admits jobs");
    assert!(totals.utilization() > 0.0 && totals.utilization() <= 1.0);

    // 2. One worker, fully observed: the same session machinery records
    //    the complete paper traces while jobs stream in mid-run.
    let single = SyntheticStreamSource::new(ArrivalProcess::poisson(0.02), 7);
    let result = Session::builder()
        .node(node)
        .policy(flowcon_repro::core::policy::FlowConPolicy::new(
            FlowConConfig::default(),
        ))
        .build()
        .run_stream(single.stream_for(0), Horizon::jobs(5));
    println!(
        "\nsingle worker: {} completions, makespan {:.1}s, {} usage series",
        result.output.completions.len(),
        result.output.makespan_secs(),
        result.output.cpu_usage.len()
    );
    assert_eq!(result.output.completions.len(), 5);

    // 3. Duration-hint-aware binding: the committed paper trace hints the
    //    §5.3 NA completion times; binding with hints pins each job's
    //    nominal solo duration to them.
    let doc =
        std::fs::read_to_string("traces/paper_fixed.csv").expect("run from the repository root");
    let trace = ArrivalTrace::parse(&doc).expect("committed trace parses");
    let hinted = TraceCatalog::table1()
        .with_duration_hints()
        .bind(&trace)
        .expect("all classes known");
    println!();
    for job in &hinted.jobs {
        println!(
            "{:<22} work_scale {:.3}, nominal solo duration {:.1}s",
            job.label,
            job.work_scale,
            nominal_duration_secs(job)
        );
    }
    let vae = &hinted.jobs[0];
    assert!((nominal_duration_secs(vae) - 394.0).abs() < 1e-6);
}
