//! Quickstart: run the paper's fixed three-job schedule under FlowCon and
//! under the unmodified platform (NA), and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::worker::{run_baseline, run_flowcon};
use flowcon_dl::workload::WorkloadPlan;

fn main() {
    // A single simulated worker node (capacity 1.0), deterministic seed.
    let node = NodeConfig::default();

    // §5.3's workload: VAE at 0 s, MNIST-PyTorch at 40 s, MNIST-TF at 80 s.
    let plan = WorkloadPlan::fixed_three();

    // FlowCon with the paper's sweet spot: alpha = 5%, itval = 20 s.
    let flowcon = run_flowcon(node, &plan, FlowConConfig::with_params(0.05, 20));
    let baseline = run_baseline(node, &plan);

    println!("policy          job                        completion (s)");
    println!("---------------------------------------------------------");
    for summary in [&flowcon.summary, &baseline.summary] {
        for c in &summary.completions {
            println!(
                "{:<15} {:<26} {:>8.1}",
                summary.policy,
                c.label,
                c.completion_secs()
            );
        }
    }
    println!(
        "\nmakespan: FlowCon {:.1}s vs NA {:.1}s ({:+.1}%)",
        flowcon.summary.makespan_secs(),
        baseline.summary.makespan_secs(),
        flowcon.summary.makespan_improvement_vs(&baseline.summary)
    );
    let job = "MNIST (Tensorflow)";
    if let Some(red) = flowcon.summary.reduction_vs(&baseline.summary, job) {
        println!("{job} completes {red:.1}% faster under FlowCon");
    }
    println!(
        "scheduler: {} Algorithm-1 runs, {} docker-update calls",
        flowcon.summary.algorithm_runs, flowcon.summary.update_calls
    );
}
