//! Quickstart: run the paper's fixed three-job schedule under FlowCon and
//! under the unmodified platform (NA), and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
use flowcon_core::session::Session;
use flowcon_dl::workload::WorkloadPlan;

fn main() {
    // A single simulated worker node (capacity 1.0), deterministic seed.
    let node = NodeConfig::default();

    // §5.3's workload: VAE at 0 s, MNIST-PyTorch at 40 s, MNIST-TF at 80 s.
    let plan = WorkloadPlan::fixed_three();

    // FlowCon with the paper's sweet spot: alpha = 5%, itval = 20 s.
    // A Session is the one entry point: node + plan + policy (+ optional
    // recorder/images/failures), then run.
    let flowcon = Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy(FlowConPolicy::new(FlowConConfig::with_params(0.05, 20)))
        .build()
        .run();
    let baseline = Session::builder()
        .node(node)
        .plan(plan)
        .policy(FairSharePolicy::new())
        .build()
        .run();

    println!("policy          job                        completion (s)");
    println!("---------------------------------------------------------");
    for summary in [&flowcon.output, &baseline.output] {
        for c in &summary.completions {
            println!(
                "{:<15} {:<26} {:>8.1}",
                summary.policy,
                c.label,
                c.completion_secs()
            );
        }
    }
    println!(
        "\nmakespan: FlowCon {:.1}s vs NA {:.1}s ({:+.1}%)",
        flowcon.output.makespan_secs(),
        baseline.output.makespan_secs(),
        flowcon.output.makespan_improvement_vs(&baseline.output)
    );
    let job = "MNIST (Tensorflow)";
    if let Some(red) = flowcon.output.reduction_vs(&baseline.output, job) {
        println!("{job} completes {red:.1}% faster under FlowCon");
    }
    println!(
        "scheduler: {} Algorithm-1 runs, {} docker-update calls",
        flowcon.output.algorithm_runs, flowcon.output.update_calls
    );
}
