//! Beyond the paper: FlowCon on a multi-worker cluster.
//!
//! The paper's architecture (Fig. 2) places FlowCon entirely worker-side
//! so it scales out trivially; this example runs 12 jobs over 1–3 workers
//! with different placement strategies.
//!
//! ```sh
//! cargo run --release --example cluster_placement
//! ```

use flowcon_cluster::{ClusterSession, LeastLoaded, PolicyKind, Spread};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;

fn main() {
    let node = NodeConfig::default();
    let plan = WorkloadPlan::random_n(12, 77);
    let policy = PolicyKind::FlowCon(FlowConConfig::default());

    println!("12 jobs, FlowCon-5%-20 on every worker\n");
    println!("workers  strategy      makespan (s)  completed");
    println!("-----------------------------------------------");

    for workers in 1..=3usize {
        // Strategies are equivalent at 1 worker, so only round-robin prints.
        let rr = ClusterSession::builder()
            .nodes(workers, node)
            .policy(policy)
            .plan(plan.clone())
            .build()
            .run();
        println!(
            "{workers:<8} {:<13} {:>10.1}  {:>9}",
            "round-robin",
            rr.makespan_secs(),
            rr.completed_jobs()
        );
        if workers > 1 {
            let spread = ClusterSession::builder()
                .nodes(workers, node)
                .policy(policy)
                .placement(Spread)
                .plan(plan.clone())
                .build()
                .run();
            println!(
                "{workers:<8} {:<13} {:>10.1}  {:>9}",
                "spread",
                spread.makespan_secs(),
                spread.completed_jobs()
            );
            let least = ClusterSession::builder()
                .nodes(workers, node)
                .policy(policy)
                .placement(LeastLoaded)
                .plan(plan.clone())
                .build()
                .run();
            println!(
                "{workers:<8} {:<13} {:>10.1}  {:>9}",
                "least-loaded",
                least.makespan_secs(),
                least.completed_jobs()
            );
        }
    }
}
