//! The real-thread execution mode: FlowCon throttling actual OS threads
//! through the token-bucket governor (no simulation involved).
//!
//! Jobs are scaled down to fractions of a CPU-second so the demo finishes
//! in a few wall-clock seconds.
//!
//! ```sh
//! cargo run --release --example realtime_demo
//! ```

use std::time::Duration;

use flowcon_core::config::FlowConConfig;
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
use flowcon_dl::models::{ModelId, ModelSpec};
use flowcon_dl::TrainingJob;
use flowcon_rt::{RtConfig, RtJob, RtRuntime};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimDuration;

fn jobs() -> Vec<RtJob> {
    let mut rng = SimRng::new(42);
    let mut make = |model: ModelId, label: &str, work: f64, arrival_ms: u64| {
        let mut spec = ModelSpec::of(model);
        spec.total_work = work; // shrink to demo scale
        spec.demand = 1.0;
        RtJob {
            job: TrainingJob::with_label(spec, label, &mut rng),
            arrival: Duration::from_millis(arrival_ms),
        }
    };
    vec![
        make(ModelId::Vae, "VAE (rt)", 1.2, 0),
        make(ModelId::MnistTorch, "MNIST-P (rt)", 0.5, 200),
        make(ModelId::MnistTf, "MNIST-T (rt)", 0.2, 400),
    ]
}

fn main() {
    let rt = RtConfig::default();

    println!("running 3 real-thread jobs under NA ...");
    let na = RtRuntime::new(rt, Box::new(FairSharePolicy::new())).run(jobs());

    println!("running 3 real-thread jobs under FlowCon ...");
    let config = FlowConConfig {
        initial_interval: SimDuration::from_millis(150),
        ..FlowConConfig::default()
    };
    let fc = RtRuntime::new(rt, Box::new(FlowConPolicy::new(config))).run(jobs());

    println!("\npolicy          job             completion (wall s)");
    println!("----------------------------------------------------");
    for summary in [&fc, &na] {
        for c in &summary.completions {
            println!(
                "{:<15} {:<15} {:>8.2}",
                summary.policy,
                c.label,
                c.completion_secs()
            );
        }
    }
    println!(
        "\nFlowCon issued {} updates over {} Algorithm-1 runs on live threads",
        fc.update_calls, fc.algorithm_runs
    );
}
