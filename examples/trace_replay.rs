//! Trace-driven workloads end to end: parse an arrival trace, bind it
//! onto the model catalog, replay it under FlowCon and NA, then stream a
//! synthetic arrival process across a headless cluster.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use flowcon_repro::cluster::{ClusterSession, PolicyKind};
use flowcon_repro::core::config::{FlowConConfig, NodeConfig};
use flowcon_repro::core::session::Session;
use flowcon_repro::workload::{ArrivalProcess, ArrivalTrace, SyntheticSource, TraceCatalog};

/// The committed paper-faithful trace (§5.3's fixed schedule).
const PAPER_TRACE: &str = include_str!("../traces/paper_fixed.csv");

fn main() {
    // 1. Parse + bind: trace classes (`vae`, `mnist-tf`, ...) resolve to
    //    the calibrated Table-1 models.
    let trace = ArrivalTrace::parse(PAPER_TRACE).expect("committed trace parses");
    let bound = TraceCatalog::table1()
        .bind(&trace)
        .expect("all classes known");
    println!("parsed {} arrivals from the paper trace", bound.len());

    // 2. Replay on one worker under both policies.  `.plan()` accepts the
    //    bound trace directly.
    let node = NodeConfig::default().with_seed(0xF10C);
    let run = |policy: PolicyKind| {
        Session::builder()
            .node(node)
            .plan(&bound)
            .policy_box(policy.build())
            .build()
            .run()
    };
    let fc = run(PolicyKind::FlowCon(FlowConConfig::default()));
    let na = run(PolicyKind::Baseline);
    println!("\n{:<22} {:>10} {:>10}", "job", "FlowCon", "NA");
    for c in &fc.output.completions {
        let na_secs = na.output.completion_of(&c.label).unwrap_or(f64::NAN);
        println!(
            "{:<22} {:>9.1}s {:>9.1}s",
            c.label,
            c.completion_secs(),
            na_secs
        );
    }
    println!(
        "{:<22} {:>9.1}s {:>9.1}s",
        "makespan",
        fc.output.makespan_secs(),
        na.output.makespan_secs()
    );

    // 3. Stream a bursty synthetic process across a headless cluster: the
    //    PlanSource hands each worker its own deterministic plan slice —
    //    no per-worker plans are materialized up front.
    let workers = 256;
    let source =
        SyntheticSource::new(ArrivalProcess::bursty(0.4, 0.0, 25.0, 75.0), 2, 0xB025).unlabeled();
    let cluster = ClusterSession::builder()
        .nodes(workers, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .source(&source)
        .build()
        .run();
    println!(
        "\nbursty cluster: {} workers, {} jobs completed, makespan {:.1}s, {} events",
        workers,
        cluster.completed_jobs(),
        cluster.makespan_secs(),
        cluster.events_processed()
    );
    assert_eq!(cluster.completed_jobs(), workers * 2);
}
