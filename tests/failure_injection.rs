//! Failure injection: crashed containers must be detected by the
//! Finished-Cons listener, their resources released, and the rest of the
//! workload must proceed — under both FlowCon and NA.

use flowcon_core::config::FlowConConfig;
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
use flowcon_core::session::SessionBuilder;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::time::SimTime;

/// A session builder preconfigured with the default FlowCon policy.
fn flowcon(plan: WorkloadPlan) -> SessionBuilder {
    flowcon_core::session::Session::builder()
        .plan(plan)
        .policy(FlowConPolicy::new(FlowConConfig::default()))
}

#[test]
fn crashed_job_reports_its_exit_code() {
    let plan = WorkloadPlan::fixed_three();
    let result = flowcon(plan)
        .failure("VAE (Pytorch)", SimTime::from_secs(100), 137)
        .build()
        .run();
    let s = &result.output;
    assert_eq!(s.completions.len(), 3, "all three containers exit");
    let vae = s
        .completions
        .iter()
        .find(|c| c.label == "VAE (Pytorch)")
        .unwrap();
    assert_eq!(vae.exit_code, 137);
    assert!(
        (vae.completion_secs() - 100.0).abs() < 1.0,
        "crash time {:.1}",
        vae.completion_secs()
    );
    // The survivors still converge cleanly.
    assert!(s
        .completions
        .iter()
        .filter(|c| c.label != "VAE (Pytorch)")
        .all(|c| c.exit_code == 0));
}

#[test]
fn survivors_speed_up_after_a_crash() {
    // Killing the long VAE at t=100 frees most of the node; MNIST-PyTorch
    // (which would otherwise share until ~220 s) must finish earlier.
    let plan = WorkloadPlan::fixed_three();
    let na = |plan: WorkloadPlan| {
        flowcon_core::session::Session::builder()
            .plan(plan)
            .policy(FairSharePolicy::new())
    };
    let healthy = na(plan.clone()).build().run();
    let crashed = na(plan)
        .failure("VAE (Pytorch)", SimTime::from_secs(100), 137)
        .build()
        .run();
    let healthy_mnist = healthy
        .output
        .completion_of("MNIST (Pytorch)")
        .expect("completes");
    let crashed_mnist = crashed
        .output
        .completion_of("MNIST (Pytorch)")
        .expect("completes");
    assert!(
        crashed_mnist < healthy_mnist - 10.0,
        "MNIST-P should reclaim the crashed VAE's share: {crashed_mnist:.1} vs {healthy_mnist:.1}"
    );
}

#[test]
fn crash_of_a_watched_container_does_not_wedge_flowcon() {
    // Crash the job FlowCon is actively throttling; the lists must purge it
    // and later reconfigurations must not reference it.
    let plan = WorkloadPlan::random_five(3);
    let victim = plan.jobs[0].label.clone();
    let result = flowcon(plan)
        .failure(&victim, SimTime::from_secs(300), 139)
        .build()
        .run();
    assert_eq!(result.output.completions.len(), 5);
    let crashed = result
        .output
        .completions
        .iter()
        .find(|c| c.label == victim)
        .unwrap();
    assert_eq!(crashed.exit_code, 139);
    // The run terminates (this assertion is the absence of a hang) and the
    // makespan is still dominated by a real job, not the crash.
    assert!(result.output.makespan_secs() > 300.0);
}

#[test]
fn failure_before_first_measurement_is_handled() {
    // Crash a job during warm-up (it has never produced an eval value):
    // the fresh-container path of Algorithm 1 must tolerate the removal.
    let plan = WorkloadPlan::fixed_three();
    let result = flowcon(plan)
        .failure("MNIST (Tensorflow)", SimTime::from_secs(81), 1)
        .build()
        .run();
    assert_eq!(result.output.completions.len(), 3);
    let mnist = result
        .output
        .completions
        .iter()
        .find(|c| c.label == "MNIST (Tensorflow)")
        .unwrap();
    assert_eq!(mnist.exit_code, 1);
    assert!(mnist.completion_secs() < 2.0);
}

#[test]
fn failure_targeting_unknown_label_is_a_noop() {
    let plan = WorkloadPlan::fixed_three();
    let result = flowcon(plan)
        .failure("No Such Job", SimTime::from_secs(50), 9)
        .build()
        .run();
    assert_eq!(result.output.completions.len(), 3);
    assert!(result.output.completions.iter().all(|c| c.exit_code == 0));
}
