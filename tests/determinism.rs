//! Reproducibility: identical seeds give bit-identical experiment results,
//! different seeds differ — across every layer.

use flowcon_bench::experiments::{fixed, flowcon_run as run_flowcon, random, scale};
use flowcon_cluster::{ClusterSession, PolicyKind, Spread};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;

fn node(seed: u64) -> NodeConfig {
    NodeConfig::default().with_seed(seed)
}

#[test]
fn worker_runs_reproduce_bitwise() {
    let plan = WorkloadPlan::random_n(10, 9);
    let a = run_flowcon(node(1), &plan, FlowConConfig::default());
    let b = run_flowcon(node(1), &plan, FlowConConfig::default());
    assert_eq!(a.output.completions, b.output.completions);
    assert_eq!(a.output.algorithm_runs, b.output.algorithm_runs);
    assert_eq!(a.output.update_calls, b.output.update_calls);
    assert_eq!(a.events_processed, b.events_processed);
    // Full trace equality, not just summaries.
    for (label, series) in a.output.cpu_usage.iter() {
        assert_eq!(
            Some(series.points()),
            b.output.cpu_usage.get(label).map(|s| s.points()),
            "cpu trace of {label} diverged"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let plan = WorkloadPlan::random_n(10, 9);
    let a = run_flowcon(node(1), &plan, FlowConConfig::default());
    let b = run_flowcon(node(2), &plan, FlowConConfig::default());
    // Same plan, different node seed -> different job-size jitter ->
    // different completions.
    assert_ne!(a.output.completions, b.output.completions);
}

#[test]
fn parallel_sweeps_equal_serial_reruns() {
    // The figure sweeps fan out on threads; determinism means a cell run
    // alone is identical to the same cell inside the sweep.
    let sweep = fixed::fig3(node(0xF10C));
    let alone = run_flowcon(
        node(0xF10C),
        &WorkloadPlan::fixed_three(),
        FlowConConfig::with_params(0.05, 30),
    );
    let cell = &sweep.cells[1]; // itval = 30
    assert_eq!(cell.summary.completions, alone.output.completions);
}

#[test]
fn experiments_reproduce_end_to_end() {
    let a = random::fig9(node(7), 7);
    let b = random::fig9(node(7), 7);
    for (x, y) in a.flowcon.iter().zip(&b.flowcon) {
        assert_eq!(x.completions, y.completions);
    }
    let s1 = scale::fig12(node(7), 7);
    let s2 = scale::fig12(node(7), 7);
    assert_eq!(s1.flowcon.completions, s2.flowcon.completions);
    assert_eq!(s1.exemplars(), s2.exemplars());
}

#[test]
fn cluster_runs_reproduce() {
    let plan = WorkloadPlan::random_n(9, 4);
    let run = |seed| {
        ClusterSession::builder()
            .nodes(3, node(seed))
            .policy(PolicyKind::Baseline)
            .placement(Spread)
            .plan(plan.clone())
            .build()
            .run()
            .workers
            .iter()
            .flat_map(|w| w.output.completions.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
