//! Integration tests pinning the paper's headline claims (the "shape"
//! criteria from DESIGN.md).  These are the tests that say "the
//! reproduction reproduces".

use flowcon_bench::experiments::{
    baseline_run, default_node, fig1, fixed, flowcon_run, random, scale, DEFAULT_SEED,
};
use flowcon_core::config::FlowConConfig;
use flowcon_dl::workload::WorkloadPlan;

/// §5.3 anchor: the NA baseline lands on the paper's absolute numbers.
#[test]
fn na_baseline_matches_paper_anchors() {
    let plan = WorkloadPlan::fixed_three();
    let na = baseline_run(default_node(), &plan).output;
    let makespan = na.makespan_secs();
    assert!(
        (makespan - 394.0).abs() < 394.0 * 0.05,
        "NA makespan {makespan:.1}s vs paper 394.0s"
    );
    let mnist_tf = na.completion_of("MNIST (Tensorflow)").unwrap();
    assert!(
        (mnist_tf - 84.7).abs() < 84.7 * 0.10,
        "MNIST-TF NA completion {mnist_tf:.1}s vs paper 84.7s"
    );
}

/// Headline claim: FlowCon reduces individual completion time by up to
/// ~42% "without sacrificing the overall makespan".
#[test]
fn headline_reduction_without_makespan_sacrifice() {
    let plan = WorkloadPlan::fixed_three();
    let na = baseline_run(default_node(), &plan).output;
    let best = fixed::ALPHAS
        .iter()
        .map(|&alpha| {
            let fc =
                flowcon_run(default_node(), &plan, FlowConConfig::with_params(alpha, 20)).output;
            let red = fc.reduction_vs(&na, "MNIST (Tensorflow)").unwrap();
            let makespan_ok = fc.makespan_improvement_vs(&na) > -2.0;
            (red, makespan_ok)
        })
        .collect::<Vec<_>>();
    assert!(
        best.iter().any(|&(red, _)| red > 30.0),
        "expected a >30% best-case reduction, got {best:?}"
    );
    assert!(
        best.iter().all(|&(_, ok)| ok),
        "some setting sacrificed the makespan: {best:?}"
    );
}

/// Figs. 3–4 shape: larger itval, smaller benefit for the tracked job.
#[test]
fn benefit_shrinks_with_interval() {
    let sweep = fixed::fig4(default_node());
    let reds: Vec<f64> = sweep.reductions().into_iter().map(|(_, r)| r).collect();
    // Compare the fast end (itval 20/30) against the slow end (50/60).
    let fast = (reds[0] + reds[1]) / 2.0;
    let slow = (reds[3] + reds[4]) / 2.0;
    assert!(
        fast > slow + 5.0,
        "expected reductions to shrink with itval: fast {fast:.1}% slow {slow:.1}%"
    );
    // Every setting still beats NA (Table 2: "FlowCon performs better than
    // NA in all the parameter settings").
    assert!(reds.iter().all(|&r| r > 0.0), "{reds:?}");
}

/// Fig. 5 shape: smaller alpha keeps jobs in NL longer and helps the
/// tracked job more.
#[test]
fn benefit_shrinks_with_alpha() {
    let sweep = fixed::fig5(default_node());
    let reds: Vec<f64> = sweep.reductions().into_iter().map(|(_, r)| r).collect();
    assert!(
        reds[0] > reds[4],
        "alpha=1% ({:.1}%) should beat alpha=15% ({:.1}%)",
        reds[0],
        reds[4]
    );
}

/// §5.4: FlowCon wins most of the five random jobs in every setting, the
/// makespan improves (paper: 1–5%), and only the early fast-converging job
/// pays a penalty.
///
/// Known deviation (see EXPERIMENTS.md): our synthetic early GRU instance
/// loses more than the paper's worst case (~12%), because Algorithm 1 pins
/// a converged job at the `1/(β·n)` bound for however long younger jobs
/// keep arriving, and the paper under-specifies β and the evaluation-value
/// scales that determine how long that is.  The *pattern* — early
/// fast-converger donates, late jobs win, makespan improves — matches.
#[test]
fn random_schedule_mostly_wins() {
    let cmp = random::fig9(default_node(), DEFAULT_SEED);
    for s in &cmp.flowcon {
        let (wins, _) = s.wins_losses_vs(&cmp.baseline);
        assert!(wins >= 3, "{}: only {wins} wins", s.policy);
        let makespan = s.makespan_improvement_vs(&cmp.baseline);
        assert!(
            makespan > 0.5 && makespan < 10.0,
            "{}: makespan improvement {makespan:.1}% outside the paper band",
            s.policy
        );
        // At the paper's showcased setting the loser's penalty stays
        // moderate; at the least favorable setting (large itval) it can
        // approach 2x — the documented deviation.
        let worst_cap = if s.policy == "FlowCon-3%-30" {
            -55.0
        } else {
            -95.0
        };
        for job in &cmp.plan.jobs {
            if let Some(red) = s.reduction_vs(&cmp.baseline, &job.label) {
                assert!(
                    red > worst_cap,
                    "{}: {} regressed {:.1}% — throttling ran away",
                    s.policy,
                    job.label,
                    -red
                );
            }
        }
    }
}

/// §5.5: at 10 jobs FlowCon wins a clear majority; at 15 jobs losses stay
/// small (paper: worst increase 5.7%... allow fluid-model slack).
#[test]
fn scalability_shapes() {
    let ten = scale::fig12(default_node(), DEFAULT_SEED);
    let (wins10, _) = ten.wins_losses();
    assert!(wins10 >= 6, "10 jobs: {wins10} wins");
    assert!(
        ten.flowcon.makespan_improvement_vs(&ten.baseline) > -3.0,
        "10-job makespan regressed"
    );

    let fifteen = scale::fig17(default_node(), DEFAULT_SEED);
    let (wins15, losses15) = fifteen.wins_losses();
    assert!(
        wins15 > losses15,
        "15 jobs: {wins15} wins vs {losses15} losses"
    );
}

/// Fig. 1/§2.2: the GRU converges to ~97% quality in a small fraction of
/// its runtime while logistic regression is near-linear.
#[test]
fn fig1_convergence_shapes() {
    let fig = fig1::run(default_node());
    let gru = fig1::time_fraction_to_quality(&fig, "RNN-GRU (Tensorflow)", 0.968).unwrap();
    let logreg =
        fig1::time_fraction_to_quality(&fig, "Logistic Regression (Tensorflow)", 0.968).unwrap();
    assert!(gru < 0.4, "GRU reached 96.8% quality at {gru:.2}");
    assert!(
        logreg > gru * 1.5,
        "LogReg ({logreg:.2}) should converge much later than GRU ({gru:.2})"
    );
}

/// Figs. 13–14 scale check: growth-efficiency traces span the magnitudes
/// the paper plots (losers < 0.1, winners can exceed 0.3).
#[test]
fn growth_efficiency_trace_scales() {
    let cmp = scale::fig12(default_node(), DEFAULT_SEED);
    let mut maxima: Vec<f64> = Vec::new();
    for (_, series) in cmp.flowcon.growth_efficiency.iter() {
        if let Some(m) = series.max_value() {
            maxima.push(m);
        }
    }
    assert!(!maxima.is_empty());
    let lo = maxima.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = maxima.iter().cloned().fold(0.0, f64::max);
    assert!(lo < 0.1, "some job should peak below 0.1, min peak {lo}");
    assert!(hi > 0.3, "some job should peak above 0.3, max peak {hi}");
}
