//! End-to-end integration: every layer of the stack working together —
//! daemon + allocator + policies + cluster + metrics.

use flowcon_cluster::{ClusterSession, PolicyKind, Spread};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
use flowcon_core::session::{Session, SessionResult};
use flowcon_dl::models::{ModelSpec, ALL_MODELS};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::export::{completions_csv, series_csv};
use flowcon_metrics::summary::RunSummary;

fn run_flowcon(
    node: NodeConfig,
    plan: &WorkloadPlan,
    config: FlowConConfig,
) -> SessionResult<RunSummary> {
    Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy(FlowConPolicy::new(config))
        .build()
        .run()
}

fn run_baseline(node: NodeConfig, plan: &WorkloadPlan) -> SessionResult<RunSummary> {
    Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy(FairSharePolicy::new())
        .build()
        .run()
}

#[test]
fn every_catalog_model_trains_to_completion() {
    for &model in &ALL_MODELS {
        let plan = WorkloadPlan::random_from(&[model], 5);
        let result = run_baseline(NodeConfig::default(), &plan);
        assert_eq!(result.output.completions.len(), 1, "{model:?}");
        let c = &result.output.completions[0];
        assert_eq!(c.exit_code, 0, "{model:?}");
        // Alone, completion ≈ total_work / demand (no contention).
        let spec = ModelSpec::of(model);
        let expected = spec.total_work / spec.demand;
        let got = c.completion_secs();
        assert!(
            (got - expected).abs() < expected * 0.08,
            "{model:?}: completion {got:.1}s vs expected ≈{expected:.1}s"
        );
    }
}

#[test]
fn all_policies_complete_the_same_workload() {
    let plan = WorkloadPlan::random_n(8, 21);
    for policy in [
        PolicyKind::Baseline,
        PolicyKind::FlowCon(FlowConConfig::default()),
        PolicyKind::StaticEqual,
        PolicyKind::QualityProportional {
            interval_secs: 30,
            floor: 0.05,
        },
    ] {
        let result = Session::builder()
            .plan(plan.clone())
            .policy_box(policy.build())
            .build()
            .run();
        assert_eq!(
            result.output.completions.len(),
            8,
            "{} dropped jobs",
            policy.name()
        );
        assert!(
            result.output.completions.iter().all(|c| c.exit_code == 0),
            "{} had failures",
            policy.name()
        );
    }
}

#[test]
fn cluster_spread_balances_and_finishes() {
    let plan = WorkloadPlan::random_n(12, 5);
    let result = ClusterSession::builder()
        .nodes(3, NodeConfig::default())
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .placement(Spread)
        .plan(plan.clone())
        .build()
        .run();
    assert_eq!(result.completed_jobs(), 12);
    // Spread: 4 jobs per worker.
    for w in 0..3 {
        let count = result.placements.iter().filter(|&&i| i == w).count();
        assert_eq!(count, 4, "worker {w} got {count} jobs");
    }
    // Cluster makespan beats the single-worker run of the same plan.
    let single = ClusterSession::builder()
        .nodes(1, NodeConfig::default())
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(plan)
        .build()
        .run();
    assert!(result.makespan_secs() < single.makespan_secs());
}

#[test]
fn csv_exports_are_well_formed() {
    let plan = WorkloadPlan::fixed_three();
    let fc = run_flowcon(
        NodeConfig::default(),
        &plan,
        FlowConConfig::with_params(0.05, 20),
    )
    .output;
    let csv = completions_csv(&[&fc]);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 3, "header + one row per job");
    assert_eq!(lines[0].split(',').count(), 6);
    for row in &lines[1..] {
        assert_eq!(row.split(',').count(), 6, "bad row: {row}");
    }

    let usage_csv = series_csv("cpu", &fc.cpu_usage);
    assert!(
        usage_csv.lines().count() > 100,
        "usage trace should be dense"
    );
    assert!(usage_csv.starts_with("series,label,t_s,value\n"));
}

#[test]
fn overhead_counters_track_backoff() {
    // With a lone long job, FlowCon converges to all-CL and backs off: the
    // number of algorithm runs must be far below naive itval ticking.
    let plan = WorkloadPlan::random_from(&[flowcon_dl::ModelId::Vae], 3);
    let fc = run_flowcon(NodeConfig::default(), &plan, FlowConConfig::default());
    let makespan = fc.output.makespan_secs();
    let naive_ticks = (makespan / 20.0) as u64;
    assert!(
        fc.output.algorithm_runs < naive_ticks,
        "back-off should cut runs: {} vs naive {naive_ticks}",
        fc.output.algorithm_runs
    );
    assert!(fc.scheduler_overhead_cpu_secs >= 0.0);
}
