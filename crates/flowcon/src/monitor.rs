//! The Container Monitor (§3.2.1).
//!
//! Tracks, per container, the last evaluation-function sample and the last
//! cumulative CPU-seconds reading, and turns the deltas into
//! [`GrowthMeasurement`]s at each algorithm tick: Eq. 1 from the evaluation
//! samples, Eq. 2 dividing by the *exact* average usage over the interval
//! (cumulative CPU-seconds delta / elapsed time — what `docker stats`
//! integration would yield).

use std::collections::BTreeMap;

use flowcon_container::{ContainerId, Daemon, Workload};
use flowcon_sim::time::SimTime;

use crate::metric::{progress_score, GrowthMeasurement};

/// Intervals shorter than this carry too little signal; the monitor then
/// reuses its previous measurement instead of rebasing.
const MIN_INTERVAL_SECS: f64 = 0.1;

#[derive(Debug, Clone)]
struct PerContainer {
    last_tick: SimTime,
    last_eval: Option<f64>,
    last_cumulative: flowcon_sim::ResourceVec,
    cached_progress: Option<f64>,
    cached_avg_usage: flowcon_sim::ResourceVec,
}

/// Per-container measurement state across algorithm ticks.
#[derive(Debug, Default, Clone)]
pub struct ContainerMonitor {
    state: BTreeMap<ContainerId, PerContainer>,
}

impl ContainerMonitor {
    /// A monitor with no tracked containers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measure every running container, updating baselines.
    ///
    /// Containers seen for the first time (or still warming up, i.e. no
    /// evaluation value yet) yield `growth: None`.
    pub fn measure<W: Workload>(
        &mut self,
        now: SimTime,
        daemon: &Daemon<W>,
    ) -> Vec<GrowthMeasurement> {
        let mut out = Vec::new();
        self.measure_into(now, daemon, &mut out);
        out
    }

    /// Allocation-free variant of [`ContainerMonitor::measure`]: clears
    /// `out` and refills it in place, so the per-tick caller reuses one
    /// buffer across the whole run.
    pub fn measure_into<W: Workload>(
        &mut self,
        now: SimTime,
        daemon: &Daemon<W>,
        out: &mut Vec<GrowthMeasurement>,
    ) {
        out.clear();
        for c in daemon.pool().iter().filter(|c| c.state().is_runnable()) {
            let id = c.id();
            let eval_now = c.workload().eval(now);
            let cumulative = c.stats().cumulative();
            let limit = c.limits().cpu_limit();

            let m = match self.state.get_mut(&id) {
                None => {
                    // First observation: establish the baseline.
                    self.state.insert(
                        id,
                        PerContainer {
                            last_tick: now,
                            last_eval: eval_now,
                            last_cumulative: cumulative,
                            cached_progress: None,
                            cached_avg_usage: flowcon_sim::ResourceVec::ZERO,
                        },
                    );
                    GrowthMeasurement {
                        id,
                        progress: None,
                        avg_usage: flowcon_sim::ResourceVec::ZERO,
                        cpu_limit: limit,
                    }
                }
                Some(s) => {
                    let dt = now.saturating_since(s.last_tick).as_secs_f64();
                    if dt < MIN_INTERVAL_SECS {
                        // Interrupt fired almost immediately after the last
                        // tick: reuse the previous measurement.
                        GrowthMeasurement {
                            id,
                            progress: s.cached_progress,
                            avg_usage: s.cached_avg_usage,
                            cpu_limit: limit,
                        }
                    } else {
                        // Average usage per resource: cumulative delta / dt.
                        let mut avg_usage = flowcon_sim::ResourceVec::ZERO;
                        for kind in flowcon_sim::RESOURCE_KINDS {
                            avg_usage.set(
                                kind,
                                (cumulative.get(kind) - s.last_cumulative.get(kind)) / dt,
                            );
                        }
                        let progress = match (eval_now, s.last_eval) {
                            (Some(e), Some(p)) => progress_score(e, p, dt),
                            _ => None,
                        };
                        s.last_tick = now;
                        s.last_eval = eval_now.or(s.last_eval);
                        s.last_cumulative = cumulative;
                        s.cached_progress = progress;
                        s.cached_avg_usage = avg_usage;
                        GrowthMeasurement {
                            id,
                            progress,
                            avg_usage,
                            cpu_limit: limit,
                        }
                    }
                }
            };
            out.push(m);
        }
    }

    /// Drop state for a finished container (resource release, Algorithm 2
    /// line 15).
    pub fn forget(&mut self, id: ContainerId) {
        self.state.remove(&id);
    }

    /// Number of tracked containers.
    pub fn tracked(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_container::workload::FixedWork;
    use flowcon_container::{ImageRegistry, ResourceLimits};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn setup() -> (Daemon<FixedWork>, ContainerId) {
        let mut d = Daemon::new(ImageRegistry::with_dl_defaults());
        let id = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("toy", 100.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        (d, id)
    }

    #[test]
    fn first_measurement_is_fresh() {
        let (d, id) = setup();
        let mut mon = ContainerMonitor::new();
        let ms = mon.measure(t(0), &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, id);
        assert_eq!(ms[0].growth(), None);
        assert_eq!(mon.tracked(), 1);
    }

    #[test]
    fn second_measurement_computes_growth_from_deltas() {
        let (mut d, id) = setup();
        let mut mon = ContainerMonitor::new();
        mon.measure(t(0), &d);
        // Run 20 s at rate 0.5: FixedWork loss falls 1.0 -> 0.9.
        d.advance(t(20), &[id], &[0.5], &[1.0], 20.0);
        let ms = mon.measure(t(20), &d);
        // P = |0.9 - 1.0| / 20 = 0.005; R = 10 cpu-s / 20 s = 0.5; G = 0.01.
        let g = ms[0].growth().expect("growth available");
        assert!((g - 0.01).abs() < 1e-9, "G = {g}");
        assert!((ms[0].avg_cpu() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tiny_interval_reuses_cached_measurement() {
        let (mut d, id) = setup();
        let mut mon = ContainerMonitor::new();
        mon.measure(t(0), &d);
        d.advance(t(20), &[id], &[0.5], &[1.0], 20.0);
        let first = mon.measure(t(20), &d);
        // An interrupt 1 ms later must not rebase onto a 1 ms interval.
        let again = mon.measure(SimTime::from_micros(20_001_000), &d);
        assert_eq!(again[0].growth(), first[0].growth());
        assert_eq!(again[0].avg_cpu(), first[0].avg_cpu());
    }

    #[test]
    fn forget_drops_state() {
        let (d, id) = setup();
        let mut mon = ContainerMonitor::new();
        mon.measure(t(0), &d);
        mon.forget(id);
        assert_eq!(mon.tracked(), 0);
    }

    #[test]
    fn paused_containers_are_not_measured() {
        let (mut d, id) = setup();
        let mut mon = ContainerMonitor::new();
        mon.measure(t(0), &d);
        d.set_paused(id, true, t(1)).unwrap();
        let ms = mon.measure(t(2), &d);
        assert!(ms.is_empty());
    }
}
