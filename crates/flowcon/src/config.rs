//! Configuration of FlowCon and of the simulated worker node.

use flowcon_sim::contention::ContentionModel;
use flowcon_sim::resources::ResourceKind;
use flowcon_sim::time::SimDuration;

/// FlowCon's tunables (§5.2 names them: α and itval; β appears in
/// Algorithm 1's lower bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConConfig {
    /// Threshold α classifying jobs into NL/WL/CL (paper sweeps 1%–15%).
    pub alpha: f64,
    /// β in the Completing-list lower bound `1/(β·|cid|)`.
    ///
    /// The paper never states β numerically, but Fig. 7 shows a
    /// nearly-converged VAE pinned at 0.25 of the node with two containers
    /// present, i.e. `1/(2·2)` — hence the default of 2.
    pub beta: f64,
    /// Initial executor interval `itval` (paper sweeps 20–60 s).
    pub initial_interval: SimDuration,
    /// Enable the exponential back-off of Algorithm 1 line 17.
    pub backoff: bool,
    /// Prior growth efficiency assumed for containers that have not yet
    /// produced two measurements.
    ///
    /// Algorithm 1 needs `ΣG` over all containers, but a fresh container has
    /// no G yet.  The paper's behaviour (Fig. 7: a new job gets limit 1 and
    /// an old slow job drops to the lower bound) implies fresh jobs are
    /// assumed fast; we model that as `Ĝ = max(maxᵢ Gᵢ, fresh_prior)`.
    /// The default (0.2) is the growth efficiency of a healthy young job.
    pub fresh_prior: f64,
    /// Which resource's growth efficiency drives Algorithm 1 (Eq. 2 is
    /// defined per resource; the paper's jobs are compute-bound so its
    /// evaluation — and this default — use CPU).
    pub resource: ResourceKind,
}

impl Default for FlowConConfig {
    fn default() -> Self {
        FlowConConfig {
            alpha: 0.05,
            beta: 2.0,
            initial_interval: SimDuration::from_secs(20),
            backoff: true,
            fresh_prior: 0.2,
            resource: ResourceKind::Cpu,
        }
    }
}

impl FlowConConfig {
    /// Config with the given α (as a fraction) and interval in seconds —
    /// the two knobs every figure sweeps.
    pub fn with_params(alpha: f64, itval_secs: u64) -> Self {
        FlowConConfig {
            alpha,
            initial_interval: SimDuration::from_secs(itval_secs),
            ..Default::default()
        }
    }

    /// Policy display name in the figures' style, e.g. `FlowCon-5%-20`.
    pub fn display_name(&self) -> String {
        format!(
            "FlowCon-{}%-{}",
            (self.alpha * 100.0).round() as u32,
            self.initial_interval.as_secs_f64().round() as u64
        )
    }
}

/// Parameters of the simulated worker node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Total CPU capacity (1.0 = the whole node, the paper's normalization).
    pub capacity: f64,
    /// Interference model (see `flowcon-sim::contention`).
    pub contention: ContentionModel,
    /// Sampling interval for usage/eval traces.
    pub sample_interval: SimDuration,
    /// CPU-seconds consumed by one run of Algorithm 1 (scheduler overhead;
    /// the paper's Remark ties overhead to invocation frequency).
    pub algo_cost_cpu_secs: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            capacity: 1.0,
            contention: ContentionModel::default(),
            sample_interval: SimDuration::from_secs(1),
            algo_cost_cpu_secs: 0.05,
            seed: 0xF10C,
        }
    }
}

impl NodeConfig {
    /// Same node with a different seed (for replicated experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweet_spot() {
        let c = FlowConConfig::default();
        assert_eq!(c.alpha, 0.05);
        assert_eq!(c.beta, 2.0);
        assert_eq!(c.initial_interval, SimDuration::from_secs(20));
        assert!(c.backoff);
    }

    #[test]
    fn display_name_matches_figures() {
        assert_eq!(
            FlowConConfig::with_params(0.10, 20).display_name(),
            "FlowCon-10%-20"
        );
        assert_eq!(
            FlowConConfig::with_params(0.03, 30).display_name(),
            "FlowCon-3%-30"
        );
    }

    #[test]
    fn node_seed_override() {
        let n = NodeConfig::default().with_seed(7);
        assert_eq!(n.seed, 7);
        assert_eq!(n.capacity, 1.0);
    }
}
