//! The dense (structure-of-arrays) headless worker simulation.
//!
//! [`WorkerSim`](crate::worker) models one worker with per-container heap
//! objects: a `Daemon` holding boxed `Container`s in a `BTreeMap` pool, a
//! `BTreeMap`-backed [`ContainerMonitor`](crate::monitor::ContainerMonitor),
//! and an event log.  That layout is right for recorded experiments, but at
//! one million workers the headless cluster path is memory- and cache-bound
//! on exactly those objects.
//!
//! This module is the same simulation over flat arrays.  Container ids are
//! sequential `u32`s (see `flowcon_container::id`), so *the id is the array
//! index*: one `TrainingJob` arena plus two POD slot arrays (container
//! record, monitor record) replace the daemon, pool, stats objects, and
//! monitor map.  The arrays live in a [`DenseScratch`] owned by the
//! executor shard and are recycled across every worker that shard drives —
//! a steady-state worker run performs only the allocations its policy and
//! completion stats need (budgeted well under 10 per worker by
//! `crates/cluster/tests/headless_allocs.rs`).
//!
//! **Bit-identity is the contract.**  For a given `NodeConfig` and job
//! list, [`run_headless_dense`] produces exactly the
//! [`SessionResult`] the object path produces with a
//! [`CompletionsOnly`] recorder — same completions, same event count —
//! because every floating-point operation, RNG draw, and event (time, FIFO
//! sequence) is replicated in the same order.  The cluster test
//! `source_run_matches_the_equivalent_placed_run` and the dense-vs-session
//! tests below pin this.
//!
//! The event queue is chosen per run ([`QueueKind`]): the engine's binary
//! heap or the calendar queue from `flowcon_sim::calendar`, which both
//! order events by `(when, FIFO sequence)` and are bit-compared against
//! each other by a randomized test in `flowcon-sim` and a whole-cluster
//! test in `flowcon-cluster`.

use flowcon_container::daemon::exit_code_for;
use flowcon_container::{ContainerId, ResourceLimits, UpdateOptions, Workload};
use flowcon_dl::workload::JobRequest;
use flowcon_dl::TrainingJob;
use flowcon_metrics::summary::CompletionStats;
use flowcon_sim::alloc::{waterfill_soft_into, AllocRequest, WaterfillScratch};
use flowcon_sim::calendar::CalendarQueue;
use flowcon_sim::event::EventQueue;
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::{ResourceKind, ResourceVec, RESOURCE_KINDS};

use crate::config::NodeConfig;
use crate::metric::{progress_score, GrowthMeasurement};
use crate::policy::ResourcePolicy;
use crate::recorder::{CompletionsOnly, Recorder, RunMeta};
use crate::session::SessionResult;
use crate::worker::WorkerEvent;

/// Same run-away guard as `SimEngine`.
const MAX_EVENTS: u64 = 50_000_000;

/// Intervals shorter than this reuse the previous measurement — must match
/// `monitor::MIN_INTERVAL_SECS` exactly (bit-identity).
const MIN_INTERVAL_SECS: f64 = 0.1;

/// Which event queue drives a dense run.
///
/// Both implementations dispatch events in identical `(time, FIFO)` order;
/// the calendar queue trades the heap's `O(log n)` comparisons for `O(1)`
/// bucket pushes in the dense regime where almost all events land within a
/// sliding one-second-bucket year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The engine's binary-heap `EventQueue` (the default).
    #[default]
    Heap,
    /// The bucket/calendar queue (`flowcon_sim::calendar`).
    Calendar,
}

impl QueueKind {
    /// Parse a CLI-style name (`heap` / `calendar`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueKind::Heap),
            "calendar" => Some(QueueKind::Calendar),
            _ => None,
        }
    }
}

/// One container's POD record: what the object path keeps in
/// `Container` + `ContainerStats`, minus everything headless runs never
/// read (image, event log, usage window, state timestamps).
///
/// Kept `Copy` and cache-line-small on purpose — `slot_records_stay_pod`
/// asserts the size so a refactor cannot silently fatten the arena.
#[derive(Debug, Clone, Copy)]
struct ContainerSlot {
    /// Arrival/creation time (completion records need it).
    created_at: SimTime,
    /// Soft limits, updated by `docker update`-style policy decisions.
    limits: ResourceLimits,
    /// Cumulative resource-time integral (the monitor's usage source).
    cumulative: ResourceVec,
    /// Still in the pool (running); cleared on exit.
    runnable: bool,
}

/// One container's monitor state: the dense mirror of the object
/// monitor's `PerContainer`, plus a `tracked` flag standing in for map
/// membership.
#[derive(Debug, Clone, Copy)]
struct MonitorSlot {
    tracked: bool,
    last_tick: SimTime,
    last_eval: Option<f64>,
    last_cumulative: ResourceVec,
    cached_progress: Option<f64>,
    cached_avg_usage: ResourceVec,
}

impl MonitorSlot {
    const UNTRACKED: MonitorSlot = MonitorSlot {
        tracked: false,
        last_tick: SimTime::ZERO,
        last_eval: None,
        last_cumulative: ResourceVec::ZERO,
        cached_progress: None,
        cached_avg_usage: ResourceVec::ZERO,
    };
}

/// The recycled arenas and hot-path buffers of the dense worker path.
///
/// One per executor shard; every buffer is cleared (capacity kept) between
/// workers, so arena growth amortizes to zero across a cluster run.
#[derive(Debug, Default)]
pub struct DenseScratch {
    /// Job arena: index == raw container id.
    jobs: Vec<TrainingJob>,
    /// Container records, parallel to `jobs`.
    slots: Vec<ContainerSlot>,
    /// Monitor records, parallel to `jobs`.
    mons: Vec<MonitorSlot>,
    /// `(id, exit code)` of containers that exited in the current step.
    exited: Vec<(ContainerId, i32)>,
    /// Ids with fixed rates since the last recompute, in id order.
    rate_ids: Vec<ContainerId>,
    /// CPU rates aligned with `rate_ids`.
    rate_vals: Vec<f64>,
    /// Contention efficiencies aligned with `rate_ids`.
    efficiencies: Vec<f64>,
    /// Water-filling scratch.
    alloc: WaterfillScratch,
    /// `(id, limit, demand)` allocator inputs.
    alloc_inputs: Vec<(ContainerId, f64, f64)>,
    /// Allocator requests derived from `alloc_inputs`.
    requests: Vec<AllocRequest>,
    /// Growth-measurement buffer for policy reconfigurations.
    measures: Vec<GrowthMeasurement>,
    /// Pool-membership buffer for listener notifications.
    pool_ids: Vec<ContainerId>,
    /// Policy-decision updates buffer.
    updates: Vec<(ContainerId, f64)>,
    /// Recycled binary-heap event queue.
    heap: EventQueue<WorkerEvent>,
    /// Recycled calendar event queue.
    calendar: CalendarQueue<WorkerEvent>,
}

impl DenseScratch {
    /// Fresh scratch with empty arenas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every arena and buffer (capacities kept) and pre-size for a
    /// worker admitting up to `max_jobs` containers.
    fn reset_for(&mut self, max_jobs: usize) {
        self.jobs.clear();
        self.slots.clear();
        self.mons.clear();
        self.exited.clear();
        self.rate_ids.clear();
        self.rate_vals.clear();
        self.efficiencies.clear();
        self.alloc_inputs.clear();
        self.requests.clear();
        self.measures.clear();
        self.pool_ids.clear();
        self.updates.clear();
        self.jobs.reserve(max_jobs);
        self.slots.reserve(max_jobs);
        self.mons.reserve(max_jobs);
        self.exited.reserve(max_jobs);
        self.rate_ids.reserve(max_jobs);
        self.rate_vals.reserve(max_jobs);
        self.efficiencies.reserve(max_jobs);
        self.alloc_inputs.reserve(max_jobs);
        self.requests.reserve(max_jobs);
        self.measures.reserve(max_jobs);
        self.pool_ids.reserve(max_jobs);
        self.updates.reserve(max_jobs);
        self.alloc.reserve(max_jobs);
    }
}

/// The queue interface the dense dispatch loop needs; implemented by both
/// the binary heap and the calendar queue, which share `(when, seq)` FIFO
/// ordering semantics.
trait DenseQueue {
    fn schedule(&mut self, when: SimTime, ev: WorkerEvent);
    fn pop_earliest(&mut self) -> Option<(SimTime, WorkerEvent)>;
}

impl DenseQueue for EventQueue<WorkerEvent> {
    fn schedule(&mut self, when: SimTime, ev: WorkerEvent) {
        EventQueue::schedule(self, when, ev);
    }
    fn pop_earliest(&mut self) -> Option<(SimTime, WorkerEvent)> {
        self.pop_if_at_or_before(SimTime::MAX)
    }
}

impl DenseQueue for CalendarQueue<WorkerEvent> {
    fn schedule(&mut self, when: SimTime, ev: WorkerEvent) {
        CalendarQueue::schedule(self, when, ev);
    }
    fn pop_earliest(&mut self) -> Option<(SimTime, WorkerEvent)> {
        self.pop_if_at_or_before(SimTime::MAX)
    }
}

/// Run one worker's plan headless over the dense arenas in `scratch`.
///
/// `plan` must be the worker's jobs in plan order (ascending arrival; the
/// cluster manager's flat placement preserves this).  Labels are ignored —
/// the headless recorder never reads them — so the slice is borrowed, not
/// consumed.  Returns exactly what
/// `Session::builder()...recorder(CompletionsOnly::new()).run()` returns
/// for the same inputs.
pub fn run_headless_dense(
    node: NodeConfig,
    plan: &[JobRequest],
    policy: Box<dyn ResourcePolicy>,
    queue: QueueKind,
    scratch: &mut DenseScratch,
) -> SessionResult<CompletionStats> {
    scratch.reset_for(plan.len());
    match queue {
        QueueKind::Heap => {
            let mut q = std::mem::take(&mut scratch.heap);
            q.clear();
            let (result, q) = run_with_queue(node, plan, policy, q, scratch);
            scratch.heap = q;
            result
        }
        QueueKind::Calendar => {
            let mut q = std::mem::take(&mut scratch.calendar);
            q.clear();
            let (result, q) = run_with_queue(node, plan, policy, q, scratch);
            scratch.calendar = q;
            result
        }
    }
}

/// The dispatch loop, monomorphized over the queue.
fn run_with_queue<Q: DenseQueue>(
    node: NodeConfig,
    plan: &[JobRequest],
    policy: Box<dyn ResourcePolicy>,
    mut queue: Q,
    scratch: &mut DenseScratch,
) -> (SessionResult<CompletionStats>, Q) {
    for (idx, job) in plan.iter().enumerate() {
        queue.schedule(job.arrival, WorkerEvent::Arrival(idx));
    }
    let mut sim = DenseSim {
        node,
        plan,
        policy,
        rng: SimRng::new(node.seed),
        now: SimTime::ZERO,
        last_advance: SimTime::ZERO,
        completion_gen: 0,
        tick_gen: 0,
        arrivals_pending: plan.len(),
        live: 0,
        recorder: CompletionsOnly::new(),
        update_calls: 0,
        algorithm_runs: 0,
        queue,
        s: scratch,
    };
    // Replicates `SimEngine::run_until(.., SimTime::MAX)`: stale-generation
    // events still count toward `events_processed` (they are popped and
    // dispatched), and the budget guard trips at the same count.
    let mut events_processed: u64 = 0;
    while events_processed < MAX_EVENTS {
        let Some((when, event)) = sim.queue.pop_earliest() else {
            break;
        };
        debug_assert!(when >= sim.now, "event from the past");
        sim.now = when;
        events_processed += 1;
        sim.handle(event);
    }
    let output = sim.recorder.finish(RunMeta {
        policy: sim.policy.as_ref(),
        algorithm_runs: sim.algorithm_runs,
        update_calls: sim.update_calls,
    });
    let result = SessionResult {
        output,
        events_processed,
        scheduler_overhead_cpu_secs: sim.algorithm_runs as f64 * sim.node.algo_cost_cpu_secs,
    };
    (result, sim.queue)
}

/// One worker simulation over borrowed dense state.
///
/// Method-for-method mirror of `WorkerSim` specialized to the headless
/// recorder: same event protocol, same floating-point order, same RNG
/// stream, minus the objects.
struct DenseSim<'a, Q> {
    node: NodeConfig,
    plan: &'a [JobRequest],
    policy: Box<dyn ResourcePolicy>,
    rng: SimRng,
    now: SimTime,
    last_advance: SimTime,
    completion_gen: u64,
    tick_gen: u64,
    arrivals_pending: usize,
    /// Live pool size (`runnable` slots).
    live: usize,
    recorder: CompletionsOnly,
    update_calls: u64,
    algorithm_runs: u64,
    queue: Q,
    s: &'a mut DenseScratch,
}

impl<Q: DenseQueue> DenseSim<'_, Q> {
    fn is_done(&self) -> bool {
        self.arrivals_pending == 0 && self.live == 0
    }

    /// Mirror of `Scheduler::at` (same cannot-schedule-into-the-past
    /// contract) and `Scheduler::after`.
    fn schedule_at(&mut self, when: SimTime, ev: WorkerEvent) {
        assert!(
            when >= self.now,
            "cannot schedule into the past: now={}, when={}",
            self.now,
            when
        );
        self.queue.schedule(when, ev);
    }

    fn schedule_after(&mut self, delay: SimDuration, ev: WorkerEvent) {
        let when = self.now + delay;
        self.queue.schedule(when, ev);
    }

    /// Integrate the fluid state from `last_advance` to `now`; exited
    /// containers land in `s.exited` (mirror of `advance_to` +
    /// `Daemon::advance`).
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        self.s.exited.clear();
        if dt <= 0.0 || self.s.rate_ids.is_empty() {
            return;
        }
        for i in 0..self.s.rate_ids.len() {
            let id = self.s.rate_ids[i];
            let rate = self.s.rate_vals[i];
            let efficiency = self.s.efficiencies[i];
            let slot = id.index();
            if !self.s.slots[slot].runnable {
                continue;
            }
            let mut usage = self.s.jobs[slot].footprint();
            usage.set(ResourceKind::Cpu, rate);
            self.s.slots[slot].cumulative += usage.scale(dt);
            self.s.jobs[slot].advance(now, rate * efficiency * dt);
            if let Some(code) = exit_code_for(self.s.jobs[slot].status()) {
                self.s.slots[slot].runnable = false;
                self.live -= 1;
                self.s.exited.push((id, code));
            }
        }
    }

    /// Mirror of `Daemon::alloc_inputs_into`: `(id, limit, demand)` rows in
    /// id order.
    fn alloc_inputs(&mut self) {
        self.s.alloc_inputs.clear();
        for slot in 0..self.s.slots.len() {
            if !self.s.slots[slot].runnable {
                continue;
            }
            self.s.alloc_inputs.push((
                ContainerId::from_raw(slot as u32),
                self.s.slots[slot].limits.cpu_limit(),
                self.s.jobs[slot].demand(),
            ));
        }
    }

    /// Mirror of `WorkerSim::recompute_rates`.
    fn recompute_rates(&mut self) {
        self.alloc_inputs();
        let scratch = &mut *self.s;
        scratch.requests.clear();
        scratch
            .requests
            .extend(
                scratch
                    .alloc_inputs
                    .iter()
                    .map(|&(_, limit, demand)| AllocRequest {
                        limit,
                        demand,
                        weight: 1.0,
                    }),
            );
        waterfill_soft_into(&mut scratch.alloc, self.node.capacity, &scratch.requests);
        scratch.rate_ids.clear();
        scratch.rate_vals.clear();
        scratch
            .rate_ids
            .extend(scratch.alloc_inputs.iter().map(|&(id, _, _)| id));
        scratch.rate_vals.extend_from_slice(scratch.alloc.rates());
        let n = scratch.rate_ids.len();
        scratch.efficiencies.clear();
        scratch
            .efficiencies
            .extend(scratch.alloc_inputs.iter().map(|&(_, limit, _)| {
                let shaped = limit < 0.999;
                self.node.contention.container_efficiency(n, shaped)
            }));
        self.completion_gen += 1;
    }

    /// Mirror of `WorkerSim::next_completion`, including its early-abort on
    /// a rate id that has left the pool.
    fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for i in 0..self.s.rate_ids.len() {
            let slot = self.s.rate_ids[i].index();
            if !self.s.slots[slot].runnable {
                return None;
            }
            let remaining = self.s.jobs[slot].remaining_cpu_seconds()?;
            let speed = self.s.rate_vals[i] * self.s.efficiencies[i];
            if speed > 1e-12 {
                let eta = remaining / speed;
                best = Some(best.map_or(eta, |b| b.min(eta)));
            }
        }
        best.map(|eta| {
            self.last_advance + SimDuration::from_secs_f64(eta) + SimDuration::from_micros(1)
        })
    }

    /// Mirror of `WorkerSim::process_exits` over `s.exited`.
    fn process_exits(&mut self, now: SimTime) -> bool {
        if self.s.exited.is_empty() {
            return false;
        }
        for k in 0..self.s.exited.len() {
            let (id, code) = self.s.exited[k];
            self.s.mons[id.index()] = MonitorSlot::UNTRACKED;
            let created_at = self.s.slots[id.index()].created_at;
            self.recorder.record_completion("", created_at, now, code);
        }
        self.pool_ids();
        self.policy.on_pool_change(now, &self.s.pool_ids)
    }

    /// Mirror of `ContainerPool::ids_into`: live ids in ascending order.
    fn pool_ids(&mut self) {
        self.s.pool_ids.clear();
        for slot in 0..self.s.slots.len() {
            if self.s.slots[slot].runnable {
                self.s.pool_ids.push(ContainerId::from_raw(slot as u32));
            }
        }
    }

    /// Mirror of `ContainerMonitor::measure_into` over the monitor slots.
    fn measure_into(&mut self, now: SimTime) {
        self.s.measures.clear();
        for slot in 0..self.s.slots.len() {
            if !self.s.slots[slot].runnable {
                continue;
            }
            let id = ContainerId::from_raw(slot as u32);
            let eval_now = self.s.jobs[slot].eval(now);
            let cumulative = self.s.slots[slot].cumulative;
            let limit = self.s.slots[slot].limits.cpu_limit();
            let m = &mut self.s.mons[slot];
            let measurement = if !m.tracked {
                *m = MonitorSlot {
                    tracked: true,
                    last_tick: now,
                    last_eval: eval_now,
                    last_cumulative: cumulative,
                    cached_progress: None,
                    cached_avg_usage: ResourceVec::ZERO,
                };
                GrowthMeasurement {
                    id,
                    progress: None,
                    avg_usage: ResourceVec::ZERO,
                    cpu_limit: limit,
                }
            } else {
                let dt = now.saturating_since(m.last_tick).as_secs_f64();
                if dt < MIN_INTERVAL_SECS {
                    GrowthMeasurement {
                        id,
                        progress: m.cached_progress,
                        avg_usage: m.cached_avg_usage,
                        cpu_limit: limit,
                    }
                } else {
                    let mut avg_usage = ResourceVec::ZERO;
                    for kind in RESOURCE_KINDS {
                        avg_usage.set(
                            kind,
                            (cumulative.get(kind) - m.last_cumulative.get(kind)) / dt,
                        );
                    }
                    let progress = match (eval_now, m.last_eval) {
                        (Some(e), Some(p)) => progress_score(e, p, dt),
                        _ => None,
                    };
                    m.last_tick = now;
                    m.last_eval = eval_now.or(m.last_eval);
                    m.last_cumulative = cumulative;
                    m.cached_progress = progress;
                    m.cached_avg_usage = avg_usage;
                    GrowthMeasurement {
                        id,
                        progress,
                        avg_usage,
                        cpu_limit: limit,
                    }
                }
            };
            self.s.measures.push(measurement);
        }
    }

    /// Mirror of `WorkerSim::run_reconfigure`.
    fn run_reconfigure(&mut self, now: SimTime) -> Option<SimDuration> {
        self.measure_into(now);
        self.s.updates.clear();
        let next_interval =
            self.policy
                .reconfigure_into(now, &self.s.measures, &mut self.s.updates);
        self.algorithm_runs += 1;
        for k in 0..self.s.updates.len() {
            let (id, limit) = self.s.updates[k];
            // `Daemon::update` succeeds for any pool member; in this path
            // pool membership is exactly `runnable`.
            let slot = id.index();
            if slot < self.s.slots.len() && self.s.slots[slot].runnable {
                let opts = UpdateOptions::new().cpus(limit);
                self.s.slots[slot].limits = opts.apply_to(self.s.slots[slot].limits);
                self.update_calls += 1;
            }
        }
        next_interval
    }

    /// Mirror of `WorkerSim::schedule_tick`.
    fn schedule_tick(&mut self, interval: Option<SimDuration>) {
        if self.is_done() {
            return;
        }
        if let Some(itval) = interval {
            self.tick_gen += 1;
            self.schedule_after(itval, WorkerEvent::PolicyTick(self.tick_gen));
        }
    }

    /// Mirror of `WorkerSim::schedule_completion`.
    fn schedule_completion(&mut self) {
        if let Some(at) = self.next_completion() {
            self.schedule_at(at, WorkerEvent::CompletionCheck(self.completion_gen));
        }
    }

    /// Mirror of `WorkerSim::admit_job` (headless: the label is dropped).
    fn admit_job(&mut self, now: SimTime, idx: usize, interrupted_by_exit: bool) {
        let spec = self.plan[idx].scaled_spec();
        // Same RNG protocol as `Daemon::run` + `TrainingJob::with_label`;
        // the empty label allocates nothing and is never read headless.
        let job = TrainingJob::with_label(spec, String::new(), &mut self.rng);
        self.s.jobs.push(job);
        self.s.slots.push(ContainerSlot {
            created_at: now,
            limits: ResourceLimits::unlimited(),
            cumulative: ResourceVec::ZERO,
            runnable: true,
        });
        self.s.mons.push(MonitorSlot::UNTRACKED);
        self.live += 1;

        self.pool_ids();
        let interrupt = self.policy.on_pool_change(now, &self.s.pool_ids);
        if interrupt || interrupted_by_exit {
            let next = self.run_reconfigure(now);
            self.schedule_tick(next);
        } else if self.live == 1 {
            let initial = self.policy.initial_interval();
            self.schedule_tick(initial);
        }
        self.recompute_rates();
        self.schedule_completion();
    }

    /// Mirror of `WorkerSim::handle` restricted to the events a headless
    /// plan-driven run can see.
    fn handle(&mut self, event: WorkerEvent) {
        let now = self.now;
        match event {
            WorkerEvent::Arrival(idx) => {
                self.advance_to(now);
                let interrupted_by_exit = self.process_exits(now);
                self.arrivals_pending -= 1;
                self.admit_job(now, idx, interrupted_by_exit);
            }
            WorkerEvent::CompletionCheck(gen) => {
                if gen != self.completion_gen {
                    return; // stale projection
                }
                self.advance_to(now);
                let interrupt = self.process_exits(now);
                if interrupt {
                    let next = self.run_reconfigure(now);
                    self.schedule_tick(next);
                }
                self.recompute_rates();
                self.schedule_completion();
            }
            WorkerEvent::PolicyTick(gen) => {
                if gen != self.tick_gen {
                    return; // pre-empted by an interrupt
                }
                self.advance_to(now);
                let _ = self.process_exits(now); // tick reconfigures below
                let next = self.run_reconfigure(now);
                self.schedule_tick(next);
                self.recompute_rates();
                self.schedule_completion();
            }
            WorkerEvent::StreamArrival
            | WorkerEvent::SampleTick
            | WorkerEvent::TraceTick
            | WorkerEvent::InjectFailure(_) => {
                unreachable!("never scheduled on the dense headless path")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConConfig;
    use crate::policy::{FairSharePolicy, FlowConPolicy};
    use crate::session::Session;
    use flowcon_dl::workload::WorkloadPlan;

    fn session_headless(node: NodeConfig, plan: &WorkloadPlan) -> SessionResult<CompletionStats> {
        Session::builder()
            .node(node)
            .plan(plan.clone())
            .policy(FlowConPolicy::new(FlowConConfig::default()))
            .recorder(CompletionsOnly::new())
            .build()
            .run()
    }

    fn dense(
        node: NodeConfig,
        plan: &WorkloadPlan,
        queue: QueueKind,
    ) -> SessionResult<CompletionStats> {
        let mut scratch = DenseScratch::new();
        run_headless_dense(
            node,
            &plan.jobs,
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
            queue,
            &mut scratch,
        )
    }

    fn assert_same(a: &SessionResult<CompletionStats>, b: &SessionResult<CompletionStats>) {
        assert_eq!(a.output, b.output);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.scheduler_overhead_cpu_secs, b.scheduler_overhead_cpu_secs);
    }

    #[test]
    fn dense_is_bit_identical_to_the_object_session() {
        for seed in [3_u64, 11, 42] {
            let plan = WorkloadPlan::random_n(12, seed);
            let object = session_headless(NodeConfig::default(), &plan);
            let fast = dense(NodeConfig::default(), &plan, QueueKind::Heap);
            assert_same(&object, &fast);
        }
    }

    #[test]
    fn calendar_queue_matches_the_heap() {
        for seed in [5_u64, 23] {
            let plan = WorkloadPlan::random_n(15, seed);
            let heap = dense(NodeConfig::default(), &plan, QueueKind::Heap);
            let calendar = dense(NodeConfig::default(), &plan, QueueKind::Calendar);
            assert_same(&heap, &calendar);
        }
    }

    #[test]
    fn dense_matches_under_the_na_baseline_too() {
        let plan = WorkloadPlan::random_n(8, 7);
        let object = Session::builder()
            .node(NodeConfig::default())
            .plan(plan.clone())
            .policy(FairSharePolicy::new())
            .recorder(CompletionsOnly::new())
            .build()
            .run();
        let mut scratch = DenseScratch::new();
        let fast = run_headless_dense(
            NodeConfig::default(),
            &plan.jobs,
            Box::new(FairSharePolicy::new()),
            QueueKind::Heap,
            &mut scratch,
        );
        assert_same(&object, &fast);
    }

    #[test]
    fn scratch_is_safely_recyclable_across_workers() {
        let mut scratch = DenseScratch::new();
        let plan_a = WorkloadPlan::random_n(10, 1);
        let plan_b = WorkloadPlan::random_n(6, 2);
        let first = run_headless_dense(
            NodeConfig::default(),
            &plan_a.jobs,
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
            QueueKind::Calendar,
            &mut scratch,
        );
        // A different worker in between must not perturb the next run.
        let _ = run_headless_dense(
            NodeConfig::default().with_seed(99),
            &plan_b.jobs,
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
            QueueKind::Calendar,
            &mut scratch,
        );
        let again = run_headless_dense(
            NodeConfig::default(),
            &plan_a.jobs,
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
            QueueKind::Calendar,
            &mut scratch,
        );
        assert_same(&first, &again);
    }

    #[test]
    fn empty_plan_is_a_no_op_run() {
        let mut scratch = DenseScratch::new();
        let result = run_headless_dense(
            NodeConfig::default(),
            &[],
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
            QueueKind::Heap,
            &mut scratch,
        );
        assert_eq!(result.events_processed, 0);
        assert_eq!(result.output.len(), 0);
        assert_eq!(result.output.algorithm_runs, 0);
    }

    #[test]
    fn slot_records_stay_pod() {
        // The arenas are the density story: a fatter record is a silent
        // memory regression at a million workers.
        assert_eq!(std::mem::size_of::<ContainerSlot>(), 80);
        assert_eq!(std::mem::size_of::<MonitorSlot>(), 112);
        assert_eq!(std::mem::size_of::<ContainerId>(), 4);
    }

    #[test]
    fn queue_kind_parses_cli_names() {
        assert_eq!(QueueKind::parse("heap"), Some(QueueKind::Heap));
        assert_eq!(QueueKind::parse("calendar"), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("wheel"), None);
        assert_eq!(QueueKind::default(), QueueKind::Heap);
    }
}
