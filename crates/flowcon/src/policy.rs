//! Resource-configuration policies.
//!
//! [`ResourcePolicy`] is the contract between the worker-node runtime and a
//! scheduling policy.  Implementations:
//!
//! * [`FlowConPolicy`] — the paper's contribution: Executor + Algorithm 1 +
//!   Algorithm 2 listeners + exponential back-off.
//! * [`FairSharePolicy`] — the paper's baseline ("NA"): no limits ever,
//!   containers compete freely.
//! * [`StaticEqualPolicy`] — ablation: hard equal partition `1/n`,
//!   recomputed only on membership changes (a VM-like static allocation,
//!   §4.1's foil).
//! * [`QualityProportionalPolicy`] — ablation: SLAQ-style quality-driven
//!   proportional shares on a fixed interval, with no real-time listeners,
//!   no lists and no back-off (the related-work §6 comparison point).

use flowcon_container::ContainerId;
use flowcon_sim::time::{SimDuration, SimTime};

use crate::algorithm::run_algorithm1_into;
use crate::config::FlowConConfig;
use crate::listener::Listener;
use crate::lists::Lists;
use crate::metric::GrowthMeasurement;

/// What a policy decided at a reconfiguration point.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// New CPU limits to apply (`docker update --cpus`).
    pub updates: Vec<(ContainerId, f64)>,
    /// Delay until the next periodic reconfiguration, or `None` for purely
    /// event-driven policies.
    pub next_interval: Option<SimDuration>,
}

impl PolicyDecision {
    /// No updates, no periodic tick.
    pub fn none() -> Self {
        PolicyDecision {
            updates: Vec::new(),
            next_interval: None,
        }
    }
}

/// A worker-side resource-configuration policy.
pub trait ResourcePolicy {
    /// Display name used in figures (e.g. `FlowCon-5%-20`, `NA`).
    fn name(&self) -> String;

    /// Delay until the first periodic reconfiguration after start.
    fn initial_interval(&self) -> Option<SimDuration>;

    /// Periodic tick or listener interrupt: decide new limits from the
    /// Container Monitor's measurements, writing them into the
    /// caller-provided `updates` buffer and returning the delay until the
    /// next periodic reconfiguration.
    ///
    /// `updates` may arrive holding the previous tick's decision (the
    /// worker recycles one buffer across the whole run): implementations
    /// **must** `updates.clear()` before writing, or stale limits would be
    /// re-applied every tick.
    ///
    /// This is the hot-path entry point: the worker threads one reusable
    /// buffer through every reconfiguration, so a steady-state call makes
    /// zero heap allocations (asserted by
    /// `crates/flowcon/tests/policy_zero_alloc.rs`).
    fn reconfigure_into(
        &mut self,
        now: SimTime,
        measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration>;

    /// Allocating convenience wrapper over
    /// [`ResourcePolicy::reconfigure_into`] for tests and one-shot callers.
    fn reconfigure(&mut self, now: SimTime, measures: &[GrowthMeasurement]) -> PolicyDecision {
        let mut updates = Vec::new();
        let next_interval = self.reconfigure_into(now, measures, &mut updates);
        PolicyDecision {
            updates,
            next_interval,
        }
    }

    /// Pool membership changed.  Returns true if the policy wants an
    /// immediate reconfiguration (a listener interrupt).
    fn on_pool_change(&mut self, now: SimTime, pool_ids: &[ContainerId]) -> bool;
}

// ---------------------------------------------------------------------------
// FlowCon
// ---------------------------------------------------------------------------

/// The paper's policy: growth-efficiency-driven elastic limits.
#[derive(Debug, Clone)]
pub struct FlowConPolicy {
    config: FlowConConfig,
    lists: Lists,
    listener: Listener,
    /// Current executor interval (doubles under back-off, resets on
    /// listener interrupts).
    itval: SimDuration,
    /// Number of Algorithm 1 invocations (overhead accounting).
    algorithm_runs: u64,
}

impl FlowConPolicy {
    /// A policy with the given configuration.
    pub fn new(config: FlowConConfig) -> Self {
        FlowConPolicy {
            itval: config.initial_interval,
            config,
            lists: Lists::new(),
            listener: Listener::new(),
            algorithm_runs: 0,
        }
    }

    /// The classification lists (exposed for inspection and tests).
    pub fn lists(&self) -> &Lists {
        &self.lists
    }

    /// Current (possibly backed-off) interval.
    pub fn current_interval(&self) -> SimDuration {
        self.itval
    }

    /// Number of Algorithm 1 invocations so far.
    pub fn algorithm_runs(&self) -> u64 {
        self.algorithm_runs
    }
}

impl ResourcePolicy for FlowConPolicy {
    fn name(&self) -> String {
        self.config.display_name()
    }

    fn initial_interval(&self) -> Option<SimDuration> {
        Some(self.config.initial_interval)
    }

    fn reconfigure_into(
        &mut self,
        _now: SimTime,
        measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration> {
        self.algorithm_runs += 1;
        let backed_off = run_algorithm1_into(&self.config, &mut self.lists, measures, updates);
        if backed_off && self.config.backoff {
            // Algorithm 1 line 17.
            self.itval = self.itval.saturating_double();
        }
        Some(self.itval)
    }

    fn on_pool_change(&mut self, _now: SimTime, pool_ids: &[ContainerId]) -> bool {
        // Allocation-free membership diff (the arrival/departure sets are
        // not needed here, only the interrupt decision).
        let interrupt = self.listener.observe_interrupt(pool_ids, &mut self.lists);
        if interrupt {
            // Algorithm 2 lines 8/16: reset itval, breaking the back-off.
            self.itval = self.config.initial_interval;
        }
        interrupt
    }
}

// ---------------------------------------------------------------------------
// NA baseline
// ---------------------------------------------------------------------------

/// The paper's baseline: the unmodified container platform.  Containers
/// "compete for resources freely and the system maintains fairness among
/// all of them" (§2.2).
#[derive(Debug, Clone, Default)]
pub struct FairSharePolicy;

impl FairSharePolicy {
    /// The baseline policy.
    pub fn new() -> Self {
        FairSharePolicy
    }
}

impl ResourcePolicy for FairSharePolicy {
    fn name(&self) -> String {
        "NA".to_string()
    }

    fn initial_interval(&self) -> Option<SimDuration> {
        None
    }

    fn reconfigure_into(
        &mut self,
        _now: SimTime,
        _measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration> {
        updates.clear();
        None
    }

    fn on_pool_change(&mut self, _now: SimTime, _pool_ids: &[ContainerId]) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Static equal partition (ablation)
// ---------------------------------------------------------------------------

/// Hard `1/n` partitioning recomputed on every membership change — the
/// VM-style fixed allocation the paper argues against in §4.1.
#[derive(Debug, Clone, Default)]
pub struct StaticEqualPolicy {
    n: usize,
    ids: Vec<ContainerId>,
}

impl StaticEqualPolicy {
    /// A fresh static partitioner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResourcePolicy for StaticEqualPolicy {
    fn name(&self) -> String {
        "Static-1/n".to_string()
    }

    fn initial_interval(&self) -> Option<SimDuration> {
        None
    }

    fn reconfigure_into(
        &mut self,
        _now: SimTime,
        _measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration> {
        updates.clear();
        let share = if self.n == 0 {
            1.0
        } else {
            1.0 / self.n as f64
        };
        updates.extend(self.ids.iter().map(|&id| (id, share)));
        None
    }

    fn on_pool_change(&mut self, _now: SimTime, pool_ids: &[ContainerId]) -> bool {
        self.n = pool_ids.len();
        self.ids = pool_ids.to_vec();
        true
    }
}

// ---------------------------------------------------------------------------
// SLAQ-like quality-proportional policy (ablation)
// ---------------------------------------------------------------------------

/// Quality-driven proportional shares on a fixed interval, without FlowCon's
/// lists, lower bound, back-off or real-time listeners — approximating SLAQ,
/// which "fails to allocate the resources at real-time" (§6).
#[derive(Debug, Clone)]
pub struct QualityProportionalPolicy {
    interval: SimDuration,
    floor: f64,
}

impl QualityProportionalPolicy {
    /// Policy reconfiguring every `interval` with the given minimum share.
    pub fn new(interval: SimDuration, floor: f64) -> Self {
        QualityProportionalPolicy { interval, floor }
    }
}

impl ResourcePolicy for QualityProportionalPolicy {
    fn name(&self) -> String {
        format!("QualityProp-{}", self.interval.as_secs_f64().round() as u64)
    }

    fn initial_interval(&self) -> Option<SimDuration> {
        Some(self.interval)
    }

    fn reconfigure_into(
        &mut self,
        _now: SimTime,
        measures: &[GrowthMeasurement],
        updates: &mut Vec<(ContainerId, f64)>,
    ) -> Option<SimDuration> {
        updates.clear();
        let sum: f64 = measures.iter().filter_map(|m| m.growth()).sum();
        for m in measures {
            let limit = match m.growth() {
                Some(g) if sum > 0.0 => (g / sum).max(self.floor).min(1.0),
                _ => 1.0,
            };
            if (limit - m.cpu_limit).abs() > 1e-9 {
                updates.push((m.id, limit));
            }
        }
        Some(self.interval)
    }

    fn on_pool_change(&mut self, _now: SimTime, _pool_ids: &[ContainerId]) -> bool {
        false // no real-time reaction — the point of the comparison
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::ListKind;

    fn id(raw: u32) -> ContainerId {
        ContainerId::from_raw(raw)
    }

    fn measure(raw: u32, growth: Option<f64>, limit: f64) -> GrowthMeasurement {
        GrowthMeasurement {
            id: id(raw),
            progress: growth.map(|g| g * 0.5),
            avg_usage: flowcon_sim::ResourceVec::cpu(0.5),
            cpu_limit: limit,
        }
    }

    #[test]
    fn flowcon_interrupts_on_pool_change_and_resets_interval() {
        let mut p = FlowConPolicy::new(FlowConConfig::with_params(0.05, 20));
        assert!(p.on_pool_change(SimTime::ZERO, &[id(1)]));
        assert_eq!(p.lists().kind_of(id(1)), Some(ListKind::New));
        // No change -> no interrupt.
        assert!(!p.on_pool_change(SimTime::from_secs(1), &[id(1)]));
    }

    #[test]
    fn flowcon_backoff_doubles_until_listener_resets() {
        let mut p = FlowConPolicy::new(FlowConConfig::with_params(0.05, 20));
        p.on_pool_change(SimTime::ZERO, &[id(1)]);
        // Two low measurements drive the lone container into CL, then the
        // all-CL branch doubles the interval on each subsequent run.
        let m = |g| vec![measure(1, Some(g), 1.0)];
        p.reconfigure(SimTime::from_secs(20), &m(0.01)); // NL -> WL
        assert_eq!(p.current_interval(), SimDuration::from_secs(20));
        p.reconfigure(SimTime::from_secs(40), &m(0.01)); // WL -> CL, all-CL
        assert_eq!(p.current_interval(), SimDuration::from_secs(40));
        p.reconfigure(SimTime::from_secs(80), &m(0.01));
        assert_eq!(p.current_interval(), SimDuration::from_secs(80));
        // A new container interrupts and resets.
        assert!(p.on_pool_change(SimTime::from_secs(90), &[id(1), id(2)]));
        assert_eq!(p.current_interval(), SimDuration::from_secs(20));
    }

    #[test]
    fn flowcon_decision_carries_current_interval() {
        let mut p = FlowConPolicy::new(FlowConConfig::with_params(0.05, 30));
        p.on_pool_change(SimTime::ZERO, &[id(1)]);
        let d = p.reconfigure(SimTime::from_secs(30), &[measure(1, Some(0.5), 1.0)]);
        assert_eq!(d.next_interval, Some(SimDuration::from_secs(30)));
        assert_eq!(p.algorithm_runs(), 1);
    }

    #[test]
    fn na_policy_does_nothing() {
        let mut p = FairSharePolicy::new();
        assert_eq!(p.name(), "NA");
        assert_eq!(p.initial_interval(), None);
        assert!(!p.on_pool_change(SimTime::ZERO, &[id(1)]));
        let d = p.reconfigure(SimTime::ZERO, &[measure(1, Some(0.5), 1.0)]);
        assert!(d.updates.is_empty());
        assert_eq!(d.next_interval, None);
    }

    #[test]
    fn static_policy_partitions_equally() {
        let mut p = StaticEqualPolicy::new();
        assert!(p.on_pool_change(SimTime::ZERO, &[id(1), id(2), id(3), id(4)]));
        let d = p.reconfigure(SimTime::ZERO, &[]);
        assert_eq!(d.updates.len(), 4);
        for (_, l) in d.updates {
            assert!((l - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn quality_prop_shares_proportional_with_floor() {
        let mut p = QualityProportionalPolicy::new(SimDuration::from_secs(30), 0.05);
        let d = p.reconfigure(
            SimTime::ZERO,
            &[
                measure(1, Some(0.9), 1.0),
                measure(2, Some(0.1), 1.0),
                measure(3, Some(0.0), 1.0),
            ],
        );
        let get = |raw| d.updates.iter().find(|(i, _)| *i == id(raw)).unwrap().1;
        assert!((get(1) - 0.9).abs() < 1e-9);
        assert!((get(2) - 0.1).abs() < 1e-9);
        assert!((get(3) - 0.05).abs() < 1e-9, "floor binds");
        assert!(!p.on_pool_change(SimTime::ZERO, &[id(9)]), "not real-time");
    }
}
