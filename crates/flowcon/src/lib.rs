//! # flowcon-core
//!
//! The paper's contribution: **FlowCon**, an elastic, growth-efficiency
//! driven resource configurator for containerized deep-learning training
//! jobs (Zheng et al., ICPP 2019).
//!
//! FlowCon runs on each worker (Fig. 2) and consists of:
//!
//! * a **Container Monitor** ([`monitor`]) sampling each job's evaluation
//!   function and resource usage, from which the *progress score* (Eq. 1)
//!   and *growth efficiency* (Eq. 2) are computed ([`metric`]);
//! * a **Worker Monitor** with *New Cons* / *Finished Cons* listeners
//!   ([`listener`], Algorithm 2) reacting to pool changes in real time;
//! * an **Executor** that periodically runs the dynamic resource-management
//!   algorithm ([`algorithm`], Algorithm 1), classifying containers into
//!   New / Watching / Completing lists ([`lists`]) and issuing
//!   `docker update` calls, with exponential back-off when every job has
//!   converged.
//!
//! [`policy`] packages this as [`policy::FlowConPolicy`] behind the
//! [`policy::ResourcePolicy`] trait, alongside the paper's baseline
//! ([`policy::FairSharePolicy`], "NA") and two ablation policies.
//! [`worker`] provides the deterministic fluid simulation of one worker
//! node that every experiment runs on.
//!
//! Entry point: [`session::Session::builder`] — a fluent builder over node,
//! plan, policy, shared image registry, failure injections, and a pluggable
//! [`recorder::Recorder`] that decides at compile time what the run
//! observes (full paper traces, headless completions-only, or sampled).
//! It is the *only* entry point: the historical `WorkerSim` constructors
//! shipped one release as deprecated shims and have been removed (see the
//! migration table in [`session`]).  Closed (plan-driven) runs go through
//! [`session::Session::run`]; **open-loop** runs — jobs streaming in while
//! the policy reconfigures — through [`session::Session::run_stream`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod config;
pub mod dense;
pub mod listener;
pub mod lists;
pub mod metric;
pub mod monitor;
pub mod policy;
// The public API surface a new user meets first (and its documentation-
// heavy migration/open-loop specs) must stay fully documented: missing
// docs are hard errors here, not warnings like the rest of the crate.
#[deny(missing_docs)]
pub mod recorder;
#[deny(missing_docs)]
pub mod session;
pub mod worker;

pub use config::{FlowConConfig, NodeConfig};
pub use dense::{run_headless_dense, DenseScratch, QueueKind};
pub use lists::{ListKind, Lists};
pub use metric::{growth_efficiency, progress_score, GrowthMeasurement};
pub use policy::{FairSharePolicy, FlowConPolicy, ResourcePolicy, StaticEqualPolicy};
pub use recorder::{CompletionsOnly, FullRecorder, Recorder, SamplingRecorder};
pub use session::{Session, SessionBuilder, SessionResult, StreamResult};
pub use worker::{RunResult, WorkerScratch};
