//! The progress score (Eq. 1) and growth efficiency (Eq. 2).
//!
//! Given a container's evaluation function `E(t)` sampled at algorithm
//! ticks, the *progress score* over the interval `(t_{i-1}, t_i]` is
//!
//! ```text
//! P(t_i) = |E(t_i) − E(t_{i−1})| / (t_i − t_{i−1})            (Eq. 1)
//! ```
//!
//! and the *growth efficiency* for resource `r` divides by the average
//! resource usage over the same interval:
//!
//! ```text
//! G_r(t_i) = P(t_i) / R_r(t_i)                                 (Eq. 2)
//! ```
//!
//! The absolute value makes the metric direction-agnostic (loss functions
//! fall, accuracy functions rise).  A usage floor guards against division by
//! a near-zero denominator when a container was throttled to almost nothing
//! for the whole interval.

use flowcon_container::ContainerId;

/// Minimum average-usage denominator; below this the measurement interval
/// carried so little compute that G would be pure noise.
pub const USAGE_FLOOR: f64 = 1e-3;

/// Eq. 1: absolute per-second progress of the evaluation function.
///
/// Returns `None` for a non-positive (or non-finite) interval.
pub fn progress_score(eval_now: f64, eval_prev: f64, dt_secs: f64) -> Option<f64> {
    let interval_valid = dt_secs.is_finite() && dt_secs > 0.0;
    if !interval_valid || !eval_now.is_finite() || !eval_prev.is_finite() {
        return None;
    }
    Some((eval_now - eval_prev).abs() / dt_secs)
}

/// Eq. 2: progress per unit of average resource usage.
pub fn growth_efficiency(progress: f64, avg_usage: f64) -> f64 {
    debug_assert!(progress >= 0.0);
    progress / avg_usage.max(USAGE_FLOOR)
}

/// One container's measurement at an algorithm tick, as produced by the
/// Container Monitor and consumed by Algorithm 1.
///
/// Eq. 2 defines growth efficiency *per resource kind*; the measurement
/// therefore carries the progress score and the average usage of all four
/// resources, and [`GrowthMeasurement::growth_for`] derives `G_r` for any
/// of them.  The paper's evaluation (and Algorithm 1's default) uses CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthMeasurement {
    /// The measured container.
    pub id: ContainerId,
    /// Progress score `P` (Eq. 1), or `None` while the container lacks the
    /// two evaluation samples it needs ("fresh" containers).
    pub progress: Option<f64>,
    /// Average usage per resource over the interval (`R_r` in Eq. 2).
    pub avg_usage: flowcon_sim::ResourceVec,
    /// The container's current CPU limit.
    pub cpu_limit: f64,
}

impl GrowthMeasurement {
    /// Growth efficiency for one resource kind (Eq. 2).
    pub fn growth_for(&self, kind: flowcon_sim::ResourceKind) -> Option<f64> {
        self.progress
            .map(|p| growth_efficiency(p, self.avg_usage.get(kind)))
    }

    /// CPU growth efficiency — what the paper's evaluation tracks.
    pub fn growth(&self) -> Option<f64> {
        self.growth_for(flowcon_sim::ResourceKind::Cpu)
    }

    /// Average CPU usage over the interval.
    pub fn avg_cpu(&self) -> f64 {
        self.avg_usage.get(flowcon_sim::ResourceKind::Cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_score_is_absolute_and_per_second() {
        // Loss falling 2.0 -> 1.0 over 20 s.
        assert_eq!(progress_score(1.0, 2.0, 20.0), Some(0.05));
        // Accuracy rising 0.5 -> 0.9 over 20 s: same sign.
        assert_eq!(progress_score(0.9, 0.5, 20.0), Some(0.02));
    }

    #[test]
    fn progress_score_rejects_bad_inputs() {
        assert_eq!(progress_score(1.0, 2.0, 0.0), None);
        assert_eq!(progress_score(1.0, 2.0, -5.0), None);
        assert_eq!(progress_score(f64::NAN, 2.0, 10.0), None);
        assert_eq!(progress_score(1.0, f64::INFINITY, 10.0), None);
    }

    #[test]
    fn growth_efficiency_divides_by_usage() {
        let g = growth_efficiency(0.05, 0.5);
        assert!((g - 0.1).abs() < 1e-12);
    }

    #[test]
    fn growth_efficiency_guards_zero_usage() {
        let g = growth_efficiency(0.05, 0.0);
        assert!(g.is_finite());
        assert!((g - 0.05 / USAGE_FLOOR).abs() < 1e-9);
    }

    #[test]
    fn paper_example_scale() {
        // A young MNIST-TF-like job: loss drops 2.3 -> 1.0 in a 20 s
        // interval using ~40% of the node.
        let p = progress_score(1.0, 2.3, 20.0).unwrap();
        let g = growth_efficiency(p, 0.4);
        assert!(g > 0.1 && g < 0.3, "G = {g}"); // comfortably above α = 5%
    }
}
