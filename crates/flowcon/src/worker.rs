//! The deterministic fluid simulation of one worker node.
//!
//! This is the testbed substitute: a single node (capacity 1.0) running
//! containerized DL jobs under a [`ResourcePolicy`].  Between events the
//! node is a fluid processor-sharing system — the water-filling allocator
//! (with Docker-soft-limit semantics) fixes every container's CPU rate, and
//! workloads advance linearly — so the simulation only needs events at:
//!
//! * job **arrivals** (from the workload plan),
//! * projected job **completions** (recomputed whenever rates change),
//! * **policy ticks** (the Executor's interval, with back-off/reset),
//! * **sample ticks** (1 s usage/limit traces) and **trace ticks**
//!   (growth-efficiency traces at a fixed interval for Figs. 13–14) —
//!   scheduled only when the session's [`Recorder`] wants them.
//!
//! Every run is reproducible from `NodeConfig::seed`.
//!
//! `WorkerSim` is monomorphized over its [`Recorder`] and is internal
//! machinery: workers are built and run exclusively through
//! [`crate::session::Session`].  (The pre-session `WorkerSim::*` and
//! `run_flowcon`/`run_baseline` entry points shipped one release as
//! deprecated shims and are gone.)

use std::sync::Arc;

use flowcon_container::{
    ContainerId, Daemon, ImageRegistry, ResourceLimits, UpdateOptions, Workload,
};
use flowcon_dl::models::ModelSpec;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_dl::TrainingJob;
use flowcon_metrics::sojourn::SojournStats;
use flowcon_metrics::stream::StreamStats;
use flowcon_metrics::summary::RunSummary;
use flowcon_sim::alloc::{waterfill_soft_into, AllocRequest, WaterfillScratch};
use flowcon_sim::engine::{Scheduler, SimEngine, Simulation};
use flowcon_sim::event::EventQueue;
use flowcon_sim::rng::SimRng;
use flowcon_sim::stats::TimeWeighted;
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::trace::{TraceKind, Tracer};
use flowcon_workload::stream::{Horizon, JobStream, StreamedJob};

use crate::config::NodeConfig;
use crate::metric::GrowthMeasurement;
use crate::monitor::ContainerMonitor;
use crate::policy::ResourcePolicy;
use crate::recorder::{FullRecorder, Recorder, RunMeta};
use crate::session::{SessionResult, StreamResult};

/// Interval between growth-efficiency trace measurements (Figs. 13–14).
const TRACE_INTERVAL: SimDuration = SimDuration::from_secs(20);

/// Events driving the worker simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WorkerEvent {
    /// The `idx`-th job of the plan arrives.
    Arrival(usize),
    /// The pending open-loop streamed job arrives (handled by the
    /// [`OpenLoopShell`], which owns the stream; exactly one such event is
    /// in flight at a time).
    StreamArrival,
    /// A projected completion; `gen` invalidates stale projections.
    CompletionCheck(u64),
    /// The Executor's periodic tick; `gen` invalidates pre-empted ticks.
    PolicyTick(u64),
    /// 1 Hz usage/limit sampling.
    SampleTick,
    /// Growth-efficiency trace sampling.
    TraceTick,
    /// Fault injection: crash the `idx`-th entry of the failure schedule.
    InjectFailure(usize),
}

/// A scheduled fault: crash the job with `label` at `at` with `exit_code`.
#[derive(Debug, Clone)]
pub struct FailureInjection {
    /// Label of the job to crash.
    pub label: String,
    /// When the crash happens.
    pub at: SimTime,
    /// Exit code the container reports (e.g. 137 for OOM-kill).
    pub exit_code: i32,
}

/// A full-observability run result: a [`RunSummary`] plus the session's
/// performance counters.
///
/// Sessions return a [`SessionResult`] from
/// [`Session::run`](crate::session::Session::run); this repackaging
/// (`RunResult::from`) is kept for callers that want the summary under
/// its historical field name.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Everything the paper reports: completions, makespan, traces.
    pub summary: RunSummary,
    /// Total simulated events processed (performance accounting).
    pub events_processed: u64,
    /// Estimated scheduler overhead in CPU-seconds
    /// (`algorithm_runs × NodeConfig::algo_cost_cpu_secs`).
    pub scheduler_overhead_cpu_secs: f64,
}

impl From<SessionResult<RunSummary>> for RunResult {
    /// Repackage a full-recorder session result (the cluster manager
    /// translates between the two shapes).
    fn from(result: SessionResult<RunSummary>) -> Self {
        RunResult {
            summary: result.output,
            events_processed: result.events_processed,
            scheduler_overhead_cpu_secs: result.scheduler_overhead_cpu_secs,
        }
    }
}

/// The reusable hot-path buffers of one worker simulation.
///
/// Everything in here is recomputed from scratch by the simulation (rates
/// at every `recompute_rates`, measurement and update buffers at every
/// tick), so only the *capacity* carries meaning between runs.  The sharded
/// cluster executor keeps one `WorkerScratch` per OS thread and recycles it
/// across the hundreds of worker sessions that shard drives, so worker
/// state is reused instead of reallocated per simulation
/// ([`Session::run_recycling`](crate::session::Session::run_recycling)).
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Ids of containers whose rates are fixed since the last recompute,
    /// in pool id order.
    rate_ids: Vec<ContainerId>,
    /// CPU rates aligned with `rate_ids`.
    rate_vals: Vec<f64>,
    /// Per-container contention efficiencies, aligned with `rate_ids`.
    efficiencies: Vec<f64>,
    /// Water-filling scratch (rate buffers + warm sort-order cache).
    alloc: WaterfillScratch,
    /// `(id, limit, demand)` rows from the daemon, reused every recompute.
    alloc_inputs: Vec<(ContainerId, f64, f64)>,
    /// Allocator requests derived from `alloc_inputs`.
    requests: Vec<AllocRequest>,
    /// Growth measurements buffer for policy reconfigurations.
    measures: Vec<GrowthMeasurement>,
    /// Growth measurements buffer for trace sampling.
    trace_measures: Vec<GrowthMeasurement>,
    /// Pool-membership buffer for listener notifications.
    pool_ids: Vec<ContainerId>,
    /// Policy-decision updates buffer ([`ResourcePolicy::reconfigure_into`]).
    updates: Vec<(ContainerId, f64)>,
    /// Recycled engine event heap ([`SimEngine::from_queue`]): the queue is
    /// allocated once per executor shard, not once per simulation.
    queue: EventQueue<WorkerEvent>,
}

impl WorkerScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every buffer (capacities are kept) and make sure at least
    /// `max_jobs` slots are available, so the first tick of the next run is
    /// as allocation-free as its steady state.
    fn reset_for(&mut self, max_jobs: usize) {
        self.rate_ids.clear();
        self.rate_vals.clear();
        self.efficiencies.clear();
        self.alloc_inputs.clear();
        self.requests.clear();
        self.measures.clear();
        self.trace_measures.clear();
        self.pool_ids.clear();
        self.updates.clear();
        self.rate_ids.reserve(max_jobs);
        self.rate_vals.reserve(max_jobs);
        self.efficiencies.reserve(max_jobs);
        self.alloc_inputs.reserve(max_jobs);
        self.requests.reserve(max_jobs);
        self.measures.reserve(max_jobs);
        self.trace_measures.reserve(max_jobs);
        self.pool_ids.reserve(max_jobs);
        self.updates.reserve(max_jobs);
        self.alloc.reserve(max_jobs);
    }
}

/// One simulated worker node executing a workload plan under a policy,
/// observed by a [`Recorder`].
///
/// Crate-internal: construct and run through
/// [`Session::builder`](crate::session::Session::builder).
pub(crate) struct WorkerSim<R: Recorder = FullRecorder> {
    node: NodeConfig,
    plan: WorkloadPlan,
    policy: Box<dyn ResourcePolicy>,

    daemon: Daemon<TrainingJob>,
    rng: SimRng,

    last_advance: SimTime,

    // --- reusable hot-path buffers: the tick loop is allocation-free in
    // --- steady state (asserted by `crates/sim/tests/zero_alloc.rs` for
    // --- the allocator, `crates/flowcon/tests/policy_zero_alloc.rs` for
    // --- the policy layer, and exercised end-to-end by the benches).
    scratch: WorkerScratch,

    completion_gen: u64,
    tick_gen: u64,
    arrivals_pending: usize,

    policy_monitor: ContainerMonitor,
    trace_monitor: ContainerMonitor,

    recorder: R,
    update_calls: u64,
    algorithm_runs: u64,
    /// Water-filling invocations so far (the cumulative count behind the
    /// [`TraceKind::Waterfill`] counter events).
    waterfill_runs: u64,
    failures: Vec<FailureInjection>,

    // --- steady-state accounting (open-loop metrics; two FMAs per fluid
    // --- advance, no allocation, bit-neutral for plan-driven runs) ---
    /// Σ of the current allocator rates (refreshed by `recompute_rates`).
    rate_sum: f64,
    /// `∫ Σrates · dt` — the utilization numerator.
    busy: TimeWeighted,
    /// `∫ pool size · dt` — the mean-queue-depth numerator.
    queue: TimeWeighted,
    /// Containers that exited so far (open-loop completion counter).
    exits_total: u64,
    /// Open-loop mode: a streamed arrival is still pending, so the run is
    /// not done even while the pool is empty.
    stream_active: bool,
    /// SLO tails, recorded once per exit (open-loop runs only — the flag
    /// keeps the plan-driven headless path bit- and allocation-neutral).
    ///
    /// The sim timestamps admission ([`Daemon::run`] stamps
    /// `created_at`), first allocation and exit.  On a single fluid node,
    /// first allocation *coincides* with admission — `admit_job` runs
    /// `recompute_rates` in the same event, so every pool member holds a
    /// rate immediately — hence the per-job queue-wait is exactly zero
    /// here; queue-wait becomes informative at the cluster sched layer,
    /// where jobs wait for slots.  Same recycling shape as the
    /// [`TimeWeighted`] integrals: plain per-session state, moved out with
    /// the result (no end-of-run clone).
    slo: SojournStats,
    /// Whether exits feed the [`SojournStats`] sketches (open-loop only).
    slo_enabled: bool,
}

impl<R: Recorder> WorkerSim<R> {
    /// Assemble a fully-configured worker (the session builder's output).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        node: NodeConfig,
        plan: WorkloadPlan,
        policy: Box<dyn ResourcePolicy>,
        images: Arc<ImageRegistry>,
        recorder: R,
        mut scratch: WorkerScratch,
        failures: Vec<FailureInjection>,
    ) -> Self {
        let arrivals_pending = plan.len();
        // Jobs on a worker never exceed the plan size, so pre-sizing the
        // scratch buffers makes even the first tick allocation-free.
        scratch.reset_for(plan.len());
        let mut daemon = Daemon::with_shared_images(images);
        // The worker's growth math uses cumulative deltas and its usage
        // traces go through the recorder, so the per-container stats sample
        // window would only burn memory: disable it.
        daemon.set_stats_window(0);
        WorkerSim {
            node,
            plan,
            policy,
            daemon,
            rng: SimRng::new(node.seed),
            last_advance: SimTime::ZERO,
            scratch,
            completion_gen: 0,
            tick_gen: 0,
            arrivals_pending,
            policy_monitor: ContainerMonitor::new(),
            trace_monitor: ContainerMonitor::new(),
            recorder,
            update_calls: 0,
            algorithm_runs: 0,
            waterfill_runs: 0,
            failures,
            rate_sum: 0.0,
            busy: TimeWeighted::new(),
            queue: TimeWeighted::new(),
            exits_total: 0,
            stream_active: false,
            slo: SojournStats::new(),
            slo_enabled: false,
        }
    }

    /// Run the plan to completion, handing the hot-path scratch back for
    /// the next session.
    ///
    /// Monomorphized over the [`Tracer`]: with the default
    /// [`NoopTracer`](flowcon_sim::trace::NoopTracer) every
    /// instrumentation site compiles away.
    pub(crate) fn run_session<T: Tracer>(
        mut self,
        tracer: &mut T,
    ) -> (SessionResult<R::Output>, WorkerScratch) {
        let mut engine: SimEngine<WorkerShell<R>> =
            SimEngine::from_queue(std::mem::take(&mut self.scratch.queue));
        for (idx, job) in self.plan.jobs.iter().enumerate() {
            engine.prime(job.arrival, WorkerEvent::Arrival(idx));
        }
        if R::RECORDS_SAMPLES {
            engine.prime(SimTime::ZERO, WorkerEvent::SampleTick);
        }
        if R::RECORDS_GROWTH {
            engine.prime(TRACE_INTERVAL.into_time(), WorkerEvent::TraceTick);
        }
        for (idx, f) in self.failures.iter().enumerate() {
            engine.prime(f.at, WorkerEvent::InjectFailure(idx));
        }
        let mut shell = WorkerShell(self);
        engine.run_to_completion_traced(&mut shell, tracer);
        let worker = shell.0;
        let output = worker.recorder.finish(RunMeta {
            policy: worker.policy.as_ref(),
            algorithm_runs: worker.algorithm_runs,
            update_calls: worker.update_calls,
        });
        let result = SessionResult {
            output,
            events_processed: engine.events_processed(),
            scheduler_overhead_cpu_secs: worker.algorithm_runs as f64
                * worker.node.algo_cost_cpu_secs,
        };
        let mut scratch = worker.scratch;
        scratch.queue = engine.into_queue();
        (result, scratch)
    }

    /// Run **open-loop**: admit jobs pulled from `stream` while `horizon`
    /// allows, then drain, handing the scratch back for the next session.
    ///
    /// The simulation pulls exactly one job ahead of the clock: the
    /// pending arrival is a scheduled [`WorkerEvent::StreamArrival`]; when
    /// it fires the job is admitted mid-run and the next one is pulled.
    /// No plan is ever materialized.  Jobs admitted before the horizon run
    /// to completion; the run ends when the stream is exhausted (or the
    /// horizon trips) and the pool drains.
    pub(crate) fn run_session_stream<J: JobStream, T: Tracer>(
        mut self,
        stream: J,
        horizon: Horizon,
        tracer: &mut T,
    ) -> (StreamResult<R::Output>, WorkerScratch) {
        assert!(
            horizon.is_bounded(),
            "an open-loop run needs a horizon (until and/or max jobs) — \
             an unbounded stream would never terminate"
        );
        assert!(
            self.plan.is_empty(),
            "open-loop sessions take jobs from the stream, not a plan"
        );
        self.slo_enabled = true;
        let mut engine: SimEngine<OpenLoopShell<R, J>> =
            SimEngine::from_queue(std::mem::take(&mut self.scratch.queue));
        if R::RECORDS_SAMPLES {
            engine.prime(SimTime::ZERO, WorkerEvent::SampleTick);
        }
        if R::RECORDS_GROWTH {
            engine.prime(TRACE_INTERVAL.into_time(), WorkerEvent::TraceTick);
        }
        for (idx, f) in self.failures.iter().enumerate() {
            engine.prime(f.at, WorkerEvent::InjectFailure(idx));
        }
        let mut shell = OpenLoopShell {
            worker: self,
            stream,
            horizon,
            pending: None,
            submitted: 0,
        };
        if let Some(at) = shell.pull_next() {
            engine.prime(at, WorkerEvent::StreamArrival);
        }
        engine.run_to_completion_traced(&mut shell, tracer);
        let OpenLoopShell {
            worker, submitted, ..
        } = shell;
        let duration_secs = engine.now().as_secs_f64();
        let stream_stats = StreamStats {
            submitted,
            completed: worker.exits_total,
            duration_secs,
            busy_cpu_secs: worker.busy.area(),
            queue_job_secs: worker.queue.area(),
            capacity_cpu_secs: worker.node.capacity * duration_secs,
        };
        let output = worker.recorder.finish(RunMeta {
            policy: worker.policy.as_ref(),
            algorithm_runs: worker.algorithm_runs,
            update_calls: worker.update_calls,
        });
        let result = StreamResult {
            output,
            events_processed: engine.events_processed(),
            scheduler_overhead_cpu_secs: worker.algorithm_runs as f64
                * worker.node.algo_cost_cpu_secs,
            stream: stream_stats,
            tails: worker.slo,
        };
        let mut scratch = worker.scratch;
        scratch.queue = engine.into_queue();
        (result, scratch)
    }

    /// True once every job has arrived (plan *and* stream) and the pool is
    /// empty.
    fn is_done(&self) -> bool {
        self.arrivals_pending == 0 && !self.stream_active && self.daemon.pool().is_empty()
    }

    /// Integrate the fluid state from `last_advance` to `now`.
    ///
    /// The returned `Vec` is empty (and unallocated) unless containers
    /// actually exited in this step.
    fn advance_to(&mut self, now: SimTime) -> Vec<ContainerId> {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        // Steady-state integrals: rates and pool size are constant between
        // events, so each step contributes one rectangle.
        self.busy.accumulate(self.rate_sum, dt);
        self.queue
            .accumulate(self.scratch.rate_ids.len() as f64, dt);
        if dt <= 0.0 || self.scratch.rate_ids.is_empty() {
            return Vec::new();
        }
        self.daemon.advance(
            now,
            &self.scratch.rate_ids,
            &self.scratch.rate_vals,
            &self.scratch.efficiencies,
            dt,
        )
    }

    /// Recompute allocator rates and contention for the current pool.
    ///
    /// Limits are Docker-style **soft caps** (§4.1): a limit bounds the
    /// share a container may claim while others contend, but capacity that
    /// would otherwise idle (every cap satisfied, capacity left) is
    /// redistributed up to demand — "even if the container cannot maximize
    /// its own resource, the unused option will be utilized by others".
    fn recompute_rates<T: Tracer>(&mut self, tracer: &mut T) {
        self.waterfill_runs += 1;
        if T::ENABLED {
            tracer.counter(
                self.last_advance,
                TraceKind::Waterfill,
                0,
                self.waterfill_runs as f64,
            );
        }
        let scratch = &mut self.scratch;
        self.daemon.alloc_inputs_into(&mut scratch.alloc_inputs);
        scratch.requests.clear();
        scratch
            .requests
            .extend(
                scratch
                    .alloc_inputs
                    .iter()
                    .map(|&(_, limit, demand)| AllocRequest {
                        limit,
                        demand,
                        weight: 1.0,
                    }),
            );
        waterfill_soft_into(&mut scratch.alloc, self.node.capacity, &scratch.requests);
        scratch.rate_ids.clear();
        scratch.rate_vals.clear();
        scratch
            .rate_ids
            .extend(scratch.alloc_inputs.iter().map(|&(id, _, _)| id));
        scratch.rate_vals.extend_from_slice(scratch.alloc.rates());
        // A container is "shaped" when a policy gave it an explicit limit;
        // free competitors (limit 1.0, i.e. NA and fresh jobs) pay the
        // jitter tax on top of the shared contention factor.
        let n = scratch.rate_ids.len();
        scratch.efficiencies.clear();
        scratch
            .efficiencies
            .extend(scratch.alloc_inputs.iter().map(|&(_, limit, _)| {
                let shaped = limit < 0.999;
                self.node.contention.container_efficiency(n, shaped)
            }));
        self.rate_sum = self.scratch.rate_vals.iter().sum();
        self.completion_gen += 1;
    }

    /// Project the earliest completion under current rates.
    fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for ((&id, &rate), &eff) in self
            .scratch
            .rate_ids
            .iter()
            .zip(&self.scratch.rate_vals)
            .zip(&self.scratch.efficiencies)
        {
            let c = self.daemon.pool().get(id)?;
            let remaining = c.workload().remaining_cpu_seconds()?;
            let speed = rate * eff;
            if speed > 1e-12 {
                let eta = remaining / speed;
                best = Some(best.map_or(eta, |b| b.min(eta)));
            }
        }
        best.map(|eta| {
            // One microsecond of margin so the projected event lands strictly
            // after the workload's exact finish (the workload clamps).
            self.last_advance + SimDuration::from_secs_f64(eta) + SimDuration::from_micros(1)
        })
    }

    /// Handle exits: record completions and notify the policy.
    fn process_exits<T: Tracer>(
        &mut self,
        now: SimTime,
        exited: &[ContainerId],
        tracer: &mut T,
    ) -> bool {
        if exited.is_empty() {
            return false;
        }
        self.exits_total += exited.len() as u64;
        for &id in exited {
            self.policy_monitor.forget(id);
            self.trace_monitor.forget(id);
            if let Some(c) = self.daemon.graveyard().get(id) {
                let code = match c.state() {
                    flowcon_container::ContainerState::Exited(code) => code,
                    _ => 0,
                };
                if T::ENABLED {
                    tracer.span_end(now, TraceKind::JobRun, id.as_raw(), 0);
                    tracer.instant(now, TraceKind::JobComplete, id.as_raw(), code as u32);
                }
                if self.slo_enabled {
                    // Sojourn = exit − admission.  Queue-wait is zero by
                    // construction on a single fluid node (first allocation
                    // happens in the admission event); see the `slo` field
                    // docs.
                    let sojourn = now.saturating_since(c.created_at()).as_secs_f64();
                    self.slo.record_exit(sojourn, 0.0);
                }
                self.recorder
                    .record_completion(c.workload().label(), c.created_at(), now, code);
            }
        }
        self.daemon.pool().ids_into(&mut self.scratch.pool_ids);
        self.policy.on_pool_change(now, &self.scratch.pool_ids)
    }

    /// Run the policy (Executor tick or listener interrupt), apply updates,
    /// and return the policy's next interval.
    ///
    /// Measurements and the decision's updates both land in reusable
    /// scratch buffers — a steady-state reconfiguration is allocation-free
    /// end to end.
    fn run_reconfigure<T: Tracer>(&mut self, now: SimTime, tracer: &mut T) -> Option<SimDuration> {
        if T::ENABLED {
            tracer.span_begin(
                now,
                TraceKind::Reconfigure,
                self.daemon.pool().len() as u32,
                0,
            );
        }
        self.policy_monitor
            .measure_into(now, &self.daemon, &mut self.scratch.measures);
        // Policies must clear the recycled buffer themselves; this belt-and-
        // suspenders clear keeps a non-conforming external policy from
        // re-applying last tick's limits.
        self.scratch.updates.clear();
        let next_interval =
            self.policy
                .reconfigure_into(now, &self.scratch.measures, &mut self.scratch.updates);
        self.algorithm_runs += 1;
        for &(id, limit) in &self.scratch.updates {
            if self
                .daemon
                .update(id, UpdateOptions::new().cpus(limit))
                .is_ok()
            {
                self.update_calls += 1;
            }
        }
        if T::ENABLED {
            tracer.span_end(
                now,
                TraceKind::Reconfigure,
                self.daemon.pool().len() as u32,
                0,
            );
        }
        next_interval
    }

    /// Reschedule the policy tick after a reconfiguration.
    fn schedule_tick<T: Tracer>(
        &mut self,
        sched: &mut Scheduler<'_, WorkerEvent, T>,
        interval: Option<SimDuration>,
    ) {
        if self.is_done() {
            return;
        }
        if let Some(itval) = interval {
            self.tick_gen += 1;
            sched.after(itval, WorkerEvent::PolicyTick(self.tick_gen));
        }
    }

    /// Schedule the next projected completion check.
    fn schedule_completion<T: Tracer>(&mut self, sched: &mut Scheduler<'_, WorkerEvent, T>) {
        if let Some(at) = self.next_completion() {
            sched.at(at, WorkerEvent::CompletionCheck(self.completion_gen));
        }
    }

    fn record_samples(&mut self, now: SimTime) {
        for (&id, &rate) in self.scratch.rate_ids.iter().zip(&self.scratch.rate_vals) {
            if let Some(c) = self.daemon.pool().get(id) {
                // Borrow the label in place: a steady-state sample tick must
                // not allocate (`series_mut` only clones for unseen labels).
                self.recorder.record_sample(
                    now,
                    c.workload().label(),
                    rate,
                    c.limits().cpu_limit(),
                );
            }
        }
    }

    fn record_growth_traces(&mut self, now: SimTime) {
        self.trace_monitor
            .measure_into(now, &self.daemon, &mut self.scratch.trace_measures);
        for m in &self.scratch.trace_measures {
            let Some(g) = m.growth() else { continue };
            if let Some(c) = self.daemon.pool().get(m.id) {
                self.recorder.record_growth(now, c.workload().label(), g);
            }
        }
    }

    /// Admit one job into the pool at `now` and run the shared arrival
    /// protocol: notify the policy, start (or pre-empt) the executor
    /// chain, recompute rates, and reproject the next completion.
    ///
    /// Shared by plan arrivals ([`WorkerEvent::Arrival`], which moves the
    /// job out of the owned plan) and open-loop streamed arrivals
    /// ([`WorkerEvent::StreamArrival`], admitted mid-run by the
    /// [`OpenLoopShell`]).
    fn admit_job<T: Tracer>(
        &mut self,
        now: SimTime,
        spec: ModelSpec,
        label: String,
        interrupted_by_exit: bool,
        sched: &mut Scheduler<'_, WorkerEvent, T>,
    ) {
        let image = spec.framework.image();
        let job = TrainingJob::with_label(spec, label, &mut self.rng);
        let id = self
            .daemon
            .run(image, job, ResourceLimits::unlimited(), now)
            .expect("default registry contains framework images");
        if T::ENABLED {
            let tracer = sched.tracer();
            tracer.instant(now, TraceKind::JobAdmit, id.as_raw(), 0);
            tracer.span_begin(now, TraceKind::JobRun, id.as_raw(), 0);
        }

        self.daemon.pool().ids_into(&mut self.scratch.pool_ids);
        let interrupt = self.policy.on_pool_change(now, &self.scratch.pool_ids);
        if interrupt || interrupted_by_exit {
            let next = self.run_reconfigure(now, sched.tracer());
            self.schedule_tick(sched, next);
        } else if self.daemon.pool().len() == 1 {
            // First job under a tick-less policy still needs the
            // executor chain started (if the policy has one).
            let initial = self.policy.initial_interval();
            self.schedule_tick(sched, initial);
        }
        self.recompute_rates(sched.tracer());
        self.schedule_completion(sched);
    }

    fn handle<T: Tracer>(&mut self, event: WorkerEvent, sched: &mut Scheduler<'_, WorkerEvent, T>) {
        let now = sched.now();
        match event {
            WorkerEvent::Arrival(idx) => {
                let exited = self.advance_to(now);
                let interrupted_by_exit = self.process_exits(now, &exited, sched.tracer());

                // The plan is owned by the simulation and each job arrives
                // exactly once: move the label out instead of cloning it.
                let request = &mut self.plan.jobs[idx];
                let spec = request.scaled_spec();
                let label = std::mem::take(&mut request.label);
                self.arrivals_pending -= 1;
                self.admit_job(now, spec, label, interrupted_by_exit, sched);
            }
            WorkerEvent::StreamArrival => {
                unreachable!("stream arrivals are dispatched by the open-loop shell")
            }
            WorkerEvent::CompletionCheck(gen) => {
                if gen != self.completion_gen {
                    return; // stale projection
                }
                let exited = self.advance_to(now);
                let interrupt = self.process_exits(now, &exited, sched.tracer());
                if interrupt {
                    let next = self.run_reconfigure(now, sched.tracer());
                    self.schedule_tick(sched, next);
                }
                self.recompute_rates(sched.tracer());
                self.schedule_completion(sched);
            }
            WorkerEvent::PolicyTick(gen) => {
                if gen != self.tick_gen {
                    return; // pre-empted by an interrupt
                }
                let exited = self.advance_to(now);
                let interrupt = self.process_exits(now, &exited, sched.tracer());
                let _ = interrupt; // tick already reconfigures below
                let next = self.run_reconfigure(now, sched.tracer());
                self.schedule_tick(sched, next);
                self.recompute_rates(sched.tracer());
                self.schedule_completion(sched);
            }
            WorkerEvent::SampleTick => {
                let exited = self.advance_to(now);
                let interrupt = self.process_exits(now, &exited, sched.tracer());
                if interrupt {
                    let next = self.run_reconfigure(now, sched.tracer());
                    self.schedule_tick(sched, next);
                    self.recompute_rates(sched.tracer());
                    self.schedule_completion(sched);
                }
                if self.recorder.sample_tick(now) {
                    self.record_samples(now);
                }
                if !self.is_done() {
                    sched.after(self.node.sample_interval, WorkerEvent::SampleTick);
                }
            }
            WorkerEvent::TraceTick => {
                let exited = self.advance_to(now);
                let interrupt = self.process_exits(now, &exited, sched.tracer());
                if interrupt {
                    let next = self.run_reconfigure(now, sched.tracer());
                    self.schedule_tick(sched, next);
                    self.recompute_rates(sched.tracer());
                    self.schedule_completion(sched);
                }
                if self.recorder.growth_tick(now) {
                    self.record_growth_traces(now);
                }
                if !self.is_done() {
                    sched.after(TRACE_INTERVAL, WorkerEvent::TraceTick);
                }
            }
            WorkerEvent::InjectFailure(idx) => {
                let exited = self.advance_to(now);
                let mut interrupt = self.process_exits(now, &exited, sched.tracer());
                let injection = self.failures[idx].clone();
                let target = self
                    .daemon
                    .pool()
                    .iter()
                    .find(|c| c.workload().label() == injection.label)
                    .map(|c| c.id());
                if let Some(id) = target {
                    self.daemon
                        .exec(id, |job| job.inject_failure(injection.exit_code))
                        .expect("target is running");
                    let crashed = self.daemon.reap(now);
                    interrupt |= self.process_exits(now, &crashed, sched.tracer());
                }
                if interrupt {
                    let next = self.run_reconfigure(now, sched.tracer());
                    self.schedule_tick(sched, next);
                }
                self.recompute_rates(sched.tracer());
                self.schedule_completion(sched);
            }
        }
    }
}

/// Newtype so `Simulation` can be implemented without exposing internals.
struct WorkerShell<R: Recorder>(WorkerSim<R>);

impl<R: Recorder> Simulation for WorkerShell<R> {
    type Event = WorkerEvent;
    fn handle<T: Tracer>(&mut self, event: WorkerEvent, sched: &mut Scheduler<'_, WorkerEvent, T>) {
        self.0.handle(event, sched);
    }
}

/// The open-loop driver: a [`WorkerSim`] plus the [`JobStream`] feeding it.
///
/// Owns the one-job lookahead: `pending` is the job whose
/// [`WorkerEvent::StreamArrival`] is currently scheduled.  Every other
/// event is delegated to the worker unchanged, so open-loop and
/// plan-driven runs share the entire simulation body.
struct OpenLoopShell<R: Recorder, J: JobStream> {
    worker: WorkerSim<R>,
    stream: J,
    horizon: Horizon,
    pending: Option<StreamedJob>,
    submitted: u64,
}

impl<R: Recorder, J: JobStream> OpenLoopShell<R, J> {
    /// Pull the next admissible job into `pending` and return its arrival
    /// time, or mark the stream spent (`stream_active = false`) when the
    /// stream ends or the horizon trips.
    ///
    /// One pull per admission: a job the horizon rejects is dropped, not
    /// buffered — the run is over at that point by definition.
    fn pull_next(&mut self) -> Option<SimTime> {
        debug_assert!(self.pending.is_none(), "one lookahead job at a time");
        let admissible = self
            .stream
            .next_job()
            .filter(|job| self.horizon.admits(self.submitted as usize, job.arrival));
        match admissible {
            Some(job) => {
                let at = job.arrival;
                self.pending = Some(job);
                self.worker.stream_active = true;
                Some(at)
            }
            None => {
                self.worker.stream_active = false;
                None
            }
        }
    }
}

impl<R: Recorder, J: JobStream> Simulation for OpenLoopShell<R, J> {
    type Event = WorkerEvent;

    fn handle<T: Tracer>(&mut self, event: WorkerEvent, sched: &mut Scheduler<'_, WorkerEvent, T>) {
        let WorkerEvent::StreamArrival = event else {
            self.worker.handle(event, sched);
            return;
        };
        let now = sched.now();
        let job = self.pending.take().expect("a streamed arrival is pending");
        debug_assert!(job.arrival == now, "stream arrival fired off schedule");
        let exited = self.worker.advance_to(now);
        let interrupted_by_exit = self.worker.process_exits(now, &exited, sched.tracer());
        self.submitted += 1;
        // Schedule the lookahead *before* admitting: admission consults
        // `is_done` (via tick scheduling), which must already know whether
        // more arrivals are coming.
        if let Some(at) = self.pull_next() {
            assert!(
                at >= now,
                "job streams must yield monotone arrivals ({at} after {now})"
            );
            sched.at(at, WorkerEvent::StreamArrival);
        }
        self.worker.admit_job(
            now,
            job.scaled_spec(),
            job.label,
            interrupted_by_exit,
            sched,
        );
    }
}

/// Helper: a `SimDuration` as an absolute time from t=0.
trait IntoTime {
    fn into_time(self) -> SimTime;
}

impl IntoTime for SimDuration {
    fn into_time(self) -> SimTime {
        SimTime::ZERO + self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConConfig;
    use crate::policy::{FairSharePolicy, FlowConPolicy};
    use crate::session::{Session, SessionResult};

    fn node() -> NodeConfig {
        NodeConfig::default()
    }

    fn flowcon(
        node: NodeConfig,
        plan: &WorkloadPlan,
        config: FlowConConfig,
    ) -> SessionResult<RunSummary> {
        Session::builder()
            .node(node)
            .plan(plan.clone())
            .policy(FlowConPolicy::new(config))
            .build()
            .run()
    }

    fn baseline(node: NodeConfig, plan: &WorkloadPlan) -> SessionResult<RunSummary> {
        Session::builder()
            .node(node)
            .plan(plan.clone())
            .policy(FairSharePolicy::new())
            .build()
            .run()
    }

    #[test]
    fn single_job_runs_to_completion_under_na() {
        let plan = WorkloadPlan::random_from(&[flowcon_dl::ModelId::MnistTf], 1);
        let result = baseline(node(), &plan);
        assert_eq!(result.output.completions.len(), 1);
        let c = &result.output.completions[0];
        assert_eq!(c.exit_code, 0);
        // Alone at demand 0.75, ~27 cpu-s of work: completion ≈ 36 s (±jitter).
        let secs = c.completion_secs();
        assert!((30.0..45.0).contains(&secs), "completion {secs}");
    }

    #[test]
    fn fixed_three_under_na_matches_paper_scale() {
        let plan = WorkloadPlan::fixed_three();
        let result = baseline(node(), &plan);
        let s = &result.output;
        assert_eq!(s.completions.len(), 3);
        let makespan = s.makespan_secs();
        // §5.3: NA makespan ≈ 394 s.  Allow the fluid model ±10%.
        assert!((354.0..434.0).contains(&makespan), "NA makespan {makespan}");
        let mnist_tf = s.completion_of("MNIST (Tensorflow)").unwrap();
        // §5.3: ≈ 84.7 s under NA.
        assert!((70.0..100.0).contains(&mnist_tf), "MNIST-TF {mnist_tf}");
    }

    #[test]
    fn flowcon_speeds_up_the_late_short_job() {
        let plan = WorkloadPlan::fixed_three();
        let na = baseline(node(), &plan);
        let fc = flowcon(node(), &plan, FlowConConfig::with_params(0.05, 20));
        let red = fc
            .output
            .reduction_vs(&na.output, "MNIST (Tensorflow)")
            .unwrap();
        assert!(
            red > 10.0,
            "expected a double-digit completion-time reduction, got {red:.1}%"
        );
        // Makespan must not regress materially (§5.3: FlowCon improves 1-5%).
        let makespan_impr = fc.output.makespan_improvement_vs(&na.output);
        assert!(makespan_impr > -3.0, "makespan change {makespan_impr:.1}%");
    }

    #[test]
    fn runs_are_deterministic() {
        let plan = WorkloadPlan::random_five(11);
        let a = flowcon(node(), &plan, FlowConConfig::default());
        let b = flowcon(node(), &plan, FlowConConfig::default());
        assert_eq!(a.output.completions, b.output.completions);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn all_jobs_complete_cleanly_at_scale() {
        let plan = WorkloadPlan::random_n(15, 3);
        let result = flowcon(node(), &plan, FlowConConfig::with_params(0.10, 40));
        assert_eq!(result.output.completions.len(), 15);
        assert!(result.output.completions.iter().all(|c| c.exit_code == 0));
    }

    #[test]
    fn traces_are_recorded() {
        let plan = WorkloadPlan::fixed_three();
        let fc = flowcon(node(), &plan, FlowConConfig::default());
        assert_eq!(fc.output.cpu_usage.len(), 3, "one usage series per job");
        assert!(!fc.output.growth_efficiency.is_empty());
        assert!(fc.output.update_calls > 0);
        assert!(fc.output.algorithm_runs > 0);
    }
}
