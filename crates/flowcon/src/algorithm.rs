//! Algorithm 1: Dynamic Resource Management for containers on a worker.
//!
//! Given the growth measurements of every container on the worker, the
//! algorithm (a) updates the NL/WL/CL classification, then (b) either
//! releases all limits and backs off (when every job has converged) or
//! computes new limits:
//!
//! * **Completing List**: `L = G / ΣG`, bounded below by `1/(β·n)` so a
//!   converged job is never starved (lines 20–22);
//! * **Watching List**: limit unchanged (line 24);
//! * **New List**: `L = G / ΣG` (line 26) — fresh containers that have no
//!   `G` yet receive limit 1 (a new job is assumed fast: Fig. 7 shows a
//!   just-launched MNIST given the full node).
//!
//! `ΣG` runs over every container on the worker; fresh containers
//! contribute an optimistic prior `Ĝ = max(maxᵢ Gᵢ, prior)` (see
//! [`crate::config::FlowConConfig::fresh_prior`]), which is what
//! pushes an old slow job down to its lower bound the moment a new job
//! arrives.

use flowcon_container::ContainerId;

use crate::config::FlowConConfig;
use crate::lists::{ListKind, Lists};
use crate::metric::GrowthMeasurement;

/// The outcome of one Algorithm 1 run.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmOutcome {
    /// New CPU limits to apply via `docker update`, in container-id order.
    /// Containers whose limit is unchanged are omitted.
    pub updates: Vec<(ContainerId, f64)>,
    /// True if every container was in CL: limits were all reset to 1 and
    /// the caller must double its interval (lines 14–17).
    pub backed_off: bool,
}

/// Run Algorithm 1 over the current measurements.
///
/// `lists` carries the classification state across invocations; `measures`
/// must contain exactly the containers currently on the worker.
///
/// Allocating convenience wrapper over [`run_algorithm1_into`]; the worker
/// hot path threads a reusable updates buffer through the `_into` variant
/// instead.
pub fn run_algorithm1(
    config: &FlowConConfig,
    lists: &mut Lists,
    measures: &[GrowthMeasurement],
) -> AlgorithmOutcome {
    let mut updates = Vec::new();
    let backed_off = run_algorithm1_into(config, lists, measures, &mut updates);
    AlgorithmOutcome {
        updates,
        backed_off,
    }
}

/// Allocation-free Algorithm 1: clears `updates` and refills it with the
/// new `(id, limit)` pairs in place, returning whether the all-CL back-off
/// branch fired (lines 14–17).
///
/// With a warm `updates` buffer (and warm `lists` slots) the steady-state
/// call performs zero heap allocations.
pub fn run_algorithm1_into(
    config: &FlowConConfig,
    lists: &mut Lists,
    measures: &[GrowthMeasurement],
    updates: &mut Vec<(ContainerId, f64)>,
) -> bool {
    updates.clear();
    let n = measures.len();
    if n == 0 {
        return false;
    }

    // Lines 2–13: classify every measured container.  Fresh containers
    // (no G yet) stay where the listener put them (NL).
    let growth_of = |m: &GrowthMeasurement| m.growth_for(config.resource);
    for m in measures {
        if let Some(g) = growth_of(m) {
            lists.observe(m.id, g, config.alpha);
        }
    }

    // Line 14: if every container has converged, release all limits and
    // back off.  Fresh containers are in NL, so their presence prevents
    // this branch, as it should.
    let every_measured_in_cl = measures
        .iter()
        .all(|m| lists.kind_of(m.id) == Some(ListKind::Completing));
    if every_measured_in_cl {
        // Same 1e-9 tolerance as the update-emission path below: a limit
        // like 0.9999999999 must not trigger a spurious `docker update`.
        updates.extend(
            measures
                .iter()
                .filter(|m| (m.cpu_limit - 1.0).abs() > 1e-9)
                .map(|m| (m.id, 1.0)),
        );
        return true;
    }

    // ΣG over all containers; fresh ones contribute an optimistic prior.
    let max_g = measures
        .iter()
        .filter_map(&growth_of)
        .fold(0.0_f64, f64::max);
    let fresh_prior = max_g.max(config.fresh_prior);
    let sum_g: f64 = measures
        .iter()
        .map(|m| growth_of(m).unwrap_or(fresh_prior))
        .sum();
    debug_assert!(sum_g > 0.0, "at least the fresh prior contributes");

    let lower_bound = 1.0 / (config.beta * n as f64);
    for m in measures {
        let kind = lists.kind_of(m.id).unwrap_or(ListKind::New);
        let new_limit = match (kind, growth_of(m)) {
            // Line 24: Watching List limits remain unchanged.
            (ListKind::Watching, _) => continue,
            // Lines 20–22: Completing List, proportional with lower bound.
            (ListKind::Completing, Some(g)) => (g / sum_g).max(lower_bound),
            // Line 26: New List, proportional share.
            (ListKind::New, Some(g)) => g / sum_g,
            // Fresh container: full limit until it produces measurements.
            (_, None) => 1.0,
        };
        let new_limit = new_limit.clamp(0.0, 1.0);
        if (new_limit - m.cpu_limit).abs() > 1e-9 {
            updates.push((m.id, new_limit));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u32) -> ContainerId {
        ContainerId::from_raw(raw)
    }

    fn measure(raw: u32, growth: Option<f64>, limit: f64) -> GrowthMeasurement {
        // Encode the desired CPU growth as progress over avg usage 0.5.
        GrowthMeasurement {
            id: id(raw),
            progress: growth.map(|g| g * 0.5),
            avg_usage: flowcon_sim::ResourceVec::cpu(0.5),
            cpu_limit: limit,
        }
    }

    fn config() -> FlowConConfig {
        FlowConConfig::default() // alpha 5%, beta 2, prior 0.2
    }

    #[test]
    fn fresh_container_gets_full_limit() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        let out = run_algorithm1(&config(), &mut lists, &[measure(1, None, 0.5)]);
        assert_eq!(out.updates, vec![(id(1), 1.0)]);
        assert!(!out.backed_off);
    }

    #[test]
    fn converged_job_pinned_at_lower_bound_when_newcomer_arrives() {
        // The Fig. 7 moment: an old VAE with tiny G plus a fresh MNIST.
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        // Drive the VAE into CL with two low observations.
        lists.observe(id(1), 0.01, 0.05);
        lists.observe(id(1), 0.01, 0.05);
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.01), 1.0), measure(2, None, 1.0)],
        );
        // n = 2, beta = 2 -> lower bound 0.25; proportional share is
        // 0.01/(0.01+0.5) ≈ 0.02, so the bound binds.
        let vae = out.updates.iter().find(|(i, _)| *i == id(1)).unwrap();
        assert!((vae.1 - 0.25).abs() < 1e-9, "VAE limit {}", vae.1);
        // The fresh container keeps limit 1 (no update needed: already 1).
        assert!(out.updates.iter().all(|(i, _)| *i != id(2)));
    }

    #[test]
    fn all_completing_releases_limits_and_backs_off() {
        let mut lists = Lists::new();
        for raw in [1, 2] {
            lists.insert_new(id(raw));
            lists.observe(id(raw), 0.0, 0.05);
            lists.observe(id(raw), 0.0, 0.05);
        }
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.001), 0.25), measure(2, Some(0.002), 0.7)],
        );
        assert!(out.backed_off);
        assert_eq!(out.updates, vec![(id(1), 1.0), (id(2), 1.0)]);
    }

    #[test]
    fn backoff_emits_no_update_for_limits_already_one() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.observe(id(1), 0.0, 0.05);
        lists.observe(id(1), 0.0, 0.05);
        let out = run_algorithm1(&config(), &mut lists, &[measure(1, Some(0.001), 1.0)]);
        assert!(out.backed_off);
        assert!(out.updates.is_empty());
    }

    #[test]
    fn backoff_tolerates_float_noise_in_released_limits() {
        // A limit within 1e-9 of 1.0 (accumulated float noise) must not
        // trigger a spurious release update during back-off.
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.observe(id(1), 0.0, 0.05);
        lists.observe(id(1), 0.0, 0.05);
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.001), 1.0 - 1e-10)],
        );
        assert!(out.backed_off);
        assert!(out.updates.is_empty(), "{:?}", out.updates);
    }

    #[test]
    fn watching_list_limits_unchanged() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        // One low observation -> WL.
        lists.observe(id(1), 0.01, 0.05);
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.01), 0.6), measure(2, Some(0.3), 1.0)],
        );
        // Container 1 got measured below alpha again -> moves WL -> CL in
        // this run, so it IS reconfigured this time.  Set up a cleaner WL
        // case: growth above alpha then below once.
        // (Covered precisely in the next test; here just check types.)
        assert!(!out.backed_off);
    }

    #[test]
    fn watching_member_keeps_previous_limit_exactly() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        // Container 1: first low observation inside this algorithm run
        // moves it NL -> WL, and WL rules say "unchanged".
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.01), 0.6), measure(2, Some(0.3), 1.0)],
        );
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Watching));
        assert!(
            out.updates.iter().all(|(i, _)| *i != id(1)),
            "WL container must not be reconfigured: {:?}",
            out.updates
        );
    }

    #[test]
    fn new_list_shares_are_proportional_to_growth() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.3), 1.0), measure(2, Some(0.1), 1.0)],
        );
        let l1 = out.updates.iter().find(|(i, _)| *i == id(1)).unwrap().1;
        let l2 = out.updates.iter().find(|(i, _)| *i == id(2)).unwrap().1;
        assert!((l1 - 0.75).abs() < 1e-9);
        assert!((l2 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn no_containers_is_a_noop() {
        let mut lists = Lists::new();
        let out = run_algorithm1(&config(), &mut lists, &[]);
        assert!(out.updates.is_empty());
        assert!(!out.backed_off);
    }

    #[test]
    fn unchanged_limits_are_omitted_from_updates() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        // Equal growth -> both get 0.5.
        let out = run_algorithm1(
            &config(),
            &mut lists,
            &[measure(1, Some(0.2), 0.5), measure(2, Some(0.2), 1.0)],
        );
        // Container 1 already at 0.5: no update; container 2 changes.
        assert_eq!(out.updates, vec![(id(2), 0.5)]);
    }
}
