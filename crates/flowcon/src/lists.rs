//! The New / Watching / Completing lists of Algorithm 1.
//!
//! Each container sits in at most one list:
//!
//! * **NL** (New List) — young and quickly growing;
//! * **WL** (Watching List) — near convergence (one below-α measurement);
//! * **CL** (Completing List) — converging and growing slowly (two
//!   consecutive below-α measurements).
//!
//! Transitions (Algorithm 1 lines 2–13): a below-α measurement demotes
//! NL→WL and WL→CL; an at-or-above-α measurement promotes any container
//! back to NL.  Mutual exclusion of the three lists is an invariant that
//! property tests pin down.

use std::collections::BTreeMap;

use flowcon_container::ContainerId;

/// Which list a container occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// New List: young and quickly growing.
    New,
    /// Watching List: near convergence.
    Watching,
    /// Completing List: converging, growing slowly.
    Completing,
}

/// The three mutually exclusive lists.
#[derive(Debug, Clone, Default)]
pub struct Lists {
    membership: BTreeMap<ContainerId, ListKind>,
}

impl Lists {
    /// Empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a container into the New List (Algorithm 2 line 7).
    pub fn insert_new(&mut self, id: ContainerId) {
        self.membership.insert(id, ListKind::New);
    }

    /// Remove a container from whichever list holds it (Algorithm 2 lines
    /// 12–14).
    pub fn remove(&mut self, id: ContainerId) {
        self.membership.remove(&id);
    }

    /// The list currently holding `id`.
    pub fn kind_of(&self, id: ContainerId) -> Option<ListKind> {
        self.membership.get(&id).copied()
    }

    /// Apply one growth measurement (Algorithm 1 lines 4–13).
    ///
    /// Containers not yet tracked are treated as New-List members first
    /// (the listener inserts arrivals into NL before the algorithm runs,
    /// but a direct call must not panic).
    pub fn observe(&mut self, id: ContainerId, growth: f64, alpha: f64) {
        let current = *self.membership.entry(id).or_insert(ListKind::New);
        let next = if growth < alpha {
            match current {
                ListKind::New => ListKind::Watching,
                ListKind::Watching => ListKind::Completing,
                ListKind::Completing => ListKind::Completing,
            }
        } else {
            ListKind::New
        };
        self.membership.insert(id, next);
    }

    /// True if **all** tracked containers are in the Completing List and at
    /// least one container exists (Algorithm 1 line 14).
    pub fn all_completing(&self) -> bool {
        !self.membership.is_empty() && self.membership.values().all(|&k| k == ListKind::Completing)
    }

    /// Number of tracked containers.
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// True when no container is tracked.
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Iterate `(id, kind)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ContainerId, ListKind)> + '_ {
        self.membership.iter().map(|(&id, &k)| (id, k))
    }

    /// Ids in a given list, in id order.
    pub fn in_list(&self, kind: ListKind) -> Vec<ContainerId> {
        self.membership
            .iter()
            .filter(|(_, &k)| k == kind)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> ContainerId {
        ContainerId::from_raw(raw)
    }

    #[test]
    fn demotion_takes_two_low_measurements() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Watching));
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
        // Stays in CL on further low measurements.
        lists.observe(id(1), 0.0, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
    }

    #[test]
    fn high_growth_promotes_back_to_new() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.observe(id(1), 0.01, 0.05);
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
        // A staircase loss drop makes G spike above alpha again.
        lists.observe(id(1), 0.2, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
    }

    #[test]
    fn boundary_value_alpha_counts_as_growing() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        // Algorithm 1 line 10: G >= alpha keeps the job in NL.
        lists.observe(id(1), 0.05, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
    }

    #[test]
    fn all_completing_requires_every_member() {
        let mut lists = Lists::new();
        assert!(!lists.all_completing(), "empty lists are not all-CL");
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        for _ in 0..2 {
            lists.observe(id(1), 0.0, 0.05);
        }
        assert!(!lists.all_completing());
        for _ in 0..2 {
            lists.observe(id(2), 0.0, 0.05);
        }
        assert!(lists.all_completing());
    }

    #[test]
    fn remove_drops_membership() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.remove(id(1));
        assert_eq!(lists.kind_of(id(1)), None);
        assert!(lists.is_empty());
    }

    #[test]
    fn in_list_partitions_members() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        lists.observe(id(2), 0.0, 0.05);
        assert_eq!(lists.in_list(ListKind::New), vec![id(1)]);
        assert_eq!(lists.in_list(ListKind::Watching), vec![id(2)]);
        assert!(lists.in_list(ListKind::Completing).is_empty());
    }

    #[test]
    fn observe_untracked_container_is_tolerated() {
        let mut lists = Lists::new();
        lists.observe(id(9), 0.5, 0.05);
        assert_eq!(lists.kind_of(id(9)), Some(ListKind::New));
    }
}
