//! The New / Watching / Completing lists of Algorithm 1.
//!
//! Each container sits in at most one list:
//!
//! * **NL** (New List) — young and quickly growing;
//! * **WL** (Watching List) — near convergence (one below-α measurement);
//! * **CL** (Completing List) — converging and growing slowly (two
//!   consecutive below-α measurements).
//!
//! Transitions (Algorithm 1 lines 2–13): a below-α measurement demotes
//! NL→WL and WL→CL; an at-or-above-α measurement promotes any container
//! back to NL.  Mutual exclusion of the three lists is an invariant that
//! property tests pin down.
//!
//! Membership is stored as a dense slot map indexed by the container's raw
//! id (the daemon allocates ids sequentially from 0), so the steady-state
//! `observe` path is a branch-free array write with no tree rebalancing and
//! no heap traffic, and `all_completing` is an O(1) counter compare.

use flowcon_container::ContainerId;

/// Which list a container occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// New List: young and quickly growing.
    New,
    /// Watching List: near convergence.
    Watching,
    /// Completing List: converging, growing slowly.
    Completing,
}

/// The three mutually exclusive lists.
///
/// Backed by a dense `Vec` keyed by container slot (raw id): slot lookup
/// and membership transitions are O(1) array ops, and the vector only grows
/// when a never-seen slot arrives — steady-state reconfiguration performs
/// zero heap allocations (asserted by
/// `crates/flowcon/tests/policy_zero_alloc.rs`).
///
/// The dense layout assumes what the daemon guarantees: ids are allocated
/// **sequentially from 0** per worker.  Memory is O(highest raw id ever
/// tracked) — slots of departed containers are retained (cheap: 1 byte
/// each) so they are allocation-free if the id is reused.  Don't feed this
/// type sparse hand-rolled ids (e.g. `from_raw(1 << 30)`): each tracked
/// container would pin `max_id` bytes, where the old tree-based
/// implementation was O(tracked).
#[derive(Debug, Clone, Default)]
pub struct Lists {
    /// `slots[raw_id]` is the list holding that container, if tracked.
    slots: Vec<Option<ListKind>>,
    /// Tracked containers per list, indexed by `kind_index`.
    counts: [usize; 3],
}

/// Index of a list kind into the `counts` array.
const fn kind_index(kind: ListKind) -> usize {
    match kind {
        ListKind::New => 0,
        ListKind::Watching => 1,
        ListKind::Completing => 2,
    }
}

impl Lists {
    /// Empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot for `id`, growing the dense map when a new high id arrives
    /// (a membership change, never the steady-state observe path).
    fn slot_mut(&mut self, id: ContainerId) -> &mut Option<ListKind> {
        let idx = id.as_raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        &mut self.slots[idx]
    }

    fn set(&mut self, id: ContainerId, kind: ListKind) {
        let slot = self.slot_mut(id);
        if let Some(prev) = slot.replace(kind) {
            self.counts[kind_index(prev)] -= 1;
        }
        self.counts[kind_index(kind)] += 1;
    }

    /// Insert a container into the New List (Algorithm 2 line 7).
    pub fn insert_new(&mut self, id: ContainerId) {
        self.set(id, ListKind::New);
    }

    /// Remove a container from whichever list holds it (Algorithm 2 lines
    /// 12–14).
    pub fn remove(&mut self, id: ContainerId) {
        if let Some(slot) = self.slots.get_mut(id.as_raw() as usize) {
            if let Some(prev) = slot.take() {
                self.counts[kind_index(prev)] -= 1;
            }
        }
    }

    /// The list currently holding `id`.
    pub fn kind_of(&self, id: ContainerId) -> Option<ListKind> {
        self.slots.get(id.as_raw() as usize).copied().flatten()
    }

    /// Apply one growth measurement (Algorithm 1 lines 4–13).
    ///
    /// Containers not yet tracked are treated as New-List members first
    /// (the listener inserts arrivals into NL before the algorithm runs,
    /// but a direct call must not panic).
    pub fn observe(&mut self, id: ContainerId, growth: f64, alpha: f64) {
        let current = self.kind_of(id).unwrap_or(ListKind::New);
        let next = if growth < alpha {
            match current {
                ListKind::New => ListKind::Watching,
                ListKind::Watching => ListKind::Completing,
                ListKind::Completing => ListKind::Completing,
            }
        } else {
            ListKind::New
        };
        self.set(id, next);
    }

    /// True if **all** tracked containers are in the Completing List and at
    /// least one container exists (Algorithm 1 line 14).
    pub fn all_completing(&self) -> bool {
        let cl = self.counts[kind_index(ListKind::Completing)];
        cl > 0 && cl == self.len()
    }

    /// Number of tracked containers.
    pub fn len(&self) -> usize {
        self.counts.iter().sum()
    }

    /// True when no container is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate `(id, kind)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ContainerId, ListKind)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.map(|k| (ContainerId::from_raw(idx as u32), k)))
    }

    /// Ids in a given list, in id order.
    pub fn in_list(&self, kind: ListKind) -> Vec<ContainerId> {
        self.iter()
            .filter(|&(_, k)| k == kind)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u32) -> ContainerId {
        ContainerId::from_raw(raw)
    }

    #[test]
    fn demotion_takes_two_low_measurements() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Watching));
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
        // Stays in CL on further low measurements.
        lists.observe(id(1), 0.0, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
    }

    #[test]
    fn high_growth_promotes_back_to_new() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.observe(id(1), 0.01, 0.05);
        lists.observe(id(1), 0.01, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::Completing));
        // A staircase loss drop makes G spike above alpha again.
        lists.observe(id(1), 0.2, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
    }

    #[test]
    fn boundary_value_alpha_counts_as_growing() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        // Algorithm 1 line 10: G >= alpha keeps the job in NL.
        lists.observe(id(1), 0.05, 0.05);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
    }

    #[test]
    fn all_completing_requires_every_member() {
        let mut lists = Lists::new();
        assert!(!lists.all_completing(), "empty lists are not all-CL");
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        for _ in 0..2 {
            lists.observe(id(1), 0.0, 0.05);
        }
        assert!(!lists.all_completing());
        for _ in 0..2 {
            lists.observe(id(2), 0.0, 0.05);
        }
        assert!(lists.all_completing());
    }

    #[test]
    fn remove_drops_membership() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.remove(id(1));
        assert_eq!(lists.kind_of(id(1)), None);
        assert!(lists.is_empty());
    }

    #[test]
    fn in_list_partitions_members() {
        let mut lists = Lists::new();
        lists.insert_new(id(1));
        lists.insert_new(id(2));
        lists.observe(id(2), 0.0, 0.05);
        assert_eq!(lists.in_list(ListKind::New), vec![id(1)]);
        assert_eq!(lists.in_list(ListKind::Watching), vec![id(2)]);
        assert!(lists.in_list(ListKind::Completing).is_empty());
    }

    #[test]
    fn observe_untracked_container_is_tolerated() {
        let mut lists = Lists::new();
        lists.observe(id(9), 0.5, 0.05);
        assert_eq!(lists.kind_of(id(9)), Some(ListKind::New));
    }

    #[test]
    fn sparse_slots_keep_counts_consistent() {
        // Ids far apart (slot map grows) with churn in between.
        let mut lists = Lists::new();
        lists.insert_new(id(0));
        lists.insert_new(id(100));
        assert_eq!(lists.len(), 2);
        for _ in 0..2 {
            lists.observe(id(0), 0.0, 0.05);
            lists.observe(id(100), 0.0, 0.05);
        }
        assert!(lists.all_completing());
        lists.remove(id(0));
        assert_eq!(lists.len(), 1);
        assert!(lists.all_completing(), "remaining member is still CL");
        lists.remove(id(100));
        assert!(lists.is_empty());
        assert!(!lists.all_completing());
        // Removing an id the map never saw is a no-op.
        lists.remove(id(7_000));
        assert_eq!(lists.kind_of(id(7_000)), None);
    }

    #[test]
    fn iter_is_in_id_order_across_kinds() {
        let mut lists = Lists::new();
        for raw in [5, 1, 3] {
            lists.insert_new(id(raw));
        }
        lists.observe(id(3), 0.0, 0.05);
        let seen: Vec<u32> = lists.iter().map(|(i, _)| i.as_raw()).collect();
        assert_eq!(seen, vec![1, 3, 5]);
    }
}
