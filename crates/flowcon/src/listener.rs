//! Algorithm 2: the Worker Monitor's listeners.
//!
//! The *New Cons* and *Finished Cons* listeners watch the container pool in
//! real time.  At each iteration they compare the pool's membership against
//! the previous iteration (`c = T(i) − T(i−1)`):
//!
//! * `c > 0` — new containers joined: insert them into the New List, reset
//!   the executor interval (breaking any exponential back-off) and run
//!   Algorithm 1 immediately (lines 5–9);
//! * `c < 0` — containers finished: purge them from every list, release
//!   their resources, reset the interval and run Algorithm 1 (lines 10–17).
//!
//! In the discrete-event worker the listener is invoked exactly when the
//! daemon emits pool-change events, which models the paper's
//! "lightweight background-listeners track the container states in
//! real-time" (§4.3) without polling.

use flowcon_container::ContainerId;

use crate::lists::Lists;

/// What the listener decided after observing a pool snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenerOutcome {
    /// Containers that newly joined (inserted into NL).
    pub arrived: Vec<ContainerId>,
    /// Containers that left (purged from the lists, resources released).
    pub departed: Vec<ContainerId>,
    /// True if the executor must reset `itval` to its initial value and run
    /// Algorithm 1 right now.
    pub interrupt: bool,
}

impl ListenerOutcome {
    fn quiet() -> Self {
        ListenerOutcome {
            arrived: Vec::new(),
            departed: Vec::new(),
            interrupt: false,
        }
    }
}

/// The Worker Monitor's listener state (Algorithm 2).
#[derive(Debug, Default, Clone)]
pub struct Listener {
    /// Pool membership at the previous iteration, sorted ascending (the
    /// pool always reports ids in id order, so the diff is a single merge
    /// walk and steady-state observation is allocation-free).
    known: Vec<ContainerId>,
    /// Iteration counter `i`.
    iteration: u64,
}

impl Listener {
    /// A fresh listener with an empty membership snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterations performed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Allocation-free observation: update `lists` for every arrival and
    /// departure and return whether anything changed (Algorithm 2's
    /// interrupt).  This is the hot-path entry point the FlowCon policy
    /// uses; [`Listener::observe`] reports the same outcome with the
    /// arrival/departure sets materialized.
    ///
    /// `pool_ids` must be the ids of every container currently in the
    /// pool, in ascending id order (how the pool iterates).
    pub fn observe_interrupt(&mut self, pool_ids: &[ContainerId], lists: &mut Lists) -> bool {
        self.iteration += 1;
        debug_assert!(
            pool_ids.windows(2).all(|w| w[0] < w[1]),
            "pool ids must arrive sorted ascending"
        );
        // Merge-walk the sorted previous and current memberships.
        let mut changed = false;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.known.len() || j < pool_ids.len() {
            match (self.known.get(i).copied(), pool_ids.get(j).copied()) {
                (Some(k), Some(p)) if k == p => {
                    i += 1;
                    j += 1;
                }
                // Lines 10–15: c < 0, purge finished containers.
                (Some(k), Some(p)) if k < p => {
                    lists.remove(k);
                    changed = true;
                    i += 1;
                }
                (Some(k), None) => {
                    lists.remove(k);
                    changed = true;
                    i += 1;
                }
                // Lines 5–7: c > 0, put unknown containers into NL.
                (_, Some(p)) => {
                    lists.insert_new(p);
                    changed = true;
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        if changed {
            // Reuses the snapshot buffer's capacity from here on.
            self.known.clear();
            self.known.extend_from_slice(pool_ids);
        }
        changed
    }

    /// Observe the current pool membership and update `lists` accordingly.
    ///
    /// `pool_ids` must be the ids of every container currently in the pool
    /// in ascending id order (Algorithm 2's `T(i)` is their count).
    /// Handles simultaneous arrivals and departures in one call (the
    /// paper's loop would observe them over two iterations; the net effect
    /// is identical).  Allocates the arrival/departure sets; interrupt-only
    /// callers should prefer [`Listener::observe_interrupt`].
    pub fn observe(&mut self, pool_ids: &[ContainerId], lists: &mut Lists) -> ListenerOutcome {
        let arrived: Vec<ContainerId> = pool_ids
            .iter()
            .copied()
            .filter(|p| self.known.binary_search(p).is_err())
            .collect();
        let departed: Vec<ContainerId> = self
            .known
            .iter()
            .copied()
            .filter(|k| pool_ids.binary_search(k).is_err())
            .collect();
        if !self.observe_interrupt(pool_ids, lists) {
            return ListenerOutcome::quiet();
        }
        // Lines 8 & 16: reset itval and trigger Algorithm 1.
        ListenerOutcome {
            arrived,
            departed,
            interrupt: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::ListKind;

    fn id(raw: u32) -> ContainerId {
        ContainerId::from_raw(raw)
    }

    #[test]
    fn first_observation_registers_arrivals() {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        let out = listener.observe(&[id(1), id(2)], &mut lists);
        assert_eq!(out.arrived, vec![id(1), id(2)]);
        assert!(out.departed.is_empty());
        assert!(out.interrupt);
        assert_eq!(lists.kind_of(id(1)), Some(ListKind::New));
        assert_eq!(lists.kind_of(id(2)), Some(ListKind::New));
    }

    #[test]
    fn steady_state_is_quiet() {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        listener.observe(&[id(1)], &mut lists);
        let out = listener.observe(&[id(1)], &mut lists);
        assert!(!out.interrupt);
        assert!(out.arrived.is_empty() && out.departed.is_empty());
        assert_eq!(listener.iteration(), 2);
    }

    #[test]
    fn departure_purges_all_lists() {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        listener.observe(&[id(1), id(2)], &mut lists);
        // Drive container 1 into CL.
        lists.observe(id(1), 0.0, 0.05);
        lists.observe(id(1), 0.0, 0.05);
        let out = listener.observe(&[id(2)], &mut lists);
        assert_eq!(out.departed, vec![id(1)]);
        assert!(out.interrupt);
        assert_eq!(lists.kind_of(id(1)), None);
        assert_eq!(lists.kind_of(id(2)), Some(ListKind::New));
    }

    #[test]
    fn simultaneous_arrival_and_departure() {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        listener.observe(&[id(1)], &mut lists);
        let out = listener.observe(&[id(2)], &mut lists);
        assert_eq!(out.arrived, vec![id(2)]);
        assert_eq!(out.departed, vec![id(1)]);
        assert!(out.interrupt);
    }

    #[test]
    fn empty_pool_after_all_finish() {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        listener.observe(&[id(1)], &mut lists);
        let out = listener.observe(&[], &mut lists);
        assert_eq!(out.departed, vec![id(1)]);
        assert!(lists.is_empty());
    }
}
