//! Pluggable observability for worker sessions.
//!
//! The pre-redesign worker hard-wired a full [`RunSummary`] — per-job label
//! `String`s, 1 Hz usage/limit traces, growth-efficiency series — into the
//! simulation hot path, whether or not the caller wanted any of it.  The
//! PR-2 profile showed that fixed cost dominating cluster runs, and the
//! retained series were the memory ceiling for 10k-worker clusters.
//!
//! A [`Recorder`] makes observability a compile-time choice.  The worker is
//! monomorphized over the recorder, so a headless run does not merely skip
//! recording — the 1 Hz sample events and 20 s trace events are never even
//! scheduled (see [`Recorder::RECORDS_SAMPLES`]), which removes most of a
//! short job's event volume along with every label clone and series
//! allocation.
//!
//! Three recorders ship:
//!
//! * [`FullRecorder`] — today's behavior, bit-identical to the
//!   pre-redesign `WorkerSim::run` output (asserted while the deprecated
//!   shims lived; they are gone now).
//! * [`CompletionsOnly`] — headless: label-free [`CompletionStats`] only,
//!   O(completions) memory, ≲20 allocations per simulated worker.
//! * [`SamplingRecorder`] — every-k-th-tick decimation of any inner
//!   recorder's traces (completions are never decimated).

use flowcon_metrics::summary::{CompletionStats, RunSummary};
use flowcon_sim::time::SimTime;

use crate::policy::ResourcePolicy;

/// End-of-run metadata handed to [`Recorder::finish`].
///
/// The policy rides along as a borrow so recorders that don't report a
/// policy name (headless) never pay for the `name()` `String`.
pub struct RunMeta<'a> {
    /// The policy that drove the run.
    pub policy: &'a dyn ResourcePolicy,
    /// Number of times the policy's algorithm ran.
    pub algorithm_runs: u64,
    /// Number of `docker update` calls issued.
    pub update_calls: u64,
}

/// What a worker session records, chosen at compile time.
///
/// The worker calls the `record_*` hooks from its event handlers; the
/// associated constants decide whether the sampling events exist at all.
/// Implementations are monomorphized into the simulation loop, so an empty
/// hook costs nothing.
pub trait Recorder: Send {
    /// What [`Recorder::finish`] yields — the session's output.
    type Output: Send;

    /// Whether 1 Hz usage/limit sample events are scheduled at all.
    ///
    /// `false` removes the events from the simulation.  Under measurement-
    /// blind policies (NA, static partitioning) the dynamics are unchanged
    /// to the engine's 1 µs completion-check margin; under noise-sampling
    /// policies (FlowCon) fewer integration steps draw a different
    /// eval-noise stream, so a headless run is *statistically* equivalent
    /// to a recorded one, not bit-identical (both remain fully
    /// deterministic for a given seed).
    const RECORDS_SAMPLES: bool;

    /// Whether 20 s growth-efficiency trace events are scheduled at all.
    const RECORDS_GROWTH: bool;

    /// A job exited: `label` finished at `finished` with `exit_code`,
    /// having arrived at `arrival`.
    fn record_completion(
        &mut self,
        label: &str,
        arrival: SimTime,
        finished: SimTime,
        exit_code: i32,
    );

    /// A sample tick fired; return `true` to receive this tick's
    /// [`Recorder::record_sample`] calls (decimating recorders return
    /// `false` on skipped ticks).
    fn sample_tick(&mut self, _now: SimTime) -> bool {
        Self::RECORDS_SAMPLES
    }

    /// One container's usage/limit observation at a (non-skipped) sample
    /// tick.
    fn record_sample(&mut self, now: SimTime, label: &str, usage: f64, limit: f64);

    /// A growth-trace tick fired; return `true` to receive this tick's
    /// [`Recorder::record_growth`] calls.
    fn growth_tick(&mut self, _now: SimTime) -> bool {
        Self::RECORDS_GROWTH
    }

    /// One container's growth-efficiency observation at a (non-skipped)
    /// trace tick.
    fn record_growth(&mut self, now: SimTime, label: &str, growth: f64);

    /// The run ended; consume the recorder and produce the output.
    fn finish(self, meta: RunMeta<'_>) -> Self::Output;
}

/// Records everything the paper reports: the pre-redesign [`RunSummary`],
/// bit for bit.
#[derive(Debug, Clone, Default)]
pub struct FullRecorder {
    summary: RunSummary,
}

impl FullRecorder {
    /// A fresh recorder with an empty summary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for FullRecorder {
    type Output = RunSummary;
    const RECORDS_SAMPLES: bool = true;
    const RECORDS_GROWTH: bool = true;

    fn record_completion(
        &mut self,
        label: &str,
        arrival: SimTime,
        finished: SimTime,
        exit_code: i32,
    ) {
        self.summary
            .record_completion(label, arrival, finished, exit_code);
    }

    fn record_sample(&mut self, now: SimTime, label: &str, usage: f64, limit: f64) {
        self.summary.record_usage_sample(now, label, usage, limit);
    }

    fn record_growth(&mut self, now: SimTime, label: &str, growth: f64) {
        self.summary.record_growth(now, label, growth);
    }

    fn finish(mut self, meta: RunMeta<'_>) -> RunSummary {
        self.summary.policy = meta.policy.name();
        self.summary.algorithm_runs = meta.algorithm_runs;
        self.summary.update_calls = meta.update_calls;
        self.summary
    }
}

/// Headless: completion times and makespan only.
///
/// No usage/limit traces, no growth series, no label clones, no policy-name
/// `String` — the session holds O(completions) memory and a worker run
/// stays within the ≲20 allocations/worker budget enforced by
/// `crates/cluster/tests/headless_allocs.rs` and the committed
/// `cluster/headless/*` bench rows.
#[derive(Debug, Clone, Default)]
pub struct CompletionsOnly {
    stats: CompletionStats,
}

impl CompletionsOnly {
    /// A fresh headless recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for CompletionsOnly {
    type Output = CompletionStats;
    const RECORDS_SAMPLES: bool = false;
    const RECORDS_GROWTH: bool = false;

    fn record_completion(
        &mut self,
        _label: &str,
        arrival: SimTime,
        finished: SimTime,
        exit_code: i32,
    ) {
        self.stats.record_completion(arrival, finished, exit_code);
    }

    fn record_sample(&mut self, _now: SimTime, _label: &str, _usage: f64, _limit: f64) {
        unreachable!("sample events are never scheduled headless");
    }

    fn record_growth(&mut self, _now: SimTime, _label: &str, _growth: f64) {
        unreachable!("trace events are never scheduled headless");
    }

    fn finish(mut self, meta: RunMeta<'_>) -> CompletionStats {
        self.stats.algorithm_runs = meta.algorithm_runs;
        self.stats.update_calls = meta.update_calls;
        self.stats
    }
}

/// Decimates an inner recorder's traces: only every `every_k`-th sample
/// tick (and trace tick) is recorded.
///
/// The sampling *events* still fire — the simulation's dynamics and the
/// recorded completions are bit-identical to the inner recorder running
/// undecimated; only the retained trace volume shrinks by ~`every_k`.  Use
/// it when a long cluster run needs representative traces without the full
/// 1 Hz memory bill: `SamplingRecorder::every(10)` keeps every 10th point.
#[derive(Debug, Clone)]
pub struct SamplingRecorder<R: Recorder = FullRecorder> {
    inner: R,
    /// Keep one sample tick in `every_k`; private so the constructors'
    /// ≥ 1 clamp cannot be bypassed into a division by zero.
    every_k: u64,
    sample_ticks: u64,
    trace_ticks: u64,
}

impl SamplingRecorder<FullRecorder> {
    /// Decimate a [`FullRecorder`] to every `every_k`-th tick.
    pub fn every(every_k: u64) -> Self {
        Self::over(FullRecorder::new(), every_k)
    }
}

impl<R: Recorder> SamplingRecorder<R> {
    /// Decimate `inner` to every `every_k`-th tick (clamped to ≥ 1).
    pub fn over(inner: R, every_k: u64) -> Self {
        SamplingRecorder {
            inner,
            every_k: every_k.max(1),
            sample_ticks: 0,
            trace_ticks: 0,
        }
    }

    /// The decimation factor in effect.
    pub fn every_k(&self) -> u64 {
        self.every_k
    }
}

impl<R: Recorder> Recorder for SamplingRecorder<R> {
    type Output = R::Output;
    const RECORDS_SAMPLES: bool = R::RECORDS_SAMPLES;
    const RECORDS_GROWTH: bool = R::RECORDS_GROWTH;

    fn record_completion(
        &mut self,
        label: &str,
        arrival: SimTime,
        finished: SimTime,
        exit_code: i32,
    ) {
        self.inner
            .record_completion(label, arrival, finished, exit_code);
    }

    fn sample_tick(&mut self, now: SimTime) -> bool {
        let keep = self.sample_ticks % self.every_k == 0;
        self.sample_ticks += 1;
        keep && self.inner.sample_tick(now)
    }

    fn record_sample(&mut self, now: SimTime, label: &str, usage: f64, limit: f64) {
        self.inner.record_sample(now, label, usage, limit);
    }

    fn growth_tick(&mut self, now: SimTime) -> bool {
        let keep = self.trace_ticks % self.every_k == 0;
        self.trace_ticks += 1;
        keep && self.inner.growth_tick(now)
    }

    fn record_growth(&mut self, now: SimTime, label: &str, growth: f64) {
        self.inner.record_growth(now, label, growth);
    }

    fn finish(self, meta: RunMeta<'_>) -> R::Output {
        self.inner.finish(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FairSharePolicy;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn meta_with<'a>(policy: &'a FairSharePolicy) -> RunMeta<'a> {
        RunMeta {
            policy,
            algorithm_runs: 3,
            update_calls: 2,
        }
    }

    #[test]
    fn full_recorder_builds_the_summary() {
        let mut r = FullRecorder::new();
        r.record_completion("job", t(0), t(10), 0);
        assert!(r.sample_tick(t(1)));
        r.record_sample(t(1), "job", 0.5, 1.0);
        assert!(r.growth_tick(t(20)));
        r.record_growth(t(20), "job", 0.02);
        let policy = FairSharePolicy::new();
        let summary = r.finish(meta_with(&policy));
        assert_eq!(summary.policy, "NA");
        assert_eq!(summary.algorithm_runs, 3);
        assert_eq!(summary.update_calls, 2);
        assert_eq!(summary.completions.len(), 1);
        assert_eq!(summary.cpu_usage.get("job").unwrap().len(), 1);
    }

    #[test]
    fn completions_only_keeps_no_labels() {
        let mut r = CompletionsOnly::new();
        r.record_completion("ignored", t(5), t(25), 0);
        let policy = FairSharePolicy::new();
        let stats = r.finish(meta_with(&policy));
        assert_eq!(stats.len(), 1);
        assert!((stats.completions[0].completion_secs() - 20.0).abs() < 1e-12);
        assert_eq!(stats.algorithm_runs, 3);
    }

    #[test]
    fn sampling_recorder_keeps_every_kth_tick() {
        let mut r = SamplingRecorder::every(3);
        let kept: Vec<bool> = (0..7).map(|i| r.sample_tick(t(i))).collect();
        assert_eq!(kept, [true, false, false, true, false, false, true]);
        // Growth ticks decimate on their own counter.
        assert!(r.growth_tick(t(0)));
        assert!(!r.growth_tick(t(20)));
        // every_k = 0 is clamped, not a division by zero.
        let mut degenerate = SamplingRecorder::every(0);
        assert!(degenerate.sample_tick(t(0)));
        assert!(degenerate.sample_tick(t(1)));
    }
}
