//! The one entry point: a fluent, recorder-generic worker session.
//!
//! Pre-redesign, the crate's entry surface was a zoo —
//! `WorkerSim::{new, with_scratch, with_failure, run, run_recycling}`, free
//! `run_flowcon` / `run_baseline` — every one of which hard-wired a full
//! [`RunSummary`] into the hot path.  A [`Session`] replaces all of them:
//!
//! ```
//! use flowcon_core::config::{FlowConConfig, NodeConfig};
//! use flowcon_core::policy::FlowConPolicy;
//! use flowcon_core::recorder::CompletionsOnly;
//! use flowcon_core::session::Session;
//! use flowcon_dl::workload::WorkloadPlan;
//!
//! // Full observability (the default recorder):
//! let result = Session::builder()
//!     .node(NodeConfig::default())
//!     .plan(WorkloadPlan::fixed_three())
//!     .policy(FlowConPolicy::new(FlowConConfig::default()))
//!     .build()
//!     .run();
//! assert_eq!(result.output.completions.len(), 3);
//!
//! // Headless: completions and makespan only, ≲20 allocs per worker.
//! let stats = Session::builder()
//!     .plan(WorkloadPlan::fixed_three())
//!     .recorder(CompletionsOnly::new())
//!     .build()
//!     .run();
//! assert_eq!(stats.output.len(), 3);
//! ```
//!
//! # Migration from the removed entry points
//!
//! The pre-session entry points shipped one release as `#[deprecated]`
//! shims (bit-compared against this path while they lived) and have been
//! **removed**.  If you are updating old code:
//!
//! | Removed | New |
//! |---|---|
//! | `WorkerSim::new(node, plan, policy)` | `Session::builder().node(node).plan(plan).policy_box(policy).build()` |
//! | `WorkerSim::with_scratch(n, p, pol, s)` | `… .scratch(s) …` |
//! | `sim.with_failure(label, at, code)` | `… .failure(label, at, code) …` |
//! | `sim.run() -> RunResult` | `session.run() -> SessionResult<RunSummary>` (`result.summary` → `result.output`) |
//! | `sim.run_recycling()` | `session.run_recycling()` |
//! | `run_flowcon(node, &plan, config)` | `… .policy(FlowConPolicy::new(config)) …` |
//! | `run_baseline(node, &plan)` | `… .policy(FairSharePolicy::new()) …` |
//! | always-on `RunSummary` | `.recorder(FullRecorder::new())` (default), [`CompletionsOnly`], [`SamplingRecorder`] |
//! | fresh `ImageRegistry` per worker | shared by default; override with `.images(arc_registry)` |
//!
//! The cluster layer builds one session per worker on the sharded
//! executor, threading a recycled [`WorkerScratch`] and one shared image
//! registry through all of them.  [`SessionBuilder::plan`] accepts
//! anything convertible into a `WorkloadPlan`, including the
//! `flowcon-workload` trace and synthetic-arrival sources.
//!
//! # Open-loop sessions
//!
//! A plan is a *closed* workload: the job set is fixed before the run.
//! [`Session::run_stream`] instead drives the same worker **open-loop**
//! from a pull-based [`JobStream`] — jobs are admitted mid-run while the
//! policy reconfigures, admission stops at a [`Horizon`] (`--until` sim
//! time and/or `--jobs` count), and the run drains.  The result carries
//! steady-state [`StreamStats`] (arrival vs. completion rate, mean queue
//! depth, utilization) beside the recorder output:
//!
//! ```
//! use flowcon_core::recorder::CompletionsOnly;
//! use flowcon_core::session::Session;
//! use flowcon_workload::stream::{Horizon, StreamSource};
//! use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
//!
//! let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 7).unlabeled();
//! let result = Session::builder()
//!     .recorder(CompletionsOnly::new())
//!     .build()
//!     .run_stream(source.stream_for(0), Horizon::jobs(4));
//! assert_eq!(result.stream.submitted, 4);
//! assert_eq!(result.output.len(), 4, "admitted jobs drain to completion");
//! assert!(result.stream.utilization() > 0.0);
//! ```
//!
//! See the `flowcon_workload::stream` module docs for the full open-loop
//! specification.
//!
//! [`RunSummary`]: flowcon_metrics::summary::RunSummary
//! [`FullRecorder`]: crate::recorder::FullRecorder
//! [`CompletionsOnly`]: crate::recorder::CompletionsOnly
//! [`SamplingRecorder`]: crate::recorder::SamplingRecorder

use std::sync::Arc;

use flowcon_container::image::shared_dl_defaults;
use flowcon_container::ImageRegistry;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::sojourn::SojournStats;
use flowcon_metrics::stream::StreamStats;
use flowcon_sim::time::SimTime;
use flowcon_sim::trace::{NoopTracer, Tracer};
use flowcon_workload::stream::{Horizon, JobStream};

use crate::config::NodeConfig;
use crate::policy::{FairSharePolicy, ResourcePolicy};
use crate::recorder::{FullRecorder, Recorder};
use crate::worker::{FailureInjection, WorkerScratch, WorkerSim};

/// The outcome of a [`Session`] run.
#[derive(Debug, Clone)]
pub struct SessionResult<T> {
    /// Whatever the session's [`Recorder`] produced: a
    /// [`RunSummary`](flowcon_metrics::summary::RunSummary) for
    /// [`FullRecorder`], label-free
    /// [`CompletionStats`](flowcon_metrics::summary::CompletionStats) for
    /// [`CompletionsOnly`](crate::recorder::CompletionsOnly).
    pub output: T,
    /// Total simulated events processed (performance accounting).
    pub events_processed: u64,
    /// Estimated scheduler overhead in CPU-seconds
    /// (`algorithm_runs × NodeConfig::algo_cost_cpu_secs`).
    pub scheduler_overhead_cpu_secs: f64,
}

/// The outcome of an open-loop [`Session::run_stream`] run: the recorder's
/// output plus the steady-state [`StreamStats`] the run accumulated.
#[derive(Debug, Clone)]
pub struct StreamResult<T> {
    /// Whatever the session's [`Recorder`] produced (see
    /// [`SessionResult::output`]).
    pub output: T,
    /// Total simulated events processed (performance accounting).
    pub events_processed: u64,
    /// Estimated scheduler overhead in CPU-seconds
    /// (`algorithm_runs × NodeConfig::algo_cost_cpu_secs`).
    pub scheduler_overhead_cpu_secs: f64,
    /// Steady-state accounting: arrival/completion rates, time-weighted
    /// mean queue depth, utilization.
    pub stream: StreamStats,
    /// SLO tails: per-job sojourn time (and queue-wait) quantile sketches,
    /// recorded at exit.  Mergeable across workers in deterministic order
    /// — the sketch-backed tail view beside the mean-based
    /// [`StreamStats`].
    pub tails: SojournStats,
}

/// The backend-generic core of a configured session: everything that
/// defines the *workload and policy*, none of what is specific to the
/// fluid simulation (recorder, scratch, image registry).
///
/// [`SessionBuilder::into_spec`] extracts one from the ordinary builder,
/// so a second backend — the real-thread runtime in `flowcon-rt` — can be
/// configured through the exact same fluent surface and then execute the
/// identical `(node, plan, policy, failures)` quadruple on OS threads.
/// The differential fidelity harness builds one spec per backend from the
/// same inputs and diffs the completion records.
pub struct SessionSpec {
    /// Node parameters (capacity, contention, seed) both backends honour.
    pub node: NodeConfig,
    /// The workload plan (arrival-ordered, label-stable).
    pub plan: WorkloadPlan,
    /// The resource policy, already boxed.
    pub policy: Box<dyn ResourcePolicy>,
    /// Scheduled fault injections.
    pub failures: Vec<FailureInjection>,
}

/// Fluent configuration for one worker session.
///
/// Defaults: [`NodeConfig::default`], an empty plan, the NA baseline
/// policy ([`FairSharePolicy`]), the process-shared default image registry,
/// a [`FullRecorder`], fresh scratch, and no failure injections.
pub struct SessionBuilder<R: Recorder = FullRecorder> {
    node: NodeConfig,
    plan: WorkloadPlan,
    policy: Box<dyn ResourcePolicy>,
    images: Arc<ImageRegistry>,
    recorder: R,
    scratch: WorkerScratch,
    failures: Vec<FailureInjection>,
}

impl Default for SessionBuilder<FullRecorder> {
    fn default() -> Self {
        SessionBuilder {
            node: NodeConfig::default(),
            plan: WorkloadPlan::new(Vec::new()),
            policy: Box::new(FairSharePolicy::new()),
            images: shared_dl_defaults(),
            recorder: FullRecorder::new(),
            scratch: WorkerScratch::new(),
            failures: Vec::new(),
        }
    }
}

impl<R: Recorder> SessionBuilder<R> {
    /// The simulated node (capacity, contention model, seed).
    pub fn node(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }

    /// The workload plan to execute.
    ///
    /// Accepts anything convertible into a [`WorkloadPlan`] — a plan
    /// itself, or the `flowcon-workload` sources (a catalog-bound arrival
    /// trace, a synthetic arrival process, ...).
    pub fn plan(mut self, plan: impl Into<WorkloadPlan>) -> Self {
        self.plan = plan.into();
        self
    }

    /// The resource policy driving reconfiguration (defaults to the NA
    /// baseline).
    pub fn policy(self, policy: impl ResourcePolicy + 'static) -> Self {
        self.policy_box(Box::new(policy))
    }

    /// Like [`SessionBuilder::policy`] for an already-boxed policy (what
    /// the cluster layer's `PolicyKind::build` produces).
    pub fn policy_box(mut self, policy: Box<dyn ResourcePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Share an image registry across sessions (one catalog per cluster).
    /// Defaults to the process-wide
    /// [`shared_dl_defaults`].
    pub fn images(mut self, images: Arc<ImageRegistry>) -> Self {
        self.images = images;
        self
    }

    /// Choose what the session records; see [`crate::recorder`].
    pub fn recorder<R2: Recorder>(self, recorder: R2) -> SessionBuilder<R2> {
        SessionBuilder {
            node: self.node,
            plan: self.plan,
            policy: self.policy,
            images: self.images,
            recorder,
            scratch: self.scratch,
            failures: self.failures,
        }
    }

    /// Reuse hot-path buffers recycled from a previous session
    /// ([`Session::run_recycling`]).
    pub fn scratch(mut self, scratch: WorkerScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Schedule a fault: the job with `label` crashes at `at` with
    /// `exit_code` (the Finished-Cons listener must release its resources
    /// exactly as for a clean exit).
    pub fn failure(mut self, label: impl Into<String>, at: SimTime, exit_code: i32) -> Self {
        self.failures.push(FailureInjection {
            label: label.into(),
            at,
            exit_code,
        });
        self
    }

    /// Extract the backend-generic [`SessionSpec`] instead of building the
    /// fluid-simulation session — the handoff point to other backends
    /// (e.g. the `flowcon-rt` wall-clock runtime).  Recorder, scratch and
    /// image registry are simulation-only and are dropped.
    pub fn into_spec(self) -> SessionSpec {
        SessionSpec {
            node: self.node,
            plan: self.plan,
            policy: self.policy,
            failures: self.failures,
        }
    }

    /// Assemble the session.
    pub fn build(self) -> Session<R> {
        Session {
            sim: WorkerSim::assemble(
                self.node,
                self.plan,
                self.policy,
                self.images,
                self.recorder,
                self.scratch,
                self.failures,
            ),
        }
    }
}

/// A fully-configured worker session, ready to run.
pub struct Session<R: Recorder = FullRecorder> {
    sim: WorkerSim<R>,
}

impl Session<FullRecorder> {
    /// Start configuring a session (defaults: NA policy, empty plan, shared
    /// default images, [`FullRecorder`]).
    pub fn builder() -> SessionBuilder<FullRecorder> {
        SessionBuilder::default()
    }
}

impl<R: Recorder> Session<R> {
    /// Run the plan to completion.
    pub fn run(self) -> SessionResult<R::Output> {
        self.run_recycling().0
    }

    /// Run the plan to completion, handing the hot-path scratch back so the
    /// caller can thread it into the next session's
    /// [`SessionBuilder::scratch`].
    pub fn run_recycling(self) -> (SessionResult<R::Output>, WorkerScratch) {
        self.sim.run_session(&mut NoopTracer)
    }

    /// Run the plan to completion, recording engine, job, and policy
    /// events into `tracer`.
    ///
    /// The tracer sees the full structured event stream: engine
    /// advance/dispatch, job admit/run/complete, policy reconfigure
    /// spans, and cumulative water-filling counters, all stamped with
    /// sim-time (never wall clocks), so a trace is a deterministic
    /// function of the session configuration and seed.
    pub fn run_traced<T: Tracer>(self, tracer: &mut T) -> SessionResult<R::Output> {
        self.sim.run_session(tracer).0
    }

    /// Run **open-loop**: admit jobs pulled from `stream` while `horizon`
    /// allows, then drain.
    ///
    /// Instead of executing a pre-built plan, the simulation pulls one job
    /// ahead from the [`JobStream`] and admits each arrival *mid-run*,
    /// while the policy keeps reconfiguring — the paper's elastic scheme
    /// under sustained load.  The session must have been built without a
    /// plan (jobs come exclusively from the stream); any configured
    /// recorder works unchanged.  Returns the recorder output plus
    /// steady-state [`StreamStats`] (arrival vs. completion rate, mean
    /// queue depth, utilization).
    ///
    /// `horizon` needs at least one bound ([`Horizon::until`] /
    /// [`Horizon::jobs`]); jobs admitted before it always run to
    /// completion.
    pub fn run_stream<J: JobStream>(self, stream: J, horizon: Horizon) -> StreamResult<R::Output> {
        self.run_stream_recycling(stream, horizon).0
    }

    /// [`Session::run_stream`], handing the hot-path scratch back for the
    /// next session (the sharded open-loop cluster path).
    pub fn run_stream_recycling<J: JobStream>(
        self,
        stream: J,
        horizon: Horizon,
    ) -> (StreamResult<R::Output>, WorkerScratch) {
        self.sim
            .run_session_stream(stream, horizon, &mut NoopTracer)
    }

    /// [`Session::run_stream`] with structured tracing (see
    /// [`Session::run_traced`]).
    pub fn run_stream_traced<J: JobStream, T: Tracer>(
        self,
        stream: J,
        horizon: Horizon,
        tracer: &mut T,
    ) -> StreamResult<R::Output> {
        self.sim.run_session_stream(stream, horizon, tracer).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConConfig;
    use crate::policy::FlowConPolicy;
    use crate::recorder::{CompletionsOnly, SamplingRecorder};

    #[test]
    fn default_session_is_an_empty_na_run() {
        let result = Session::builder().build().run();
        assert!(result.output.completions.is_empty());
        assert_eq!(result.output.policy, "NA");
        // Exactly the t=0 sample tick and the t=20 trace tick fire.
        assert_eq!(result.events_processed, 2);
    }

    #[test]
    fn builder_wires_every_knob() {
        let result = Session::builder()
            .node(NodeConfig::default().with_seed(7))
            .plan(WorkloadPlan::fixed_three())
            .policy(FlowConPolicy::new(FlowConConfig::with_params(0.05, 20)))
            .images(shared_dl_defaults())
            .failure("VAE (Pytorch)", SimTime::from_secs(100), 137)
            .build()
            .run();
        assert_eq!(result.output.policy, "FlowCon-5%-20");
        assert_eq!(result.output.completions.len(), 3);
        let vae = result
            .output
            .completions
            .iter()
            .find(|c| c.label == "VAE (Pytorch)")
            .unwrap();
        assert_eq!(vae.exit_code, 137, "injected failure");
    }

    #[test]
    fn headless_session_returns_label_free_stats() {
        let full = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .build()
            .run();
        let headless = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .recorder(CompletionsOnly::new())
            .build()
            .run();
        assert_eq!(headless.output.len(), 3);
        // Headless schedules no sample/trace events: strictly fewer events.
        assert!(headless.events_processed < full.events_processed);
        // Same physics: makespan agrees to the engine's 1 µs margin.
        let diff = (headless.output.makespan_secs() - full.output.makespan_secs()).abs();
        assert!(diff < 1e-3, "makespan diverged by {diff}s");
    }

    #[test]
    fn sampling_recorder_decimates_but_preserves_completions() {
        let full = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .build()
            .run();
        let sampled = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .recorder(SamplingRecorder::every(5))
            .build()
            .run();
        // Sample events still fire, so dynamics are bit-identical.
        assert_eq!(full.output.completions, sampled.output.completions);
        assert_eq!(full.events_processed, sampled.events_processed);
        let full_pts = full.output.cpu_usage.get("VAE (Pytorch)").unwrap().len();
        let sampled_pts = sampled.output.cpu_usage.get("VAE (Pytorch)").unwrap().len();
        assert!(
            sampled_pts <= full_pts / 4,
            "expected ~5x decimation, got {sampled_pts} of {full_pts}"
        );
        assert!(sampled_pts > 0);
    }

    #[test]
    fn open_loop_session_admits_until_the_jobs_horizon_and_drains() {
        use flowcon_workload::stream::StreamSource;
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), 42);
        let result = Session::builder()
            .policy(FlowConPolicy::new(FlowConConfig::default()))
            .build()
            .run_stream(source.stream_for(0), Horizon::jobs(6));
        assert_eq!(result.stream.submitted, 6);
        assert_eq!(result.stream.completed, 6, "admitted jobs drain");
        assert_eq!(result.output.completions.len(), 6);
        // Completions are in exit order; every admitted job is among them.
        let mut labels: Vec<&str> = result
            .output
            .completions
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        labels.sort();
        assert_eq!(
            labels,
            ["Job-1", "Job-2", "Job-3", "Job-4", "Job-5", "Job-6"]
        );
        let s = result.stream;
        assert!(s.duration_secs > 0.0);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
        assert!(s.mean_queue_depth() > 0.0);
        assert!(s.completion_rate() <= s.arrival_rate() + 1e-12);
    }

    #[test]
    fn open_loop_until_horizon_stops_admission_not_running_jobs() {
        use flowcon_workload::stream::StreamSource;
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.1), 9);
        let until = SimTime::from_secs(120);
        let result = Session::builder()
            .build()
            .run_stream(source.stream_for(0), Horizon::until(until));
        assert!(result.stream.submitted > 0);
        assert_eq!(result.stream.completed, result.stream.submitted);
        for c in &result.output.completions {
            assert!(c.arrival <= until, "no admissions past the horizon");
        }
        // The drain runs past the horizon: jobs admitted late still finish.
        assert!(result.stream.duration_secs >= until.as_secs_f64());
    }

    #[test]
    fn open_loop_runs_are_seed_deterministic() {
        use flowcon_workload::stream::StreamSource;
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let run = || {
            let source =
                SyntheticStreamSource::new(ArrivalProcess::bursty(0.5, 0.0, 20.0, 40.0), 3);
            Session::builder()
                .policy(FlowConPolicy::new(FlowConConfig::default()))
                .build()
                .run_stream(source.stream_for(0), Horizon::jobs(8))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.output.completions, b.output.completions);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.stream, b.stream);
    }

    #[test]
    #[should_panic(expected = "needs a horizon")]
    fn unbounded_open_loop_runs_are_rejected() {
        use flowcon_workload::stream::StreamSource;
        use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.1), 1);
        let _ = Session::builder().build().run_stream(
            source.stream_for(0),
            Horizon {
                until: None,
                max_jobs: None,
            },
        );
    }

    #[test]
    fn scratch_recycling_is_bit_identical() {
        let plan = WorkloadPlan::random_five(3);
        let build = |scratch: WorkerScratch| {
            Session::builder()
                .plan(plan.clone())
                .policy(FlowConPolicy::new(FlowConConfig::default()))
                .scratch(scratch)
                .build()
        };
        let (first, scratch) = build(WorkerScratch::new()).run_recycling();
        let (second, _) = build(scratch).run_recycling();
        assert_eq!(first.output.completions, second.output.completions);
        assert_eq!(first.events_processed, second.events_processed);
    }
}
