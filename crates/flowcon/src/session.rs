//! The one entry point: a fluent, recorder-generic worker session.
//!
//! Pre-redesign, the crate's entry surface was a zoo —
//! `WorkerSim::{new, with_scratch, with_failure, run, run_recycling}`, free
//! `run_flowcon` / `run_baseline` — every one of which hard-wired a full
//! [`RunSummary`] into the hot path.  A [`Session`] replaces all of them:
//!
//! ```
//! use flowcon_core::config::{FlowConConfig, NodeConfig};
//! use flowcon_core::policy::FlowConPolicy;
//! use flowcon_core::recorder::CompletionsOnly;
//! use flowcon_core::session::Session;
//! use flowcon_dl::workload::WorkloadPlan;
//!
//! // Full observability (the default recorder):
//! let result = Session::builder()
//!     .node(NodeConfig::default())
//!     .plan(WorkloadPlan::fixed_three())
//!     .policy(FlowConPolicy::new(FlowConConfig::default()))
//!     .build()
//!     .run();
//! assert_eq!(result.output.completions.len(), 3);
//!
//! // Headless: completions and makespan only, ≲20 allocs per worker.
//! let stats = Session::builder()
//!     .plan(WorkloadPlan::fixed_three())
//!     .recorder(CompletionsOnly::new())
//!     .build()
//!     .run();
//! assert_eq!(stats.output.len(), 3);
//! ```
//!
//! # Migration from the removed entry points
//!
//! The pre-session entry points shipped one release as `#[deprecated]`
//! shims (bit-compared against this path while they lived) and have been
//! **removed**.  If you are updating old code:
//!
//! | Removed | New |
//! |---|---|
//! | `WorkerSim::new(node, plan, policy)` | `Session::builder().node(node).plan(plan).policy_box(policy).build()` |
//! | `WorkerSim::with_scratch(n, p, pol, s)` | `… .scratch(s) …` |
//! | `sim.with_failure(label, at, code)` | `… .failure(label, at, code) …` |
//! | `sim.run() -> RunResult` | `session.run() -> SessionResult<RunSummary>` (`result.summary` → `result.output`) |
//! | `sim.run_recycling()` | `session.run_recycling()` |
//! | `run_flowcon(node, &plan, config)` | `… .policy(FlowConPolicy::new(config)) …` |
//! | `run_baseline(node, &plan)` | `… .policy(FairSharePolicy::new()) …` |
//! | always-on `RunSummary` | `.recorder(FullRecorder::new())` (default), [`CompletionsOnly`], [`SamplingRecorder`] |
//! | fresh `ImageRegistry` per worker | shared by default; override with `.images(arc_registry)` |
//!
//! The cluster layer builds one session per worker on the sharded
//! executor, threading a recycled [`WorkerScratch`] and one shared image
//! registry through all of them.  [`SessionBuilder::plan`] accepts
//! anything convertible into a `WorkloadPlan`, including the
//! `flowcon-workload` trace and synthetic-arrival sources.
//!
//! [`RunSummary`]: flowcon_metrics::summary::RunSummary
//! [`FullRecorder`]: crate::recorder::FullRecorder
//! [`CompletionsOnly`]: crate::recorder::CompletionsOnly
//! [`SamplingRecorder`]: crate::recorder::SamplingRecorder

use std::sync::Arc;

use flowcon_container::image::shared_dl_defaults;
use flowcon_container::ImageRegistry;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::time::SimTime;

use crate::config::NodeConfig;
use crate::policy::{FairSharePolicy, ResourcePolicy};
use crate::recorder::{FullRecorder, Recorder};
use crate::worker::{FailureInjection, WorkerScratch, WorkerSim};

/// The outcome of a [`Session`] run.
#[derive(Debug, Clone)]
pub struct SessionResult<T> {
    /// Whatever the session's [`Recorder`] produced: a
    /// [`RunSummary`](flowcon_metrics::summary::RunSummary) for
    /// [`FullRecorder`], label-free
    /// [`CompletionStats`](flowcon_metrics::summary::CompletionStats) for
    /// [`CompletionsOnly`](crate::recorder::CompletionsOnly).
    pub output: T,
    /// Total simulated events processed (performance accounting).
    pub events_processed: u64,
    /// Estimated scheduler overhead in CPU-seconds
    /// (`algorithm_runs × NodeConfig::algo_cost_cpu_secs`).
    pub scheduler_overhead_cpu_secs: f64,
}

/// Fluent configuration for one worker session.
///
/// Defaults: [`NodeConfig::default`], an empty plan, the NA baseline
/// policy ([`FairSharePolicy`]), the process-shared default image registry,
/// a [`FullRecorder`], fresh scratch, and no failure injections.
pub struct SessionBuilder<R: Recorder = FullRecorder> {
    node: NodeConfig,
    plan: WorkloadPlan,
    policy: Box<dyn ResourcePolicy>,
    images: Arc<ImageRegistry>,
    recorder: R,
    scratch: WorkerScratch,
    failures: Vec<FailureInjection>,
}

impl Default for SessionBuilder<FullRecorder> {
    fn default() -> Self {
        SessionBuilder {
            node: NodeConfig::default(),
            plan: WorkloadPlan::new(Vec::new()),
            policy: Box::new(FairSharePolicy::new()),
            images: shared_dl_defaults(),
            recorder: FullRecorder::new(),
            scratch: WorkerScratch::new(),
            failures: Vec::new(),
        }
    }
}

impl<R: Recorder> SessionBuilder<R> {
    /// The simulated node (capacity, contention model, seed).
    pub fn node(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }

    /// The workload plan to execute.
    ///
    /// Accepts anything convertible into a [`WorkloadPlan`] — a plan
    /// itself, or the `flowcon-workload` sources (a catalog-bound arrival
    /// trace, a synthetic arrival process, ...).
    pub fn plan(mut self, plan: impl Into<WorkloadPlan>) -> Self {
        self.plan = plan.into();
        self
    }

    /// The resource policy driving reconfiguration (defaults to the NA
    /// baseline).
    pub fn policy(self, policy: impl ResourcePolicy + 'static) -> Self {
        self.policy_box(Box::new(policy))
    }

    /// Like [`SessionBuilder::policy`] for an already-boxed policy (what
    /// the cluster layer's `PolicyKind::build` produces).
    pub fn policy_box(mut self, policy: Box<dyn ResourcePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Share an image registry across sessions (one catalog per cluster).
    /// Defaults to the process-wide
    /// [`shared_dl_defaults`].
    pub fn images(mut self, images: Arc<ImageRegistry>) -> Self {
        self.images = images;
        self
    }

    /// Choose what the session records; see [`crate::recorder`].
    pub fn recorder<R2: Recorder>(self, recorder: R2) -> SessionBuilder<R2> {
        SessionBuilder {
            node: self.node,
            plan: self.plan,
            policy: self.policy,
            images: self.images,
            recorder,
            scratch: self.scratch,
            failures: self.failures,
        }
    }

    /// Reuse hot-path buffers recycled from a previous session
    /// ([`Session::run_recycling`]).
    pub fn scratch(mut self, scratch: WorkerScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Schedule a fault: the job with `label` crashes at `at` with
    /// `exit_code` (the Finished-Cons listener must release its resources
    /// exactly as for a clean exit).
    pub fn failure(mut self, label: impl Into<String>, at: SimTime, exit_code: i32) -> Self {
        self.failures.push(FailureInjection {
            label: label.into(),
            at,
            exit_code,
        });
        self
    }

    /// Assemble the session.
    pub fn build(self) -> Session<R> {
        Session {
            sim: WorkerSim::assemble(
                self.node,
                self.plan,
                self.policy,
                self.images,
                self.recorder,
                self.scratch,
                self.failures,
            ),
        }
    }
}

/// A fully-configured worker session, ready to run.
pub struct Session<R: Recorder = FullRecorder> {
    sim: WorkerSim<R>,
}

impl Session<FullRecorder> {
    /// Start configuring a session (defaults: NA policy, empty plan, shared
    /// default images, [`FullRecorder`]).
    pub fn builder() -> SessionBuilder<FullRecorder> {
        SessionBuilder::default()
    }
}

impl<R: Recorder> Session<R> {
    /// Run the plan to completion.
    pub fn run(self) -> SessionResult<R::Output> {
        self.run_recycling().0
    }

    /// Run the plan to completion, handing the hot-path scratch back so the
    /// caller can thread it into the next session's
    /// [`SessionBuilder::scratch`].
    pub fn run_recycling(self) -> (SessionResult<R::Output>, WorkerScratch) {
        self.sim.run_session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConConfig;
    use crate::policy::FlowConPolicy;
    use crate::recorder::{CompletionsOnly, SamplingRecorder};

    #[test]
    fn default_session_is_an_empty_na_run() {
        let result = Session::builder().build().run();
        assert!(result.output.completions.is_empty());
        assert_eq!(result.output.policy, "NA");
        // Exactly the t=0 sample tick and the t=20 trace tick fire.
        assert_eq!(result.events_processed, 2);
    }

    #[test]
    fn builder_wires_every_knob() {
        let result = Session::builder()
            .node(NodeConfig::default().with_seed(7))
            .plan(WorkloadPlan::fixed_three())
            .policy(FlowConPolicy::new(FlowConConfig::with_params(0.05, 20)))
            .images(shared_dl_defaults())
            .failure("VAE (Pytorch)", SimTime::from_secs(100), 137)
            .build()
            .run();
        assert_eq!(result.output.policy, "FlowCon-5%-20");
        assert_eq!(result.output.completions.len(), 3);
        let vae = result
            .output
            .completions
            .iter()
            .find(|c| c.label == "VAE (Pytorch)")
            .unwrap();
        assert_eq!(vae.exit_code, 137, "injected failure");
    }

    #[test]
    fn headless_session_returns_label_free_stats() {
        let full = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .build()
            .run();
        let headless = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .recorder(CompletionsOnly::new())
            .build()
            .run();
        assert_eq!(headless.output.len(), 3);
        // Headless schedules no sample/trace events: strictly fewer events.
        assert!(headless.events_processed < full.events_processed);
        // Same physics: makespan agrees to the engine's 1 µs margin.
        let diff = (headless.output.makespan_secs() - full.output.makespan_secs()).abs();
        assert!(diff < 1e-3, "makespan diverged by {diff}s");
    }

    #[test]
    fn sampling_recorder_decimates_but_preserves_completions() {
        let full = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .build()
            .run();
        let sampled = Session::builder()
            .plan(WorkloadPlan::fixed_three())
            .recorder(SamplingRecorder::every(5))
            .build()
            .run();
        // Sample events still fire, so dynamics are bit-identical.
        assert_eq!(full.output.completions, sampled.output.completions);
        assert_eq!(full.events_processed, sampled.events_processed);
        let full_pts = full.output.cpu_usage.get("VAE (Pytorch)").unwrap().len();
        let sampled_pts = sampled.output.cpu_usage.get("VAE (Pytorch)").unwrap().len();
        assert!(
            sampled_pts <= full_pts / 4,
            "expected ~5x decimation, got {sampled_pts} of {full_pts}"
        );
        assert!(sampled_pts > 0);
    }

    #[test]
    fn scratch_recycling_is_bit_identical() {
        let plan = WorkloadPlan::random_five(3);
        let build = |scratch: WorkerScratch| {
            Session::builder()
                .plan(plan.clone())
                .policy(FlowConPolicy::new(FlowConConfig::default()))
                .scratch(scratch)
                .build()
        };
        let (first, scratch) = build(WorkerScratch::new()).run_recycling();
        let (second, _) = build(scratch).run_recycling();
        assert_eq!(first.output.completions, second.output.completions);
        assert_eq!(first.events_processed, second.events_processed);
    }
}
