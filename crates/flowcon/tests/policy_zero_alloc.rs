//! Steady-state allocation audit for the policy reconfigure path.
//!
//! PR 1 made the allocator/engine hot path allocation-free; this pins the
//! policy layer: with warm buffers (a reusable updates vector, dense
//! `Lists` slots), repeated `reconfigure_into` calls must perform **zero**
//! heap allocations — no `PolicyDecision::updates` Vec churn, no BTreeMap
//! rebalancing.
//!
//! Counting is gated on a thread-local flag so the libtest harness's own
//! threads cannot contaminate the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use flowcon_container::ContainerId;
use flowcon_core::config::FlowConConfig;
use flowcon_core::policy::{FlowConPolicy, ResourcePolicy, StaticEqualPolicy};
use flowcon_core::GrowthMeasurement;
use flowcon_sim::time::SimTime;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    let tracking = TRACKING.try_with(|t| t.get()).unwrap_or(false);
    if tracking {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    let out = f();
    TRACKING.with(|t| t.set(false));
    std::hint::black_box(out);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn id(raw: u32) -> ContainerId {
    ContainerId::from_raw(raw)
}

fn measure(raw: u32, growth: f64, limit: f64) -> GrowthMeasurement {
    GrowthMeasurement {
        id: id(raw),
        progress: Some(growth * 0.5),
        avg_usage: flowcon_sim::ResourceVec::cpu(0.5),
        cpu_limit: limit,
    }
}

#[test]
fn flowcon_steady_state_reconfigure_is_allocation_free() {
    const N: u32 = 64;
    let mut policy = FlowConPolicy::new(FlowConConfig::default());
    let ids: Vec<ContainerId> = (0..N).map(id).collect();
    policy.on_pool_change(SimTime::ZERO, &ids);

    // Half the pool converging (below alpha), half still growing — the
    // mixed steady state where Algorithm 1 recomputes proportional limits
    // every tick (never the all-CL back-off branch).
    let mut measures: Vec<GrowthMeasurement> = (0..N)
        .map(|i| {
            let growth = if i % 2 == 0 {
                0.01
            } else {
                0.20 + 0.001 * i as f64
            };
            measure(i, growth, 1.0)
        })
        .collect();

    let mut updates = Vec::new();
    // Warm-up: updates buffer reaches steady capacity, Lists slots exist.
    for round in 0..3u64 {
        drift(&mut measures, round);
        policy.reconfigure_into(
            SimTime::from_secs(20 * (round + 1)),
            &measures,
            &mut updates,
        );
    }

    let allocs = allocations_during(|| {
        for round in 3..1_003u64 {
            drift(&mut measures, round);
            policy.reconfigure_into(
                SimTime::from_secs(20 * (round + 1)),
                &measures,
                &mut updates,
            );
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state FlowCon reconfigure allocated {allocs} times across 1000 warm rounds"
    );
    assert!(!updates.is_empty(), "the rounds really reconfigured");
}

/// Nudge limits every round (what applying the previous decision does)
/// so each reconfigure computes fresh updates.
fn drift(measures: &mut [GrowthMeasurement], round: u64) {
    let n = measures.len() as f64;
    for (i, m) in measures.iter_mut().enumerate() {
        let base = 0.10 + 0.8 * (i as f64 + 1.0) / (n + 1.0);
        m.cpu_limit = base + 0.0003 * ((round % 5) as f64);
    }
}

#[test]
fn static_equal_reconfigure_is_allocation_free_after_warmup() {
    let mut policy = StaticEqualPolicy::new();
    let ids: Vec<ContainerId> = (0..32).map(id).collect();
    policy.on_pool_change(SimTime::ZERO, &ids);
    let mut updates = Vec::new();
    policy.reconfigure_into(SimTime::ZERO, &[], &mut updates); // warm-up
    let allocs = allocations_during(|| {
        for _ in 0..1_000 {
            policy.reconfigure_into(SimTime::ZERO, &[], &mut updates);
        }
    });
    assert_eq!(allocs, 0, "static policy allocated {allocs} times");
    assert_eq!(updates.len(), 32);
}
