//! Property-based tests for Algorithm 1, the list state machine and the
//! listener — the invariants FlowCon's correctness rests on.

use flowcon_container::ContainerId;
use flowcon_core::algorithm::run_algorithm1;
use flowcon_core::config::FlowConConfig;
use flowcon_core::listener::Listener;
use flowcon_core::lists::{ListKind, Lists};
use flowcon_core::metric::GrowthMeasurement;
use flowcon_sim::ResourceVec;
use proptest::prelude::*;

fn measurement(raw: u32, growth: Option<f64>, limit: f64) -> GrowthMeasurement {
    GrowthMeasurement {
        id: ContainerId::from_raw(raw),
        progress: growth.map(|g| g * 0.5),
        avg_usage: ResourceVec::cpu(0.5),
        cpu_limit: limit,
    }
}

fn arb_measures(max: usize) -> impl Strategy<Value = Vec<GrowthMeasurement>> {
    prop::collection::vec(
        (prop::option::weighted(0.85, 0.0f64..=1.0), 0.0f64..=1.0),
        1..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (growth, limit))| measurement(i as u32, growth, limit))
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = FlowConConfig> {
    (0.01f64..=0.15, 1.0f64..=8.0).prop_map(|(alpha, beta)| FlowConConfig {
        alpha,
        beta,
        ..FlowConConfig::default()
    })
}

proptest! {
    /// Every emitted limit is a valid fraction, and CL members never fall
    /// below the 1/(β·n) bound.
    #[test]
    fn limits_valid_and_bound_respected(
        measures in arb_measures(20),
        config in arb_config(),
    ) {
        let mut lists = Lists::new();
        for m in &measures {
            lists.insert_new(m.id);
        }
        let out = run_algorithm1(&config, &mut lists, &measures);
        let bound = 1.0 / (config.beta * measures.len() as f64);
        for (id, limit) in &out.updates {
            prop_assert!((0.0..=1.0).contains(limit), "limit {limit}");
            if !out.backed_off && lists.kind_of(*id) == Some(ListKind::Completing) {
                prop_assert!(
                    *limit >= bound.min(1.0) - 1e-9,
                    "CL limit {limit} below bound {bound}"
                );
            }
        }
    }

    /// Back-off happens iff every measured container is in CL afterwards,
    /// and then every limit is released to 1.
    #[test]
    fn backoff_iff_all_completing(
        measures in arb_measures(16),
        config in arb_config(),
    ) {
        let mut lists = Lists::new();
        for m in &measures {
            lists.insert_new(m.id);
        }
        // Two rounds so below-alpha containers can reach CL.
        let _ = run_algorithm1(&config, &mut lists, &measures);
        let out = run_algorithm1(&config, &mut lists, &measures);
        let all_cl = measures
            .iter()
            .all(|m| lists.kind_of(m.id) == Some(ListKind::Completing));
        prop_assert_eq!(out.backed_off, all_cl);
        if out.backed_off {
            prop_assert!(out.updates.iter().all(|(_, l)| *l == 1.0));
        }
    }

    /// Watching-List members are never reconfigured in the run that put
    /// them into WL.
    #[test]
    fn watching_members_not_updated(
        measures in arb_measures(16),
        config in arb_config(),
    ) {
        let mut lists = Lists::new();
        for m in &measures {
            lists.insert_new(m.id);
        }
        let out = run_algorithm1(&config, &mut lists, &measures);
        for m in &measures {
            if lists.kind_of(m.id) == Some(ListKind::Watching) {
                prop_assert!(
                    out.updates.iter().all(|(id, _)| *id != m.id),
                    "WL member {:?} was reconfigured",
                    m.id
                );
            }
        }
    }

    /// The lists always partition: every observed container is in exactly
    /// one list, whatever the observation sequence.
    #[test]
    fn lists_partition_under_any_sequence(
        seq in prop::collection::vec((0u32..8, 0.0f64..=0.5), 1..200),
        alpha in 0.01f64..=0.2,
    ) {
        let mut lists = Lists::new();
        for (raw, growth) in seq {
            lists.observe(ContainerId::from_raw(raw), growth, alpha);
        }
        // kind_of is single-valued by construction; check counts agree.
        let total = lists.in_list(ListKind::New).len()
            + lists.in_list(ListKind::Watching).len()
            + lists.in_list(ListKind::Completing).len();
        prop_assert_eq!(total, lists.len());
    }

    /// A container needs at least two consecutive below-α observations to
    /// reach CL from NL, regardless of the values.
    #[test]
    fn cl_requires_two_low_observations(
        first in 0.0f64..=1.0,
        alpha in 0.01f64..=0.2,
    ) {
        let mut lists = Lists::new();
        let id = ContainerId::from_raw(0);
        lists.insert_new(id);
        lists.observe(id, first, alpha);
        prop_assert_ne!(
            lists.kind_of(id),
            Some(ListKind::Completing),
            "one observation must never reach CL"
        );
    }

    /// The listener's membership diff is exact: arrivals ∪ survivors =
    /// current pool, and departures are purged.
    #[test]
    fn listener_diff_is_exact(
        pools in prop::collection::vec(
            prop::collection::btree_set(0u32..12, 0..8),
            1..12
        ),
    ) {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        for pool in pools {
            let ids: Vec<ContainerId> =
                pool.iter().map(|&r| ContainerId::from_raw(r)).collect();
            let out = listener.observe(&ids, &mut lists);
            // After the observation, lists track exactly the pool.
            prop_assert_eq!(lists.len(), ids.len());
            for id in &ids {
                prop_assert!(lists.kind_of(*id).is_some());
            }
            for id in &out.departed {
                prop_assert!(lists.kind_of(*id).is_none());
            }
            prop_assert_eq!(
                out.interrupt,
                !out.arrived.is_empty() || !out.departed.is_empty()
            );
        }
    }

    /// Algorithm 1 is deterministic.
    #[test]
    fn algorithm_is_deterministic(
        measures in arb_measures(16),
        config in arb_config(),
    ) {
        let mut l1 = Lists::new();
        let mut l2 = Lists::new();
        for m in &measures {
            l1.insert_new(m.id);
            l2.insert_new(m.id);
        }
        let a = run_algorithm1(&config, &mut l1, &measures);
        let b = run_algorithm1(&config, &mut l2, &measures);
        prop_assert_eq!(a, b);
    }
}
