//! The session redesign's compatibility contract: a `Session` with the
//! default `FullRecorder` is **bit-identical** to the pre-redesign
//! `WorkerSim` entry points on seeded plans — completions, every trace
//! point, counters, and event counts.

#![allow(deprecated)] // the deprecated shims are exactly what we pin here

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy};
use flowcon_core::session::Session;
use flowcon_core::worker::{run_baseline, run_flowcon, RunResult, WorkerSim};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::summary::RunSummary;
use flowcon_sim::time::SimTime;

/// Full structural equality of two summaries, series points included.
fn assert_summaries_identical(a: &RunSummary, b: &RunSummary) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.algorithm_runs, b.algorithm_runs);
    assert_eq!(a.update_calls, b.update_calls);
    // RunSummary derives PartialEq, but compare the traces explicitly too
    // so a divergence names the series instead of printing two dumps.
    for (ours, theirs, what) in [
        (&a.cpu_usage, &b.cpu_usage, "cpu_usage"),
        (&a.limits, &b.limits, "limits"),
        (&a.growth_efficiency, &b.growth_efficiency, "growth"),
    ] {
        for (label, series) in ours.iter() {
            assert_eq!(
                Some(series.points()),
                theirs.get(label).map(|s| s.points()),
                "{what} trace of {label} diverged"
            );
        }
        assert_eq!(ours.len(), theirs.len(), "{what} series count");
    }
    assert_eq!(a, b, "summaries structurally unequal");
}

#[test]
fn session_is_bit_identical_to_workersim_run() {
    for seed in [3u64, 11, 0xF10C] {
        let plan = WorkloadPlan::random_n(10, seed);
        let node = NodeConfig::default().with_seed(seed);
        let old: RunResult = WorkerSim::new(
            node,
            plan.clone(),
            Box::new(FlowConPolicy::new(FlowConConfig::default())),
        )
        .run();
        let new = Session::builder()
            .node(node)
            .plan(plan)
            .policy(FlowConPolicy::new(FlowConConfig::default()))
            .build()
            .run();
        assert_summaries_identical(&old.summary, &new.output);
        assert_eq!(old.events_processed, new.events_processed);
        assert_eq!(
            old.scheduler_overhead_cpu_secs.to_bits(),
            new.scheduler_overhead_cpu_secs.to_bits()
        );
    }
}

#[test]
fn session_is_bit_identical_to_free_helpers() {
    let plan = WorkloadPlan::fixed_three();
    let node = NodeConfig::default();

    let old_fc = run_flowcon(node, &plan, FlowConConfig::with_params(0.05, 20));
    let new_fc = Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy(FlowConPolicy::new(FlowConConfig::with_params(0.05, 20)))
        .build()
        .run();
    assert_summaries_identical(&old_fc.summary, &new_fc.output);

    let old_na = run_baseline(node, &plan);
    let new_na = Session::builder()
        .node(node)
        .plan(plan)
        .policy(FairSharePolicy::new())
        .build()
        .run();
    assert_summaries_identical(&old_na.summary, &new_na.output);
    assert_eq!(old_na.events_processed, new_na.events_processed);
}

#[test]
fn session_failure_injection_matches_with_failure() {
    let plan = WorkloadPlan::fixed_three();
    let at = SimTime::from_secs(100);
    let old = WorkerSim::new(
        NodeConfig::default(),
        plan.clone(),
        Box::new(FlowConPolicy::new(FlowConConfig::default())),
    )
    .with_failure("VAE (Pytorch)", at, 137)
    .run();
    let new = Session::builder()
        .plan(plan)
        .policy(FlowConPolicy::new(FlowConConfig::default()))
        .failure("VAE (Pytorch)", at, 137)
        .build()
        .run();
    assert_summaries_identical(&old.summary, &new.output);
    assert_eq!(old.events_processed, new.events_processed);
}

#[test]
fn session_scratch_path_matches_with_scratch() {
    let plan = WorkloadPlan::random_five(7);
    let make_policy = || Box::new(FlowConPolicy::new(FlowConConfig::default()));

    // Old: run twice recycling the scratch through the deprecated API.
    let (first_old, scratch_old) =
        WorkerSim::new(NodeConfig::default(), plan.clone(), make_policy()).run_recycling();
    let second_old = WorkerSim::with_scratch(
        NodeConfig::default(),
        plan.clone(),
        make_policy(),
        scratch_old,
    )
    .run();

    // New: same through the session builder.
    let (first_new, scratch_new) = Session::builder()
        .plan(plan.clone())
        .policy_box(make_policy())
        .build()
        .run_recycling();
    let second_new = Session::builder()
        .plan(plan)
        .policy_box(make_policy())
        .scratch(scratch_new)
        .build()
        .run();

    assert_summaries_identical(&first_old.summary, &first_new.output);
    assert_summaries_identical(&second_old.summary, &second_new.output);
    // Recycling never changes results either.
    assert_summaries_identical(&first_old.summary, &second_old.summary);
}
