//! Edge cases of the worker-node simulation: degenerate plans, bursts of
//! simultaneous arrivals, and scheduling pathologies.

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy, ResourcePolicy};
use flowcon_core::session::{Session, SessionResult};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_dl::ModelId;
use flowcon_metrics::summary::RunSummary;
use flowcon_sim::contention::ContentionModel;
use flowcon_sim::time::{SimDuration, SimTime};

fn node() -> NodeConfig {
    NodeConfig::default()
}

fn run_policy(
    node: NodeConfig,
    plan: &WorkloadPlan,
    policy: impl ResourcePolicy + 'static,
) -> SessionResult<RunSummary> {
    Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy(policy)
        .build()
        .run()
}

fn run_flowcon(
    node: NodeConfig,
    plan: &WorkloadPlan,
    config: FlowConConfig,
) -> SessionResult<RunSummary> {
    run_policy(node, plan, FlowConPolicy::new(config))
}

fn run_baseline(node: NodeConfig, plan: &WorkloadPlan) -> SessionResult<RunSummary> {
    run_policy(node, plan, FairSharePolicy::new())
}

#[test]
fn empty_plan_terminates_immediately() {
    let plan = WorkloadPlan::new(vec![]);
    let result = run_flowcon(node(), &plan, FlowConConfig::default());
    assert!(result.output.completions.is_empty());
    assert_eq!(result.output.makespan_secs(), 0.0);
}

#[test]
fn simultaneous_arrivals_all_complete() {
    // Eight jobs land at the exact same instant: one listener interrupt per
    // arrival, all in the same event timestamp.
    let jobs: Vec<JobRequest> = (0..8)
        .map(|i| {
            JobRequest::new(
                format!("burst-{i}"),
                ModelId::MnistTf,
                SimTime::from_secs(5),
            )
        })
        .collect();
    let plan = WorkloadPlan::new(jobs);
    let result = run_flowcon(node(), &plan, FlowConConfig::default());
    assert_eq!(result.output.completions.len(), 8);
    assert!(result.output.completions.iter().all(|c| c.exit_code == 0));
    // Identical models, identical arrivals: completions are clustered.
    let times: Vec<f64> = result
        .output
        .completions
        .iter()
        .map(|c| c.completion_secs())
        .collect();
    let spread = times.iter().cloned().fold(0.0f64, f64::max)
        - times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 120.0, "spread {spread}");
}

#[test]
fn back_to_back_arrivals_reset_the_executor_each_time() {
    // Arrivals 1 s apart repeatedly interrupt the interval; the executor
    // must keep functioning and every job must finish.
    let jobs: Vec<JobRequest> = (0..6)
        .map(|i| JobRequest::new(format!("rapid-{i}"), ModelId::Gru, SimTime::from_secs(i)))
        .collect();
    let plan = WorkloadPlan::new(jobs);
    let result = run_flowcon(node(), &plan, FlowConConfig::with_params(0.05, 20));
    assert_eq!(result.output.completions.len(), 6);
    assert!(result.output.algorithm_runs >= 6, "one run per interrupt");
}

#[test]
fn tiny_interval_does_not_spin_the_simulation() {
    let plan = WorkloadPlan::fixed_three();
    let config = FlowConConfig {
        initial_interval: SimDuration::from_secs(1),
        ..FlowConConfig::default()
    };
    let result = run_flowcon(node(), &plan, config);
    assert_eq!(result.output.completions.len(), 3);
    // 1 s ticks over a ~390 s run: hundreds of runs, but bounded.
    assert!(result.output.algorithm_runs < 1_000);
}

#[test]
fn ideal_node_is_work_conserving_wash() {
    // Without interference, FlowCon and NA makespans must be close: the
    // fluid system conserves work (DESIGN.md's κ-ablation claim).
    let ideal = NodeConfig {
        contention: ContentionModel::ideal(),
        ..node()
    };
    let plan = WorkloadPlan::fixed_three();
    let fc = run_flowcon(ideal, &plan, FlowConConfig::default());
    let na = run_baseline(ideal, &plan);
    let delta = fc.output.makespan_improvement_vs(&na.output);
    assert!(delta.abs() < 3.0, "ideal-node makespan delta {delta:.2}%");
}

#[test]
fn capacity_scales_completion_times() {
    // Doubling node capacity roughly halves a lone job's completion.
    let plan = WorkloadPlan::random_from(&[ModelId::MnistTorch], 1);
    let slow = run_baseline(node(), &plan);
    let fast = run_baseline(
        NodeConfig {
            capacity: 2.0,
            ..node()
        },
        &plan,
    );
    let s = slow.output.completions[0].completion_secs();
    let f = fast.output.completions[0].completion_secs();
    // A lone job is demand-limited (0.8 < 1.0), so capacity 2 leaves its
    // rate at the demand ceiling — completion unchanged.  Check instead
    // with three concurrent jobs where capacity binds.
    assert!((s - f).abs() < s * 0.05, "lone job is demand-bound");

    let plan3 = WorkloadPlan::fig1_concurrent();
    let slow3 = run_baseline(node(), &plan3);
    let fast3 = run_baseline(
        NodeConfig {
            capacity: 2.0,
            ..node()
        },
        &plan3,
    );
    // The gain is bounded by the demand-limited straggler (LSTM-CFC can
    // only ever use 22% of the node: ~590 s of wall time no matter what),
    // so expect a clear but not 2x improvement.
    assert!(
        fast3.output.makespan_secs() < slow3.output.makespan_secs() * 0.92,
        "capacity 2 should cut the 5-job makespan: {:.0} vs {:.0}",
        fast3.output.makespan_secs(),
        slow3.output.makespan_secs()
    );
    let cfc_floor = 130.0 / 0.22 * 0.95;
    assert!(
        fast3.output.makespan_secs() > cfc_floor,
        "makespan cannot beat the demand-limited straggler"
    );
}

#[test]
fn policies_can_be_reused_across_runs_via_fresh_instances() {
    let plan = WorkloadPlan::random_five(9);
    let a = run_policy(node(), &plan, FlowConPolicy::new(FlowConConfig::default()));
    let b = run_policy(node(), &plan, FlowConPolicy::new(FlowConConfig::default()));
    assert_eq!(a.output.completions, b.output.completions);
}

#[test]
fn na_issues_no_updates_ever() {
    let plan = WorkloadPlan::random_n(10, 2);
    let result = run_policy(node(), &plan, FairSharePolicy::new());
    assert_eq!(result.output.update_calls, 0);
    assert_eq!(result.output.completions.len(), 10);
}
