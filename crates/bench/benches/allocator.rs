//! Microbenchmarks of the water-filling allocator — the innermost loop of
//! every experiment (rates are recomputed on each event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowcon_sim::alloc::{waterfill, AllocRequest};
use flowcon_sim::rng::SimRng;

fn requests(n: usize, seed: u64) -> Vec<AllocRequest> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| AllocRequest {
            limit: rng.range_f64(0.05, 1.0),
            demand: rng.range_f64(0.2, 1.0),
            weight: 1.0,
        })
        .collect()
}

fn bench_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill");
    for n in [2usize, 5, 10, 15, 50, 200] {
        let reqs = requests(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| waterfill(std::hint::black_box(1.0), std::hint::black_box(reqs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
