//! Microbenchmarks of the water-filling allocator — the innermost loop of
//! every experiment (rates are recomputed on each event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
// `requests` is shared with the perf micro-suite so criterion numbers and
// the BENCH_*.json trajectory measure the same workload distribution.
use flowcon_bench::perf::{requests, waterfill_seed};
use flowcon_sim::alloc::{waterfill, waterfill_into, WaterfillScratch};

fn bench_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill");
    for n in [2usize, 5, 10, 15, 50, 64, 200] {
        let reqs = requests(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| waterfill(std::hint::black_box(1.0), std::hint::black_box(reqs)))
        });
    }
    group.finish();
}

/// The seed repository's v0 allocator, kept as the fixed comparison point:
/// `waterfill_into_warm/<n>` vs `waterfill_seed/<n>` is the speedup this
/// optimisation line is judged by (≥ 2× at n=64).
fn bench_waterfill_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_seed");
    for n in [2usize, 5, 10, 15, 50, 64, 200] {
        let reqs = requests(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| waterfill_seed(std::hint::black_box(1.0), std::hint::black_box(reqs)))
        });
    }
    group.finish();
}

/// The zero-allocation entry point with a warm order cache — the steady
/// state of every worker tick.  Compare against `waterfill/<n>` above for
/// the cold-vs-warm ratio tracked in BENCH_*.json.
fn bench_waterfill_into_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_into_warm");
    for n in [2usize, 5, 10, 15, 50, 64, 200] {
        let reqs = requests(n, 42);
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs); // warm the buffers + order
        group.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| {
                waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(reqs),
                )
            })
        });
    }
    group.finish();
}

/// The `Σcaps ≤ capacity` early exit: no sort at all.
fn bench_waterfill_early_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_early_exit");
    for n in [15usize, 64, 200] {
        let mut reqs = requests(n, 42);
        for q in reqs.iter_mut() {
            q.limit = 0.5 / n as f64;
        }
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs);
        group.bench_with_input(BenchmarkId::from_parameter(n), &reqs, |b, reqs| {
            b.iter(|| {
                waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(reqs),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_waterfill_seed,
    bench_waterfill,
    bench_waterfill_into_warm,
    bench_waterfill_early_exit
);
criterion_main!(benches);
