//! Microbenchmarks of Algorithm 1 and the listener — FlowCon's per-tick
//! scheduler cost (the paper's overhead discussion, §5 Remark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowcon_container::ContainerId;
use flowcon_core::algorithm::run_algorithm1;
use flowcon_core::config::FlowConConfig;
use flowcon_core::listener::Listener;
use flowcon_core::lists::Lists;
use flowcon_core::metric::GrowthMeasurement;
use flowcon_sim::rng::SimRng;

fn measurements(n: usize, seed: u64) -> Vec<GrowthMeasurement> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| GrowthMeasurement {
            id: ContainerId::from_raw(i as u32),
            progress: (rng.f64() > 0.1).then(|| rng.range_f64(0.0, 0.4)),
            avg_usage: flowcon_sim::ResourceVec::cpu(rng.range_f64(0.05, 1.0)),
            cpu_limit: rng.range_f64(0.05, 1.0),
        })
        .collect()
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    for n in [3usize, 10, 15, 100] {
        let ms = measurements(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ms, |b, ms| {
            let config = FlowConConfig::default();
            b.iter_batched(
                || {
                    let mut lists = Lists::new();
                    for m in ms {
                        lists.insert_new(m.id);
                    }
                    lists
                },
                |mut lists| run_algorithm1(&config, &mut lists, std::hint::black_box(ms)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_listener(c: &mut Criterion) {
    let ids: Vec<ContainerId> = (0..15).map(ContainerId::from_raw).collect();
    c.bench_function("listener_observe_steady", |b| {
        let mut listener = Listener::new();
        let mut lists = Lists::new();
        listener.observe(&ids, &mut lists);
        b.iter(|| listener.observe(std::hint::black_box(&ids), &mut lists))
    });
}

criterion_group!(benches, bench_algorithm1, bench_listener);
criterion_main!(benches);
