//! End-to-end benchmarks: time to regenerate each figure's simulation.
//!
//! These double as the "one bench per table/figure" requirement: each bench
//! target runs exactly the experiment that regenerates the corresponding
//! figure (Criterion measures the harness; the repro binary prints the
//! values).

use criterion::{criterion_group, criterion_main, Criterion};
use flowcon_bench::experiments::{
    ablation, default_node, fig1, fixed, random, scale, DEFAULT_SEED,
};

fn bench_figures(c: &mut Criterion) {
    let node = default_node();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("fig1_progress_curves", |b| b.iter(|| fig1::run(node)));
    group.bench_function("fig3_itval_sweep_alpha5", |b| b.iter(|| fixed::fig3(node)));
    group.bench_function("fig4_itval_sweep_alpha10", |b| b.iter(|| fixed::fig4(node)));
    group.bench_function("fig5_alpha_sweep_itval20", |b| b.iter(|| fixed::fig5(node)));
    group.bench_function("fig6_alpha_sweep_itval30", |b| b.iter(|| fixed::fig6(node)));
    group.bench_function("table2_reductions", |b| b.iter(|| fixed::table2(node)));
    group.bench_function("fig7_fig8_cpu_traces", |b| {
        b.iter(|| fixed::fig7_fig8(node))
    });
    group.bench_function("fig9_random_five", |b| {
        b.iter(|| random::fig9(node, DEFAULT_SEED))
    });
    group.bench_function("fig10_fig11_cpu_traces", |b| {
        b.iter(|| random::fig10_fig11(node, DEFAULT_SEED))
    });
    group.bench_function("fig12_to_16_ten_jobs", |b| {
        b.iter(|| scale::fig12(node, DEFAULT_SEED))
    });
    group.bench_function("fig17_fifteen_jobs", |b| {
        b.iter(|| scale::fig17(node, DEFAULT_SEED))
    });
    group.finish();

    let mut ab = c.benchmark_group("ablations");
    ab.sample_size(10);
    ab.warm_up_time(std::time::Duration::from_millis(500));
    ab.measurement_time(std::time::Duration::from_secs(3));
    ab.bench_function("backoff", |b| b.iter(|| ablation::backoff(node)));
    ab.bench_function("policy_zoo", |b| {
        b.iter(|| ablation::policy_zoo(node, DEFAULT_SEED))
    });
    ab.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
