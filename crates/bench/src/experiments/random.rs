//! Random-scheduling experiments (§5.4): Figs. 9–11.
//!
//! Five models (LSTM-CFC, VAE, VAET, MNIST, GRU) submitted at uniformly
//! random times in 0–200 s, compared across four FlowCon parameter settings
//! and NA.

use super::{baseline_run, flowcon_run};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::summary::RunSummary;

use super::parallel_map;

/// The four parameter settings of Fig. 9: (α, itval).
pub const FIG9_PARAMS: [(f64, u64); 4] = [(0.03, 30), (0.03, 60), (0.05, 30), (0.05, 60)];

/// Results of the Fig. 9 comparison.
#[derive(Debug, Clone)]
pub struct RandomComparison {
    /// One summary per FlowCon setting, in [`FIG9_PARAMS`] order.
    pub flowcon: Vec<RunSummary>,
    /// The NA baseline.
    pub baseline: RunSummary,
    /// The workload (for labels / arrival times).
    pub plan: WorkloadPlan,
}

impl RandomComparison {
    /// Job labels in arrival order.
    pub fn labels(&self) -> Vec<String> {
        self.plan.jobs.iter().map(|j| j.label.clone()).collect()
    }

    /// `(policy, wins, losses)` per FlowCon setting vs NA.
    pub fn win_loss_rows(&self) -> Vec<(String, usize, usize)> {
        self.flowcon
            .iter()
            .map(|s| {
                let (w, l) = s.wins_losses_vs(&self.baseline);
                (s.policy.clone(), w, l)
            })
            .collect()
    }
}

/// Fig. 9: the five-job random schedule under four settings + NA.
pub fn fig9(node: NodeConfig, workload_seed: u64) -> RandomComparison {
    let plan = WorkloadPlan::random_five(workload_seed);
    let baseline = baseline_run(node, &plan).output;
    let flowcon = parallel_map(FIG9_PARAMS.to_vec(), |(alpha, itval): (f64, u64)| {
        flowcon_run(node, &plan, FlowConConfig::with_params(alpha, itval)).output
    });
    RandomComparison {
        flowcon,
        baseline,
        plan,
    }
}

/// Figs. 10–11: CPU usage traces for FlowCon (α = 3%, itval = 30) and NA.
pub fn fig10_fig11(node: NodeConfig, workload_seed: u64) -> (RunSummary, RunSummary) {
    let plan = WorkloadPlan::random_five(workload_seed);
    let fc = flowcon_run(node, &plan, FlowConConfig::with_params(0.03, 30)).output;
    let na = baseline_run(node, &plan).output;
    (fc, na)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{default_node, DEFAULT_SEED};

    #[test]
    fn flowcon_wins_most_jobs() {
        let cmp = fig9(default_node(), DEFAULT_SEED);
        for (policy, wins, losses) in cmp.win_loss_rows() {
            assert!(
                wins >= 3,
                "{policy}: expected ≥3 wins out of 5, got {wins} wins / {losses} losses"
            );
        }
    }

    #[test]
    fn makespan_not_sacrificed() {
        let cmp = fig9(default_node(), DEFAULT_SEED);
        for s in &cmp.flowcon {
            let impr = s.makespan_improvement_vs(&cmp.baseline);
            assert!(
                impr > -5.0,
                "{}: makespan regressed by {:.1}%",
                s.policy,
                -impr
            );
        }
    }

    #[test]
    fn traces_cover_all_five_jobs() {
        let (fc, na) = fig10_fig11(default_node(), DEFAULT_SEED);
        assert_eq!(fc.cpu_usage.len(), 5);
        assert_eq!(na.cpu_usage.len(), 5);
    }
}
