//! Fig. 1: training progress of five models sharing one node.
//!
//! Five containers (VAE-PyTorch, MNIST-PyTorch, CNN-LSTM-TF, RNN-GRU-TF,
//! Logistic-Regression-TF) start simultaneously under the default platform
//! (NA) and their normalized accuracy is plotted against normalized
//! cumulative time.  The headline observation: RNN-GRU reaches ≈96.8% of
//! its final accuracy within ≈15% of the cumulative time.

use crate::experiments::baseline_run;
use flowcon_core::config::NodeConfig;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_dl::{ModelId, ModelSpec, TrainingJob};
use flowcon_sim::rng::SimRng;

/// One model's normalized progress curve.
#[derive(Debug, Clone)]
pub struct ProgressCurve {
    /// Legend label.
    pub label: String,
    /// `(cumulative time fraction, accuracy)` points.
    pub points: Vec<(f64, f64)>,
}

/// Results for Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One curve per model.
    pub curves: Vec<ProgressCurve>,
    /// The run's makespan in seconds (the time axis' normalizer).
    pub makespan_secs: f64,
}

/// Regenerate Fig. 1.
///
/// The run itself only provides per-job completion times and CPU traces;
/// accuracy curves are reconstructed from each model's convergence curve
/// applied to its (fluid) progress — exactly what instrumenting the training
/// scripts on the testbed would have recorded.
pub fn run(node: NodeConfig) -> Fig1 {
    let plan = WorkloadPlan::fig1_concurrent();
    let result = baseline_run(node, &plan);
    let makespan = result.output.makespan_secs();

    let mut curves = Vec::new();
    for job in &plan.jobs {
        let spec = ModelSpec::of(job.model);
        let label = job.label.clone();
        let completion = result
            .output
            .completion_of(&label)
            .expect("every job completes");
        // Reconstruct accuracy(t) from the job's cumulative CPU trace: the
        // workload's progress is proportional to integrated effective CPU.
        let usage = result
            .output
            .cpu_usage
            .get(&label)
            .expect("usage trace recorded");
        // Re-derive per-instance total work (same jitter stream as the run:
        // jobs were created in arrival order from the node seed).
        let mut cumulative = 0.0;
        let mut points = Vec::with_capacity(usage.len());
        let mut last_t = 0.0;
        for &(t, rate) in usage.points() {
            cumulative += rate * (t - last_t);
            last_t = t;
            // Effective progress ignores the contention factor here; the
            // normalization to the final point absorbs the constant.
            let x = (cumulative / spec.total_work).min(1.0);
            let acc = spec.curve.level(x) * spec.final_accuracy;
            points.push((t / makespan, acc));
            if t >= completion {
                break;
            }
        }
        // Snap the final point to full accuracy at the completion instant.
        points.push((completion / makespan, spec.final_accuracy));
        curves.push(ProgressCurve { label, points });
    }
    Fig1 {
        curves,
        makespan_secs: makespan,
    }
}

/// The §2.2 statistic: the time fraction at which a model first reaches
/// `quality` (fraction of its final accuracy).
pub fn time_fraction_to_quality(fig: &Fig1, label: &str, quality: f64) -> Option<f64> {
    let curve = fig.curves.iter().find(|c| c.label == label)?;
    let final_acc = curve.points.last()?.1;
    curve
        .points
        .iter()
        .find(|(_, acc)| *acc >= quality * final_acc)
        .map(|&(t, _)| t)
}

/// A standalone single-job accuracy curve (no contention), used to sanity
/// check calibration against the analytic model.
pub fn solo_curve(model: ModelId, seed: u64) -> Vec<(f64, f64)> {
    let spec = ModelSpec::of(model);
    let mut rng = SimRng::new(seed);
    let job = TrainingJob::new(spec.clone(), &mut rng);
    let total = flowcon_container::Workload::remaining_cpu_seconds(&job).unwrap();
    (0..=100)
        .map(|i| {
            let x = i as f64 / 100.0;
            let _ = total;
            (x, spec.curve.level(x) * spec.final_accuracy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::default_node;

    #[test]
    fn five_curves_are_produced() {
        let fig = run(default_node());
        assert_eq!(fig.curves.len(), 5);
        for c in &fig.curves {
            assert!(c.points.len() > 10, "{} too sparse", c.label);
            // Accuracy is monotone non-decreasing.
            let mut last = -1.0;
            for &(_, acc) in &c.points {
                assert!(acc >= last - 1e-9, "{} not monotone", c.label);
                last = acc;
            }
        }
    }

    #[test]
    fn gru_converges_early_like_the_paper() {
        let fig = run(default_node());
        // §2.2: RNN-GRU reaches ~96.8% of its final accuracy at ~14.5% of
        // cumulative time.  Under contention the fluid run shifts this a
        // little; accept a generous band around the paper's value.
        let frac = time_fraction_to_quality(&fig, "RNN-GRU (Tensorflow)", 0.968)
            .expect("GRU curve present");
        assert!(
            frac > 0.03 && frac < 0.40,
            "GRU reaches 96.8% quality at {frac:.3} of cumulative time"
        );
    }

    #[test]
    fn logreg_is_the_slow_converger() {
        let fig = run(default_node());
        let gru = time_fraction_to_quality(&fig, "RNN-GRU (Tensorflow)", 0.9).unwrap();
        let logreg =
            time_fraction_to_quality(&fig, "Logistic Regression (Tensorflow)", 0.9).unwrap();
        assert!(
            logreg > gru,
            "logistic regression ({logreg:.3}) should converge later than GRU ({gru:.3})"
        );
    }
}
