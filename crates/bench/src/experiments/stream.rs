//! The open-loop streaming experiment: unbounded arrival streams driving
//! live workers until a horizon.
//!
//! `repro stream` is the CLI front; this module holds the reusable pieces
//! — stream-source presets matching `repro trace`'s synthetic presets, and
//! replay helpers for the single-worker (full observability) and cluster
//! (headless) open-loop configurations the CLI and the perf suite share.

use flowcon_cluster::{ClusterOutcome, ClusterSession, DynStreamSource, Horizon, PolicyKind};
use flowcon_core::config::NodeConfig;
use flowcon_core::session::{Session, StreamResult};
use flowcon_metrics::summary::{CompletionStats, RunSummary};
use flowcon_sim::trace::Tracer;
use flowcon_workload::stream::JobStream;
use flowcon_workload::SyntheticStreamSource;

use crate::experiments::trace;

/// The default per-worker arrival rate of `repro stream` (jobs/second).
///
/// Chosen so the acceptance configuration — `--until 3600` — admits
/// ~1.8 jobs per worker, the same per-worker work as every committed
/// `cluster/*` bench row (2 jobs/worker), which is what makes the
/// `stream/open_loop/w1024` allocs/worker figure comparable to the
/// headless budget it is gated against.
pub const DEFAULT_STREAM_RATE: f64 = 0.0005;

/// Resolve a synthetic stream-source preset by CLI name
/// (`poisson`/`bursty`/`diurnal`, per-worker `rate` jobs/s) — the
/// open-loop counterpart of [`trace::preset`].
pub fn stream_preset(name: &str, rate: f64, seed: u64) -> Option<SyntheticStreamSource> {
    // Reuse the trace presets' process parameterizations so `repro trace
    // --synthetic X` and `repro stream --synthetic X` drive the same
    // arrival processes.
    let process = trace::preset(name, rate, 0, seed)?.process;
    Some(SyntheticStreamSource::new(process, seed))
}

/// Run one worker open-loop with full observability.
pub fn stream_session<J: JobStream>(
    stream: J,
    horizon: Horizon,
    node: NodeConfig,
    policy: PolicyKind,
) -> StreamResult<RunSummary> {
    Session::builder()
        .node(node)
        .policy_box(policy.build())
        .build()
        .run_stream(stream, horizon)
}

/// [`stream_session`] recording a structured timeline through `tracer`
/// (`repro stream --trace-out`).
pub fn stream_session_traced<J: JobStream, T: Tracer>(
    stream: J,
    horizon: Horizon,
    node: NodeConfig,
    policy: PolicyKind,
    tracer: &mut T,
) -> StreamResult<RunSummary> {
    Session::builder()
        .node(node)
        .policy_box(policy.build())
        .build()
        .run_stream_traced(stream, horizon, tracer)
}

/// Run a headless open-loop cluster of `workers` nodes off `source`.
pub fn stream_cluster(
    source: &dyn DynStreamSource,
    workers: usize,
    horizon: Horizon,
    node: NodeConfig,
    policy: PolicyKind,
) -> ClusterOutcome<CompletionStats> {
    ClusterSession::builder()
        .nodes(workers, node)
        .policy(policy)
        .stream(source, horizon)
        .build()
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::default_node;
    use flowcon_core::config::FlowConConfig;
    use flowcon_workload::StreamSource;

    #[test]
    fn stream_presets_mirror_the_trace_presets() {
        for name in ["poisson", "bursty", "diurnal"] {
            let source = stream_preset(name, 0.1, 7).expect(name);
            assert_eq!(source.process().name(), name);
            let expected = trace::preset(name, 0.1, 0, 7).unwrap().process;
            assert_eq!(source.process(), expected);
        }
        assert!(stream_preset("weibull", 0.1, 7).is_none());
    }

    #[test]
    fn open_loop_session_and_cluster_helpers_run_end_to_end() {
        let source = stream_preset("poisson", 0.05, 3).unwrap();
        let horizon = Horizon::jobs(4);
        let session = stream_session(
            source.stream_for(0),
            horizon,
            default_node(),
            PolicyKind::FlowCon(FlowConConfig::default()),
        );
        assert_eq!(session.stream.submitted, 4);
        assert_eq!(session.output.completions.len(), 4);

        let run = stream_cluster(
            &source.unlabeled(),
            8,
            horizon,
            default_node(),
            PolicyKind::Baseline,
        );
        assert_eq!(run.submitted_jobs(), 32);
        assert_eq!(run.completed_jobs(), 32);
        let totals = run.stream_totals();
        assert!(totals.utilization() > 0.0 && totals.utilization() <= 1.0);
    }
}
