//! Ablations beyond the paper (see DESIGN.md §4).
//!
//! * **back-off** — does disabling the exponential back-off change outcomes
//!   and how much scheduler work does it add?
//! * **β sweep** — starvation behaviour of the CL lower bound.
//! * **κ sweep** — sensitivity of the makespan win to contention strength.
//! * **policy zoo** — FlowCon vs NA vs static 1/n vs SLAQ-like
//!   quality-proportional.

use super::{baseline_run, flowcon_run, policy_run};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{
    FairSharePolicy, FlowConPolicy, QualityProportionalPolicy, StaticEqualPolicy,
};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::contention::ContentionModel;
use flowcon_sim::time::SimDuration;

use super::parallel_map;

/// Back-off ablation result.
#[derive(Debug, Clone)]
pub struct BackoffAblation {
    /// Algorithm-1 invocations with back-off on.
    pub runs_with: u64,
    /// Algorithm-1 invocations with back-off off.
    pub runs_without: u64,
    /// Makespan with back-off on (seconds).
    pub makespan_with: f64,
    /// Makespan with back-off off (seconds).
    pub makespan_without: f64,
}

/// Run the back-off ablation on the fixed three-job schedule.
pub fn backoff(node: NodeConfig) -> BackoffAblation {
    let plan = WorkloadPlan::fixed_three();
    let with = flowcon_run(node, &plan, FlowConConfig::default());
    let without = flowcon_run(
        node,
        &plan,
        FlowConConfig {
            backoff: false,
            ..FlowConConfig::default()
        },
    );
    BackoffAblation {
        runs_with: with.output.algorithm_runs,
        runs_without: without.output.algorithm_runs,
        makespan_with: with.output.makespan_secs(),
        makespan_without: without.output.makespan_secs(),
    }
}

/// β sweep on the five-job random workload: per-β makespan and the worst
/// per-job completion-time regression vs NA.
pub fn beta_sweep(node: NodeConfig, seed: u64, betas: &[f64]) -> Vec<(f64, f64, f64)> {
    let plan = WorkloadPlan::random_five(seed);
    let baseline = baseline_run(node, &plan).output;
    parallel_map(betas.to_vec(), move |beta: f64| {
        let cfg = FlowConConfig {
            beta,
            ..FlowConConfig::default()
        };
        let s = flowcon_run(node, &plan, cfg).output;
        let worst_regression = plan
            .jobs
            .iter()
            .filter_map(|j| s.reduction_vs(&baseline, &j.label))
            .fold(f64::INFINITY, f64::min);
        (beta, s.makespan_secs(), worst_regression)
    })
}

/// κ sweep: `(kappa, flowcon makespan improvement % vs NA)` on the fixed
/// schedule — shows the makespan win needs real contention to exist.
pub fn kappa_sweep(node: NodeConfig, kappas: &[f64]) -> Vec<(f64, f64)> {
    let plan = WorkloadPlan::fixed_three();
    parallel_map(kappas.to_vec(), move |kappa: f64| {
        let node = NodeConfig {
            contention: ContentionModel::with_kappa(kappa),
            ..node
        };
        let na = baseline_run(node, &plan).output;
        let fc = flowcon_run(node, &plan, FlowConConfig::default()).output;
        (kappa, fc.makespan_improvement_vs(&na))
    })
}

/// Drive Algorithm 1 by a different resource's growth efficiency (Eq. 2 is
/// defined per resource; the paper evaluates CPU).  Returns `(resource,
/// makespan, wins vs NA)` on the five-job random workload.
pub fn resource_sweep(node: NodeConfig, seed: u64) -> Vec<(String, f64, usize)> {
    use flowcon_sim::ResourceKind;
    let plan = WorkloadPlan::random_five(seed);
    let baseline = baseline_run(node, &plan).output;
    [ResourceKind::Cpu, ResourceKind::Memory, ResourceKind::BlkIo]
        .into_iter()
        .map(|resource| {
            let cfg = FlowConConfig {
                resource,
                ..FlowConConfig::default()
            };
            let s = flowcon_run(node, &plan, cfg).output;
            let (wins, _) = s.wins_losses_vs(&baseline);
            (resource.name().to_string(), s.makespan_secs(), wins)
        })
        .collect()
}

/// Policy-zoo comparison on the five-job random workload: `(policy,
/// makespan, mean completion)` per policy.
pub fn policy_zoo(node: NodeConfig, seed: u64) -> Vec<(String, f64, f64)> {
    let plan = WorkloadPlan::random_five(seed);
    let policies: Vec<Box<dyn flowcon_core::policy::ResourcePolicy>> = vec![
        Box::new(FlowConPolicy::new(FlowConConfig::default())),
        Box::new(FairSharePolicy::new()),
        Box::new(StaticEqualPolicy::new()),
        Box::new(QualityProportionalPolicy::new(
            SimDuration::from_secs(30),
            0.05,
        )),
    ];
    policies
        .into_iter()
        .map(|policy| {
            let s = policy_run(node, &plan, policy).output;
            let mean = flowcon_metrics::stats::mean(
                &s.completions
                    .iter()
                    .map(|c| c.completion_secs())
                    .collect::<Vec<_>>(),
            )
            .unwrap_or(f64::NAN);
            (s.policy.clone(), s.makespan_secs(), mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{default_node, DEFAULT_SEED};

    #[test]
    fn backoff_reduces_scheduler_work_without_hurting_makespan() {
        let ab = backoff(default_node());
        assert!(
            ab.runs_with <= ab.runs_without,
            "back-off should not increase algorithm runs: {} vs {}",
            ab.runs_with,
            ab.runs_without
        );
        let delta = (ab.makespan_with - ab.makespan_without).abs() / ab.makespan_without;
        assert!(delta < 0.05, "makespans diverged by {:.1}%", delta * 100.0);
    }

    #[test]
    fn beta_bound_prevents_starvation() {
        let rows = beta_sweep(default_node(), DEFAULT_SEED, &[1.0, 2.0, 8.0]);
        // Larger beta -> smaller guaranteed floor -> throttled jobs can lose
        // more.  The worst regression should be (weakly) worse at beta=8.
        let worst_beta2 = rows.iter().find(|r| r.0 == 2.0).unwrap().2;
        let worst_beta8 = rows.iter().find(|r| r.0 == 8.0).unwrap().2;
        assert!(
            worst_beta8 <= worst_beta2 + 5.0,
            "beta=8 worst {worst_beta8:.1}% vs beta=2 worst {worst_beta2:.1}%"
        );
    }

    #[test]
    fn makespan_win_vanishes_without_contention() {
        let rows = kappa_sweep(default_node(), &[0.0, 0.05]);
        let ideal = rows[0].1;
        // On an interference-free node the fluid system is work-conserving:
        // FlowCon cannot beat NA's makespan by much (it may tie or lose a
        // hair to tail-extension of throttled jobs).
        assert!(
            ideal.abs() < 6.0,
            "kappa=0 should give a near-zero makespan delta, got {ideal:.2}%"
        );
    }

    #[test]
    fn resource_sweep_cpu_is_at_least_as_good() {
        let rows = resource_sweep(default_node(), DEFAULT_SEED);
        assert_eq!(rows.len(), 3);
        let cpu = rows.iter().find(|r| r.0 == "cpu").unwrap();
        // CPU-driven scheduling (the paper's choice for compute-bound jobs)
        // should win at least as many jobs as I/O-driven scheduling.
        let blkio = rows.iter().find(|r| r.0 == "blkio").unwrap();
        assert!(cpu.2 >= blkio.2.saturating_sub(1), "{rows:?}");
        // Every variant still completes the workload.
        assert!(rows.iter().all(|r| r.1 > 0.0));
    }

    #[test]
    fn policy_zoo_runs_all_four() {
        let rows = policy_zoo(default_node(), DEFAULT_SEED);
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"NA"));
        assert!(names.contains(&"Static-1/n"));
    }
}
