//! Scalability experiments (§5.5): Figs. 12–17.
//!
//! 10 and 15 jobs drawn from the Table 1 catalog, random arrivals in
//! 0–200 s.  Fig. 12/17 compare per-job completion times; Figs. 13–14 dig
//! into growth-efficiency traces of one "loser" and one "winner"; Figs.
//! 15–16 show the CPU traces.

use super::{baseline_run, flowcon_run};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::summary::RunSummary;

/// Results of a scalability comparison.
#[derive(Debug, Clone)]
pub struct ScaleComparison {
    /// FlowCon run.
    pub flowcon: RunSummary,
    /// NA baseline.
    pub baseline: RunSummary,
    /// The workload.
    pub plan: WorkloadPlan,
}

impl ScaleComparison {
    /// Job labels in arrival order.
    pub fn labels(&self) -> Vec<String> {
        self.plan.jobs.iter().map(|j| j.label.clone()).collect()
    }

    /// Wins/losses vs the baseline.
    pub fn wins_losses(&self) -> (usize, usize) {
        self.flowcon.wins_losses_vs(&self.baseline)
    }

    /// The job with the largest completion-time reduction.
    pub fn biggest_winner(&self) -> Option<(String, f64)> {
        self.labels()
            .into_iter()
            .filter_map(|l| {
                self.flowcon
                    .reduction_vs(&self.baseline, &l)
                    .map(|r| (l, r))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite reductions"))
    }

    /// Pick the Fig. 13/14 exemplars: the biggest loser (or the smallest
    /// winner if FlowCon wins everywhere) and the biggest winner.
    pub fn exemplars(&self) -> (String, String) {
        let mut rows: Vec<(String, f64)> = self
            .labels()
            .into_iter()
            .filter_map(|l| {
                self.flowcon
                    .reduction_vs(&self.baseline, &l)
                    .map(|r| (l, r))
            })
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite reductions"));
        let loser = rows.first().map(|(l, _)| l.clone()).unwrap_or_default();
        let winner = rows.last().map(|(l, _)| l.clone()).unwrap_or_default();
        (loser, winner)
    }
}

/// Fig. 12 (and Figs. 13–16): 10 jobs, FlowCon α = 10%, itval = 20 vs NA.
pub fn fig12(node: NodeConfig, workload_seed: u64) -> ScaleComparison {
    let plan = WorkloadPlan::random_n(10, workload_seed);
    compare(node, plan, FlowConConfig::with_params(0.10, 20))
}

/// Fig. 17: 15 jobs, FlowCon α = 10%, itval = 40 vs NA.
pub fn fig17(node: NodeConfig, workload_seed: u64) -> ScaleComparison {
    let plan = WorkloadPlan::random_n(15, workload_seed);
    compare(node, plan, FlowConConfig::with_params(0.10, 40))
}

/// Run one FlowCon-vs-NA comparison on a given plan.
pub fn compare(node: NodeConfig, plan: WorkloadPlan, config: FlowConConfig) -> ScaleComparison {
    let (flowcon, baseline) = std::thread::scope(|s| {
        let fc = s.spawn(|| flowcon_run(node, &plan, config).output);
        let na = s.spawn(|| baseline_run(node, &plan).output);
        (
            fc.join().expect("flowcon run panicked"),
            na.join().expect("baseline run panicked"),
        )
    });
    ScaleComparison {
        flowcon,
        baseline,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{default_node, DEFAULT_SEED};

    #[test]
    fn ten_jobs_mostly_win() {
        let cmp = fig12(default_node(), DEFAULT_SEED);
        let (wins, losses) = cmp.wins_losses();
        assert!(
            wins >= 6,
            "expected FlowCon to win most of 10 jobs: {wins} wins, {losses} losses"
        );
        let impr = cmp.flowcon.makespan_improvement_vs(&cmp.baseline);
        assert!(impr > -5.0, "makespan regressed {:.1}%", -impr);
    }

    #[test]
    fn fifteen_jobs_complete_and_mostly_win() {
        let cmp = fig17(default_node(), DEFAULT_SEED);
        assert_eq!(cmp.flowcon.completions.len(), 15);
        assert_eq!(cmp.baseline.completions.len(), 15);
        let (wins, _) = cmp.wins_losses();
        assert!(wins >= 8, "expected ≥8 wins out of 15, got {wins}");
    }

    #[test]
    fn exemplars_have_growth_traces() {
        let cmp = fig12(default_node(), DEFAULT_SEED);
        let (loser, winner) = cmp.exemplars();
        assert_ne!(loser, winner);
        for label in [&loser, &winner] {
            assert!(
                cmp.flowcon.growth_efficiency.get(label).is_some(),
                "missing FlowCon growth trace for {label}"
            );
            assert!(
                cmp.baseline.growth_efficiency.get(label).is_some(),
                "missing NA growth trace for {label}"
            );
        }
    }
}
