//! Differential fidelity: the identical seeded workload through the fluid
//! simulation (reference) and the `flowcon-rt` wall-clock backend
//! (candidate), divergence measured by `flowcon_metrics::fidelity`.
//!
//! Both backends are configured through the *same* `Session` builder
//! chain; the rt side takes the backend-generic spec
//! (`SessionBuilder::into_spec`) so workload identity — per-job jittered
//! total work included — is bit-exact across backends (one RNG split per
//! job in plan order, see `flowcon_rt::session`).  Completions come back
//! in virtual (dilated) sim-seconds, directly comparable per label.
//!
//! Chaos scenarios are **physically real on the rt side only**: the sim
//! stays clean and the report quantifies how much a throttled governor
//! (straggler) or a killed/relaunched container thread (churn) bends the
//! wall-clock run away from the model's prediction.

use std::time::Duration;

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::FlowConPolicy;
use flowcon_core::session::Session;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::fidelity::{compare, FidelityReport};
use flowcon_metrics::summary::RunSummary;
use flowcon_rt::{RtChaos, RtConfig, RtSessionBuilder};

/// Which chaos scenario to make real on the rt side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// First-launched container's governor rate throttled to 25%.
    Straggler,
    /// Oldest live container thread killed at 30 sim-s, relaunched 30
    /// sim-s later with its job state intact.
    Churn,
}

impl ChaosKind {
    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::Straggler => "straggler",
            ChaosKind::Churn => "churn",
        }
    }
}

/// One fidelity run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct FidelityConfig {
    /// Node CPU capacity in cores (the `--workers` knob: how many
    /// containers can make full-rate progress concurrently).
    pub workers: u32,
    /// Number of seeded jobs in the plan.
    pub jobs: usize,
    /// Workload + node seed (shared by both backends).
    pub seed: u64,
    /// Simulated seconds per wall second on the rt side.
    pub dilation: f64,
    /// Chaos scenario, rt side only.
    pub chaos: Option<ChaosKind>,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            workers: 2,
            jobs: 8,
            seed: super::DEFAULT_SEED,
            dilation: 400.0,
            chaos: None,
        }
    }
}

/// Everything one fidelity run produces.
pub struct FidelityOutcome {
    /// The divergence report.
    pub report: FidelityReport,
    /// Reference (simulation) run.
    pub sim: RunSummary,
    /// Candidate (wall-clock) run.
    pub rt: RunSummary,
    /// Display name of the policy both backends ran.
    pub policy: String,
}

/// The node both backends share.
fn node(config: &FidelityConfig) -> NodeConfig {
    NodeConfig {
        capacity: config.workers.max(1) as f64,
        ..NodeConfig::default()
    }
    .with_seed(config.seed)
}

/// Run the identical workload through both backends and compare.
pub fn run(config: &FidelityConfig) -> FidelityOutcome {
    let plan = WorkloadPlan::random_n(config.jobs, config.seed);
    let flowcon = FlowConConfig::default();
    let policy_name = flowcon.display_name();

    let sim = Session::builder()
        .node(node(config))
        .plan(plan.clone())
        .policy(FlowConPolicy::new(flowcon))
        .build()
        .run()
        .output;

    let spec = Session::builder()
        .node(node(config))
        .plan(plan)
        .policy(FlowConPolicy::new(flowcon))
        .into_spec();
    let mut builder = RtSessionBuilder::from_spec(spec).config(RtConfig {
        dilation: config.dilation,
        ..RtConfig::default()
    });
    if let Some(chaos) = config.chaos {
        builder = builder.chaos(rt_chaos(chaos, config.dilation));
    }
    let rt = builder.build().run();

    FidelityOutcome {
        report: compare(&sim.completions, &rt.completions),
        sim,
        rt,
        policy: policy_name,
    }
}

/// Translate a chaos kind into physical rt parameters (sim offsets
/// converted to wall clock through the dilation).
fn rt_chaos(kind: ChaosKind, dilation: f64) -> RtChaos {
    let dilation = dilation.max(1e-9);
    match kind {
        ChaosKind::Straggler => RtChaos::Straggler { factor: 0.25 },
        ChaosKind::Churn => RtChaos::Churn {
            at: Duration::from_secs_f64(30.0 / dilation),
            down: Duration::from_secs_f64(30.0 / dilation),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole harness end to end, CI-tiny: both backends complete the
    /// same job set, and the report sees it.
    #[test]
    fn tiny_fidelity_run_has_equal_completion_sets() {
        let outcome = run(&FidelityConfig {
            workers: 2,
            jobs: 3,
            seed: 7,
            dilation: 2000.0,
            chaos: None,
        });
        assert_eq!(outcome.sim.completions.len(), 3);
        assert_eq!(outcome.rt.completions.len(), 3);
        assert!(
            outcome.report.completion_set_equal,
            "missing {:?} extra {:?}",
            outcome.report.missing_labels, outcome.report.extra_labels
        );
        assert_eq!(outcome.report.matched, 3);
    }

    /// A physically-throttled straggler still completes every job but
    /// must show up as divergence.
    #[test]
    fn straggler_chaos_diverges_with_intact_set() {
        let outcome = run(&FidelityConfig {
            workers: 2,
            jobs: 3,
            seed: 7,
            dilation: 2000.0,
            chaos: Some(ChaosKind::Straggler),
        });
        assert!(outcome.report.completion_set_equal);
        assert!(
            outcome.report.divergent(),
            "a 4x-throttled container must bend the run visibly"
        );
    }
}
