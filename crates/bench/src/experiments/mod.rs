//! Experiment definitions, one module per figure group.

pub mod ablation;
pub mod fidelity;
pub mod fig1;
pub mod fixed;
pub mod frontier;
pub mod random;
pub mod scale;
pub mod stream;
pub mod trace;

use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::policy::{FairSharePolicy, FlowConPolicy, ResourcePolicy};
use flowcon_core::session::{Session, SessionResult};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::summary::RunSummary;

/// The seed every headline experiment uses (results in EXPERIMENTS.md were
/// produced with this seed; change it to check robustness).
pub const DEFAULT_SEED: u64 = 0xF10C;

/// The default simulated node for all experiments.
pub fn default_node() -> NodeConfig {
    NodeConfig::default().with_seed(DEFAULT_SEED)
}

/// Harness shorthand: one full-observability session under an arbitrary
/// policy (the experiments need every paper trace, so they always record
/// with the default `FullRecorder`).
pub fn policy_run(
    node: NodeConfig,
    plan: &WorkloadPlan,
    policy: Box<dyn ResourcePolicy>,
) -> SessionResult<RunSummary> {
    Session::builder()
        .node(node)
        .plan(plan.clone())
        .policy_box(policy)
        .build()
        .run()
}

/// Harness shorthand: one FlowCon session with the given parameters.
pub fn flowcon_run(
    node: NodeConfig,
    plan: &WorkloadPlan,
    config: FlowConConfig,
) -> SessionResult<RunSummary> {
    policy_run(node, plan, Box::new(FlowConPolicy::new(config)))
}

/// Harness shorthand: one NA-baseline session.
pub fn baseline_run(node: NodeConfig, plan: &WorkloadPlan) -> SessionResult<RunSummary> {
    policy_run(node, plan, Box::new(FairSharePolicy::new()))
}

/// Run closures on parallel OS threads, preserving input order of results.
///
/// Parameter sweeps (Figs. 3–6 sweep five itval values × several α) are
/// embarrassingly parallel: each cell is an independent deterministic
/// simulation.  Delegates to the sharded cluster executor
/// ([`flowcon_cluster::executor::map_bounded`]) — the shared-cursor pool
/// born here was generalized into that module — so parallelism stays
/// bounded by [`std::thread::available_parallelism`]: a 100-cell sweep on
/// an 8-way machine spawns 8 threads, not 100.
pub fn parallel_map<T, O, F>(inputs: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    flowcon_cluster::executor::map_bounded(inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_many_more_cells_than_cores() {
        // 500 cells must not spawn 500 threads; with the bounded pool this
        // completes with at most `available_parallelism` workers.
        let out = parallel_map((0..500).collect(), |x: u64| x * x);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64).pow(2)));
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert!(parallel_map(Vec::<u8>::new(), |x: u8| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x: u8| x + 1), vec![8]);
    }
}
