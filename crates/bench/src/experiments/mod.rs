//! Experiment definitions, one module per figure group.

pub mod ablation;
pub mod fig1;
pub mod fixed;
pub mod random;
pub mod scale;

use flowcon_core::config::NodeConfig;

/// The seed every headline experiment uses (results in EXPERIMENTS.md were
/// produced with this seed; change it to check robustness).
pub const DEFAULT_SEED: u64 = 0xF10C;

/// The default simulated node for all experiments.
pub fn default_node() -> NodeConfig {
    NodeConfig::default().with_seed(DEFAULT_SEED)
}

/// Run closures on parallel OS threads, preserving input order of results.
///
/// Parameter sweeps (Figs. 3–6 sweep five itval values × several α) are
/// embarrassingly parallel: each cell is an independent deterministic
/// simulation.  Parallelism is bounded by
/// [`std::thread::available_parallelism`]: a fixed pool of scoped workers
/// pulls cells off a shared cursor, so a 100-cell sweep on an 8-way machine
/// spawns 8 threads, not 100.
pub fn parallel_map<T, F>(inputs: Vec<T>, f: F) -> Vec<<F as ParallelCell<T>>::Out>
where
    T: Send,
    F: ParallelCell<T> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    // Single-worker degenerate case (or a 1-cell sweep): run inline.
    if workers == 1 {
        return inputs.into_iter().map(|input| f.run(input)).collect();
    }

    // Work-stealing by shared cursor: each worker claims the next unclaimed
    // index, computes the cell, and writes the result into its slot, so
    // output order always matches input order regardless of scheduling.
    let cells: Vec<Mutex<Option<T>>> = inputs
        .into_iter()
        .map(|input| Mutex::new(Some(input)))
        .collect();
    let slots: Vec<Mutex<Option<<F as ParallelCell<T>>::Out>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let input = cells[i]
                    .lock()
                    .expect("cell mutex poisoned")
                    .take()
                    .expect("each cell is claimed exactly once");
                let out = f.run(input);
                *slots[i].lock().expect("slot mutex poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// A sendable experiment cell (object-safe closure alternative so
/// `parallel_map` can name the output type).
pub trait ParallelCell<T> {
    /// Result of one cell.
    type Out: Send;
    /// Execute one cell.
    fn run(&self, input: T) -> Self::Out;
}

impl<T, O: Send, F: Fn(T) -> O> ParallelCell<T> for F {
    type Out = O;
    fn run(&self, input: T) -> O {
        self(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_many_more_cells_than_cores() {
        // 500 cells must not spawn 500 threads; with the bounded pool this
        // completes with at most `available_parallelism` workers.
        let out = parallel_map((0..500).collect(), |x: u64| x * x);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64).pow(2)));
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert!(parallel_map(Vec::<u8>::new(), |x: u8| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x: u8| x + 1), vec![8]);
    }
}
