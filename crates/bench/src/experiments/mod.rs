//! Experiment definitions, one module per figure group.

pub mod ablation;
pub mod fig1;
pub mod fixed;
pub mod random;
pub mod scale;

use flowcon_core::config::NodeConfig;

/// The seed every headline experiment uses (results in EXPERIMENTS.md were
/// produced with this seed; change it to check robustness).
pub const DEFAULT_SEED: u64 = 0xF10C;

/// The default simulated node for all experiments.
pub fn default_node() -> NodeConfig {
    NodeConfig::default().with_seed(DEFAULT_SEED)
}

/// Run closures on parallel OS threads, preserving input order of results.
///
/// Parameter sweeps (Figs. 3–6 sweep five itval values × several α) are
/// embarrassingly parallel: each cell is an independent deterministic
/// simulation, so we fan out with scoped threads (no dependency needed) and
/// join in order.
pub fn parallel_map<T, F>(inputs: Vec<T>, f: F) -> Vec<<F as ParallelCell<T>>::Out>
where
    T: Send,
    F: ParallelCell<T> + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|input| scope.spawn({
                let f = &f;
                move || f.run(input)
            }))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment cell panicked"))
            .collect()
    })
}

/// A sendable experiment cell (object-safe closure alternative so
/// `parallel_map` can name the output type).
pub trait ParallelCell<T> {
    /// Result of one cell.
    type Out: Send;
    /// Execute one cell.
    fn run(&self, input: T) -> Self::Out;
}

impl<T, O: Send, F: Fn(T) -> O> ParallelCell<T> for F {
    type Out = O;
    fn run(&self, input: T) -> O {
        self(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }
}
