//! Fixed-scheduling experiments (§5.3): Figs. 3–8 and Table 2.
//!
//! Workload: VAE (PyTorch) at 0 s, MNIST (PyTorch) at 40 s, MNIST
//! (TensorFlow) at 80 s — the late short TensorFlow job is the one FlowCon
//! should accelerate by shifting share away from the nearly-converged VAE.

use super::{baseline_run, flowcon_run};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_dl::workload::WorkloadPlan;
use flowcon_metrics::summary::RunSummary;

use super::parallel_map;

/// The itval values (seconds) swept by Figs. 3–4.
pub const INTERVALS: [u64; 5] = [20, 30, 40, 50, 60];
/// The α values swept by Figs. 5–6.
pub const ALPHAS: [f64; 5] = [0.01, 0.03, 0.05, 0.10, 0.15];
/// The job the paper's §5.3 narrative (and Table 2) tracks.
pub const TRACKED_JOB: &str = "MNIST (Tensorflow)";

/// One cell of a fixed-schedule sweep.
#[derive(Debug, Clone)]
pub struct FixedCell {
    /// FlowCon parameters for this cell.
    pub config: FlowConConfig,
    /// The run's results.
    pub summary: RunSummary,
}

/// Results of one full sweep plus the shared NA baseline.
#[derive(Debug, Clone)]
pub struct FixedSweep {
    /// Swept FlowCon cells, in sweep order.
    pub cells: Vec<FixedCell>,
    /// The NA baseline on the identical workload.
    pub baseline: RunSummary,
}

impl FixedSweep {
    /// Completion-time reduction of [`TRACKED_JOB`] per cell (Table 2).
    pub fn reductions(&self) -> Vec<(String, f64)> {
        self.cells
            .iter()
            .map(|c| {
                let red = c
                    .summary
                    .reduction_vs(&self.baseline, TRACKED_JOB)
                    .unwrap_or(f64::NAN);
                (c.config.display_name(), red)
            })
            .collect()
    }
}

/// Run the fixed workload for every `(alpha, itval)` pair given.
pub fn sweep(node: NodeConfig, params: &[(f64, u64)]) -> FixedSweep {
    let plan = WorkloadPlan::fixed_three();
    let baseline = baseline_run(node, &plan).output;
    let cells = parallel_map(params.to_vec(), |(alpha, itval): (f64, u64)| {
        let config = FlowConConfig::with_params(alpha, itval);
        let summary = flowcon_run(node, &plan, config).output;
        FixedCell { config, summary }
    });
    FixedSweep { cells, baseline }
}

/// Fig. 3: α = 5%, itval ∈ {20..60}.
pub fn fig3(node: NodeConfig) -> FixedSweep {
    sweep(node, &INTERVALS.map(|i| (0.05, i)))
}

/// Fig. 4: α = 10%, itval ∈ {20..60}.
pub fn fig4(node: NodeConfig) -> FixedSweep {
    sweep(node, &INTERVALS.map(|i| (0.10, i)))
}

/// Fig. 5: itval = 20, α ∈ {1..15}%.
pub fn fig5(node: NodeConfig) -> FixedSweep {
    sweep(node, &ALPHAS.map(|a| (a, 20)))
}

/// Fig. 6: itval = 30, α ∈ {1..15}%.
pub fn fig6(node: NodeConfig) -> FixedSweep {
    sweep(node, &ALPHAS.map(|a| (a, 30)))
}

/// One Table 2 column: `(setting label, reduction %)` rows.
pub type ReductionColumn = Vec<(String, f64)>;

/// Table 2: completion-time reduction of MNIST (TensorFlow) for the Fig. 4
/// column (α = 10%, varying itval) and the Fig. 5 column (itval = 20,
/// varying α).
pub fn table2(node: NodeConfig) -> (ReductionColumn, ReductionColumn) {
    (fig4(node).reductions(), fig5(node).reductions())
}

/// Figs. 7–8: CPU usage traces of FlowCon (α = 5%, itval = 20) and NA.
pub fn fig7_fig8(node: NodeConfig) -> (RunSummary, RunSummary) {
    let plan = WorkloadPlan::fixed_three();
    let fc = flowcon_run(node, &plan, FlowConConfig::with_params(0.05, 20)).output;
    let na = baseline_run(node, &plan).output;
    (fc, na)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::default_node;

    #[test]
    fn fig3_improves_tracked_job_across_all_intervals() {
        let sweep = fig3(default_node());
        for (name, red) in sweep.reductions() {
            assert!(
                red > 0.0,
                "{name}: expected a positive reduction, got {red:.1}%"
            );
        }
    }

    #[test]
    fn makespan_stays_close_to_baseline() {
        let sweep = fig3(default_node());
        for cell in &sweep.cells {
            let impr = cell.summary.makespan_improvement_vs(&sweep.baseline);
            assert!(
                impr > -5.0 && impr < 15.0,
                "{}: makespan improvement {impr:.1}% out of the plausible band",
                cell.config.display_name()
            );
        }
    }

    #[test]
    fn traces_exist_for_fig7_fig8() {
        let (fc, na) = fig7_fig8(default_node());
        assert_eq!(fc.cpu_usage.len(), 3);
        assert_eq!(na.cpu_usage.len(), 3);
        assert!(na.update_calls == 0, "NA never reconfigures");
        assert!(fc.update_calls > 0);
    }
}
