//! Capacity-frontier sweeps: tail latency vs. offered load, per policy.
//!
//! The M/G/1 view of the online scheduler: feed the cluster a Poisson
//! arrival stream at offered rate `λ` and watch the tails.  While
//! `λ` is below the cluster's service capability `μ`, the completion rate
//! tracks the offered rate and sojourn quantiles stay bounded; past the
//! **stability frontier** (`λ > μ`) the completion rate saturates at `μ`
//! and the time-weighted queue depth diverges — on a finite run, the
//! admission queue ends up holding a constant fraction of every job ever
//! submitted.  [`sweep`] climbs a geometric rate ladder, records
//! p50/p95/p99 sojourn and queue-wait at each rung (from the
//! [`SojournStats`](flowcon_metrics::sojourn::SojournStats) sketches the
//! scheduler carries), and stops early at the first saturated rung, so
//! the ladder can be generous without wasting time deep in overload.
//! Once the ladder brackets the frontier, up to [`MAX_BISECTIONS`]
//! geometric bisection rungs tighten the bracket to within
//! [`BRACKET_TARGET_RATIO`] — a doubling ladder's 2× bracket comes back
//! as a ≤ 1.07× one for four extra runs.
//!
//! Every rung is a deterministic [`ClusterSession`] scheduler run (same
//! seed ⇒ bit-identical [`SchedOutcome`]), so two sweeps of the same
//! configuration print byte-identical tables — the property the CI
//! frontier smoke step diffs on.

use flowcon_cluster::{ClusterSession, Horizon, PolicyKind, SchedOutcome, SchedPolicyKind};
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_metrics::export::JsonValue;
use flowcon_metrics::sojourn::Percentiles;
use flowcon_sim::time::SimDuration;
use flowcon_workload::{ArrivalProcess, SyntheticStreamSource};

/// A rung is **saturated** when its completion rate falls below this
/// fraction of the offered rate: the cluster no longer keeps up, so the
/// run's makespan is service-bound rather than arrival-bound.  The slack
/// below 1.0 absorbs the tail drain (the last jobs finish after the
/// admission window even on an idle cluster).
pub const SATURATION_FRACTION: f64 = 0.8;

/// A rung is **diverging** when the time-weighted mean queue depth
/// exceeds this fraction of all jobs submitted — the finite-run signature
/// of `λ > μ` (the queue grows linearly for the whole run, so its mean
/// holds a constant fraction of the workload).
pub const DIVERGENCE_DEPTH_FRACTION: f64 = 0.125;

/// Fixed cluster shape shared by every rung of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct FrontierConfig {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Concurrent job slots per node.
    pub slots_per_node: usize,
    /// Jobs admitted per rung (the Poisson stream is cut off after this
    /// many arrivals; every admitted job runs to completion).
    pub jobs: usize,
    /// Seed for both the arrival stream and the node's eval noise.
    pub seed: u64,
    /// Scheduler quantum (barrier spacing).
    pub quantum: SimDuration,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            slots_per_node: 2,
            jobs: 256,
            seed: crate::perf::CLUSTER_BENCH_PLAN_SEED,
            quantum: SimDuration::from_secs(10),
        }
    }
}

/// A strictly increasing geometric rate ladder:
/// `base, base·factor, …` (`rungs` entries).
pub fn geometric_ladder(base: f64, factor: f64, rungs: usize) -> Vec<f64> {
    let mut rates = Vec::with_capacity(rungs);
    let mut r = base;
    for _ in 0..rungs {
        rates.push(r);
        r *= factor;
    }
    rates
}

/// The default ladder for a cluster shape: ten doubling rungs starting
/// well under the cluster's plausible capacity (`nodes × slots` jobs in
/// flight against model service times of a few hundred simulated
/// seconds), so the sweep brackets the frontier from below and the early
/// stop finds it within the ladder.
pub fn default_ladder(config: &FrontierConfig) -> Vec<f64> {
    let base = (config.nodes * config.slots_per_node) as f64 / 16_000.0;
    geometric_ladder(base, 2.0, 10)
}

/// One measured rung of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Offered Poisson arrival rate (jobs/s).
    pub rate: f64,
    /// Achieved completion rate: jobs / makespan (jobs/s).
    pub completion_rate: f64,
    /// Cluster CPU utilization over the run.
    pub utilization: f64,
    /// Time-weighted mean admission-queue depth (jobs).
    pub mean_queue_depth: f64,
    /// p50/p95/p99 sojourn time (exit − arrival, seconds).
    pub sojourn: Percentiles,
    /// p50/p95/p99 per-visit queue wait (seconds).
    pub queue_wait: Percentiles,
    /// Whether this rung triggered the early stop (completion rate
    /// saturated or queue depth diverged).
    pub saturated: bool,
}

/// The sweep result for one discipline: rungs in ladder order, ending at
/// the first saturated rung (if the ladder reached it).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierCurve {
    /// Discipline name.
    pub policy: &'static str,
    /// Measured rungs, in offered-rate order.
    pub points: Vec<FrontierPoint>,
}

impl FrontierCurve {
    /// The first saturated offered rate — the ladder's bracket on the
    /// stability frontier from above — or `None` if every rung stayed
    /// stable.
    pub fn frontier_rate(&self) -> Option<f64> {
        self.points.iter().find(|p| p.saturated).map(|p| p.rate)
    }

    /// The highest offered rate that stayed stable — the bracket from
    /// below — or `None` if even the first rung saturated.
    pub fn last_stable_rate(&self) -> Option<f64> {
        self.points
            .iter()
            .rev()
            .find(|p| !p.saturated)
            .map(|p| p.rate)
    }

    /// This curve as flat JSONL records (one per rung), for
    /// [`flowcon_metrics::export::to_jsonl`].
    pub fn jsonl_records(&self) -> Vec<Vec<(&'static str, JsonValue)>> {
        self.points
            .iter()
            .map(|p| {
                vec![
                    ("policy", JsonValue::Str(self.policy.to_string())),
                    ("rate", JsonValue::Num(p.rate)),
                    ("completion_rate", JsonValue::Num(p.completion_rate)),
                    ("utilization", JsonValue::Num(p.utilization)),
                    ("mean_queue_depth", JsonValue::Num(p.mean_queue_depth)),
                    ("sojourn_p50", JsonValue::Num(p.sojourn.p50)),
                    ("sojourn_p95", JsonValue::Num(p.sojourn.p95)),
                    ("sojourn_p99", JsonValue::Num(p.sojourn.p99)),
                    ("queue_wait_p50", JsonValue::Num(p.queue_wait.p50)),
                    ("queue_wait_p95", JsonValue::Num(p.queue_wait.p95)),
                    ("queue_wait_p99", JsonValue::Num(p.queue_wait.p99)),
                    ("saturated", JsonValue::Bool(p.saturated)),
                ]
            })
            .collect()
    }
}

/// All given curves as one JSONL document (policies concatenated in
/// input order — the file `repro frontier --emit` writes).
pub fn curves_jsonl(curves: &[FrontierCurve]) -> String {
    let records: Vec<Vec<(&str, JsonValue)>> =
        curves.iter().flat_map(|c| c.jsonl_records()).collect();
    flowcon_metrics::export::to_jsonl(records.iter().map(Vec::as_slice))
}

/// Run one rung: a scheduler run fed `config.jobs` Poisson arrivals at
/// `rate`, returning the outcome for [`point_of`] to summarize.
pub fn rung(kind: SchedPolicyKind, config: &FrontierConfig, rate: f64) -> SchedOutcome {
    let source = SyntheticStreamSource::new(ArrivalProcess::poisson(rate), config.seed).unlabeled();
    let node = NodeConfig::default().with_seed(config.seed);
    ClusterSession::builder()
        .nodes(config.nodes, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .stream(&source, Horizon::jobs(config.jobs))
        .scheduler(kind)
        .quantum(config.quantum)
        .slots_per_node(config.slots_per_node)
        .build()
        .run()
}

/// Summarize one rung's outcome into a [`FrontierPoint`].
pub fn point_of(out: &SchedOutcome, rate: f64, jobs: usize) -> FrontierPoint {
    let completion_rate = out.stream.completion_rate();
    let mean_queue_depth = out.stream.mean_queue_depth();
    let saturated = completion_rate < SATURATION_FRACTION * rate
        || mean_queue_depth > DIVERGENCE_DEPTH_FRACTION * jobs as f64;
    FrontierPoint {
        rate,
        completion_rate,
        utilization: out.stream.utilization(),
        mean_queue_depth,
        sojourn: out.sojourn_percentiles(),
        queue_wait: out.queue_wait_percentiles(),
        saturated,
    }
}

/// Maximum bisection rungs run after the ladder brackets the frontier.
pub const MAX_BISECTIONS: usize = 4;

/// Bisection stops once the bracket (first saturated rate over last
/// stable rate) is at most this ratio.  Four geometric bisections take a
/// doubling ladder's 2× bracket to `2^(1/16) ≈ 1.044`, comfortably
/// inside; wider ladders stop at the [`MAX_BISECTIONS`] cap instead.
pub const BRACKET_TARGET_RATIO: f64 = 1.07;

/// Sweep one discipline up the rate ladder, stopping after the first
/// saturated rung, then bisecting the bracket (see [`sweep_points`]).
pub fn sweep(kind: SchedPolicyKind, config: &FrontierConfig, rates: &[f64]) -> FrontierCurve {
    let points = sweep_points(rates, |rate| {
        point_of(&rung(kind, config, rate), rate, config.jobs)
    });
    FrontierCurve {
        policy: kind.name(),
        points,
    }
}

/// The sweep's decision core, generic over the rung evaluator so it can
/// be unit-tested against synthetic saturation curves.
///
/// Climbs `rates` until the first saturated rung (kept, so the frontier
/// is visible), then — when a stable rung preceded it — runs up to
/// [`MAX_BISECTIONS`] extra rungs at the geometric midpoint
/// `sqrt(lo · hi)` of the bracket, stopping early once
/// `hi / lo ≤` [`BRACKET_TARGET_RATIO`].  Returned points are sorted by
/// offered rate, so [`FrontierCurve::last_stable_rate`] /
/// [`FrontierCurve::frontier_rate`] read the tightened bracket directly.
pub fn sweep_points(
    rates: &[f64],
    mut eval: impl FnMut(f64) -> FrontierPoint,
) -> Vec<FrontierPoint> {
    let mut points: Vec<FrontierPoint> = Vec::with_capacity(rates.len() + MAX_BISECTIONS);
    let mut bracket = None;
    for &rate in rates {
        let point = eval(rate);
        let saturated = point.saturated;
        points.push(point);
        if saturated {
            bracket = points
                .iter()
                .rev()
                .find(|p| !p.saturated)
                .map(|p| (p.rate, rate));
            break;
        }
    }
    if let Some((mut lo, mut hi)) = bracket {
        for _ in 0..MAX_BISECTIONS {
            if hi / lo <= BRACKET_TARGET_RATIO {
                break;
            }
            let mid = (lo * hi).sqrt();
            if !(mid > lo && mid < hi) {
                break; // numerically collapsed bracket
            }
            let point = eval(mid);
            if point.saturated {
                hi = mid;
            } else {
                lo = mid;
            }
            points.push(point);
        }
        points.sort_by(|a, b| a.rate.total_cmp(&b.rate));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FrontierConfig {
        FrontierConfig {
            nodes: 4,
            slots_per_node: 2,
            jobs: 32,
            ..FrontierConfig::default()
        }
    }

    #[test]
    fn geometric_ladder_is_strictly_increasing() {
        let rates = geometric_ladder(0.05, 2.0, 6);
        assert_eq!(rates.len(), 6);
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(rates[0], 0.05);
        assert_eq!(rates[5], 1.6);
    }

    #[test]
    fn sweep_finds_a_frontier_within_a_generous_ladder() {
        let config = tiny();
        let ladder = geometric_ladder(0.001, 4.0, 8);
        let curve = sweep(SchedPolicyKind::Fifo, &config, &ladder);
        // Early stop plus bisection: the highest rate measured is the
        // ladder's first saturated rung, and at most MAX_BISECTIONS
        // midpoints were added inside the bracket.
        let frontier = curve.frontier_rate().expect("ladder spans the frontier");
        let ladder_rungs = curve
            .points
            .iter()
            .filter(|p| ladder.contains(&p.rate))
            .count();
        assert!(curve.points.last().unwrap().saturated);
        assert!(curve.points.len() <= ladder_rungs + MAX_BISECTIONS);
        let stable = curve.last_stable_rate().expect("first rung is idle-slow");
        assert!(stable < frontier);
        // Points are sorted and consistently classified around the
        // reported frontier.
        assert!(curve.points.windows(2).all(|w| w[0].rate < w[1].rate));
        assert!(curve
            .points
            .iter()
            .all(|p| p.saturated == (p.rate >= frontier)));
        // Tails are populated and ordered on every rung.
        for p in &curve.points {
            assert!(p.sojourn.p50 > 0.0);
            assert!(p.sojourn.p50 <= p.sojourn.p95 && p.sojourn.p95 <= p.sojourn.p99);
            assert!(p.queue_wait.p50 <= p.queue_wait.p99);
        }
    }

    /// Synthetic saturation curve: stable iff `rate ≤ capacity`, with no
    /// simulation underneath — pins the bisection policy exactly.
    fn synthetic_eval(
        capacity: f64,
        evals: &mut Vec<f64>,
    ) -> impl FnMut(f64) -> FrontierPoint + '_ {
        move |rate| {
            evals.push(rate);
            FrontierPoint {
                rate,
                completion_rate: rate.min(capacity),
                utilization: (rate / capacity).min(1.0),
                mean_queue_depth: 0.0,
                sojourn: Percentiles::default(),
                queue_wait: Percentiles::default(),
                saturated: rate > capacity,
            }
        }
    }

    #[test]
    fn bisection_tightens_a_doubling_bracket_to_the_target_ratio() {
        let mut evals = Vec::new();
        let ladder = geometric_ladder(0.01, 2.0, 10);
        let points = sweep_points(&ladder, synthetic_eval(0.1, &mut evals));
        // The ladder stops at its first saturated rung (0.16 after 0.08),
        // then spends at most MAX_BISECTIONS runs inside the bracket.
        let ladder_evals = evals.iter().filter(|r| ladder.contains(r)).count();
        assert_eq!(ladder_evals, 5, "0.01..0.16 climbed, rest skipped");
        assert!(evals.len() - ladder_evals <= MAX_BISECTIONS);
        // The reported bracket is ≤ the target ratio and still contains
        // the true capacity.
        let lo = points.iter().rev().find(|p| !p.saturated).unwrap().rate;
        let hi = points.iter().find(|p| p.saturated).unwrap().rate;
        assert!(lo <= 0.1 && 0.1 <= hi, "bracket must contain the capacity");
        assert!(
            hi / lo <= BRACKET_TARGET_RATIO,
            "bracket ratio {:.4} exceeds the {BRACKET_TARGET_RATIO} target",
            hi / lo
        );
        // Sorted output, consistent classification.
        assert!(points.windows(2).all(|w| w[0].rate < w[1].rate));
        assert!(points.iter().all(|p| p.saturated == (p.rate > 0.1)));
    }

    #[test]
    fn bisection_skips_unbracketed_sweeps() {
        // Every rung stable: ladder exhausted, nothing to bisect.
        let mut evals = Vec::new();
        let points = sweep_points(&[0.01, 0.02, 0.04], synthetic_eval(1.0, &mut evals));
        assert_eq!(points.len(), 3);
        assert_eq!(evals.len(), 3);
        assert!(points.iter().all(|p| !p.saturated));
        // First rung already saturated: no stable side to bisect from.
        let mut evals = Vec::new();
        let points = sweep_points(&[0.5, 1.0], synthetic_eval(0.1, &mut evals));
        assert_eq!(points.len(), 1);
        assert_eq!(evals.len(), 1);
        assert!(points[0].saturated);
    }

    #[test]
    fn bisection_stops_early_once_the_bracket_is_tight() {
        // A 1.05x bracket is already inside the 1.07 target: zero extra runs.
        let mut evals = Vec::new();
        let points = sweep_points(&[0.100, 0.105], synthetic_eval(0.102, &mut evals));
        assert_eq!(evals.len(), 2);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = tiny();
        let rates = geometric_ladder(0.002, 4.0, 5);
        let a = sweep(SchedPolicyKind::Tiresias, &config, &rates);
        let b = sweep(SchedPolicyKind::Tiresias, &config, &rates);
        assert_eq!(a, b);
        assert_eq!(curves_jsonl(&[a]), curves_jsonl(&[b]));
    }

    #[test]
    fn jsonl_has_one_record_per_rung() {
        let config = tiny();
        let curve = sweep(SchedPolicyKind::Fifo, &config, &[0.002, 0.004]);
        let doc = curves_jsonl(std::slice::from_ref(&curve));
        assert_eq!(doc.lines().count(), curve.points.len());
        assert!(doc.lines().all(|l| l.starts_with("{\"policy\":\"fifo\"")));
    }
}
