//! The trace-replay experiment: arrival traces and synthetic arrival
//! processes run through the same session/cluster harness as every paper
//! figure.
//!
//! `repro trace` is the CLI front; this module holds the reusable pieces —
//! the committed example traces, replay helpers for the single-worker
//! (full observability) and cluster (headless, `PlanSource`-driven)
//! configurations, and the synthetic-process presets the CLI and the perf
//! suite share.

use flowcon_cluster::{ClusterOutcome, ClusterSession, PolicyKind};
use flowcon_core::config::NodeConfig;
use flowcon_core::session::{Session, SessionResult};
use flowcon_metrics::summary::{CompletionStats, RunSummary};
use flowcon_workload::{
    ArrivalProcess, ArrivalTrace, BoundTrace, PlanSource, Synthetic, TraceCatalog, TraceError,
};

/// The committed paper-faithful example trace (§5.3's fixed schedule as a
/// CSV arrival trace).
pub const PAPER_FIXED_CSV: &str = include_str!("../../../../traces/paper_fixed.csv");

/// The committed large bursty example trace (600 arrivals from the
/// [`bursty_preset`] MMPP, emitted as JSONL by `repro trace --emit`).
pub const BURSTY_LARGE_JSONL: &str = include_str!("../../../../traces/bursty_large.jsonl");

/// Parse + bind a trace document with the default Table-1 catalog.
pub fn bind_default(doc: &str) -> Result<BoundTrace, TraceError> {
    let trace = ArrivalTrace::parse(doc)?;
    TraceCatalog::table1().bind(&trace)
}

/// [`bind_default`] with a caller-owned catalog and output buffer: parsing
/// is zero-copy and binding recycles `out`'s jobs (label `String`s keep
/// their capacity), so a warm re-parse+rebind of the same document
/// allocates only the transient row vector.  This is the shape the
/// `trace/parse_bind/bursty600` bench row measures — a long-running replay
/// service rebinding arriving trace documents.
pub fn bind_default_into(
    doc: &str,
    catalog: &TraceCatalog,
    out: &mut BoundTrace,
) -> Result<(), TraceError> {
    let trace = ArrivalTrace::parse(doc)?;
    catalog.bind_into(&trace, out)
}

/// Replay a bound trace on one worker under `policy`, with full
/// observability.
pub fn replay_session(
    bound: &BoundTrace,
    node: NodeConfig,
    policy: PolicyKind,
) -> SessionResult<RunSummary> {
    Session::builder()
        .node(node)
        .plan(bound)
        .policy_box(policy.build())
        .build()
        .run()
}

/// Replay a plan source on a headless cluster of `workers` nodes.
pub fn replay_cluster(
    source: &dyn PlanSource,
    workers: usize,
    node: NodeConfig,
    policy: PolicyKind,
) -> ClusterOutcome<CompletionStats> {
    ClusterSession::builder()
        .nodes(workers, node)
        .policy(policy)
        .source(source)
        .build()
        .run()
}

/// The CLI's poisson preset: `rate` jobs/s over the Table-1 mix.
pub fn poisson_preset(rate: f64, jobs: usize, seed: u64) -> Synthetic {
    Synthetic::new(ArrivalProcess::poisson(rate), jobs, seed)
}

/// The CLI's bursty preset: bursts at 4× the target mean rate, on 25% of
/// the time (25 s on / 75 s off), silent between bursts — long-run mean
/// `rate`.
pub fn bursty_preset(rate: f64, jobs: usize, seed: u64) -> Synthetic {
    Synthetic::new(
        ArrivalProcess::bursty(4.0 * rate, 0.0, 25.0, 75.0),
        jobs,
        seed,
    )
}

/// The CLI's diurnal preset: mean `rate`, 80% swing, 200 s period (the
/// paper's submission window as one "day").
pub fn diurnal_preset(rate: f64, jobs: usize, seed: u64) -> Synthetic {
    Synthetic::new(ArrivalProcess::diurnal(rate, 0.8, 200.0), jobs, seed)
}

/// Resolve a preset by CLI name.
pub fn preset(name: &str, rate: f64, jobs: usize, seed: u64) -> Option<Synthetic> {
    match name {
        "poisson" => Some(poisson_preset(rate, jobs, seed)),
        "bursty" => Some(bursty_preset(rate, jobs, seed)),
        "diurnal" => Some(diurnal_preset(rate, jobs, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::default_node;
    use flowcon_core::config::FlowConConfig;
    use flowcon_dl::workload::WorkloadPlan;

    #[test]
    fn paper_trace_replays_like_the_fixed_three_plan() {
        let bound = bind_default(PAPER_FIXED_CSV).expect("committed trace parses");
        let plan: WorkloadPlan = (&bound).into();
        let reference = WorkloadPlan::fixed_three();
        assert_eq!(plan.jobs.len(), reference.jobs.len());
        for (a, b) in plan.jobs.iter().zip(&reference.jobs) {
            assert_eq!(
                (a.label.as_str(), a.model, a.arrival),
                (b.label.as_str(), b.model, b.arrival)
            );
        }
        // And the replay itself is bit-identical to running fixed_three().
        let via_trace = replay_session(
            &bound,
            default_node(),
            PolicyKind::FlowCon(FlowConConfig::default()),
        );
        let direct = Session::builder()
            .node(default_node())
            .plan(reference)
            .policy_box(PolicyKind::FlowCon(FlowConConfig::default()).build())
            .build()
            .run();
        assert_eq!(via_trace.output.completions, direct.output.completions);
        assert_eq!(via_trace.events_processed, direct.events_processed);
    }

    #[test]
    fn bursty_large_trace_is_committed_and_replayable() {
        let bound = bind_default(BURSTY_LARGE_JSONL).expect("committed trace parses");
        assert_eq!(bound.len(), 600, "the committed trace holds 600 arrivals");
        // Replay a thinned, compressed slice across a small headless
        // cluster to keep the test fast.
        let trace = ArrivalTrace::parse(BURSTY_LARGE_JSONL).unwrap();
        let thinned = TraceCatalog::table1()
            .unlabeled()
            .thin(0.1, 7)
            .compress(4.0)
            .bind(&trace)
            .unwrap();
        let jobs = thinned.len();
        assert!(jobs > 20, "thinning kept {jobs}");
        let source = flowcon_workload::TraceSource::new(thinned, 8);
        let run = replay_cluster(
            &source,
            8,
            default_node(),
            PolicyKind::FlowCon(FlowConConfig::default()),
        );
        assert_eq!(run.completed_jobs(), jobs);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in ["poisson", "bursty", "diurnal"] {
            let s = preset(name, 0.1, 10, 1).unwrap();
            assert_eq!(s.process.name(), name);
            assert_eq!(s.plan().len(), 10);
        }
        assert!(preset("weibull", 0.1, 10, 1).is_none());
    }
}
