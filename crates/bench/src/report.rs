//! Output plumbing shared by every experiment: paper-style stdout blocks
//! and CSV files under `target/experiments/`.

use std::path::PathBuf;

use flowcon_metrics::export;
use flowcon_metrics::summary::RunSummary;

/// Directory CSV artifacts are written into.
pub fn output_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Write a CSV artifact, returning its path for the report.
pub fn write_csv(name: &str, content: &str) -> PathBuf {
    let path = output_dir().join(name);
    if let Err(e) = export::write_file(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Print a titled section separator.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Render completion-time rows for a set of runs: the common shape of
/// Figs. 3–6, 9, 12 and 17.
pub fn completion_table(runs: &[&RunSummary], job_labels: &[String]) -> String {
    let mut header: Vec<&str> = vec!["job"];
    for r in runs {
        header.push(r.policy.as_str());
    }
    let rows: Vec<Vec<String>> = job_labels
        .iter()
        .map(|label| {
            let mut row = vec![label.clone()];
            for r in runs {
                row.push(
                    r.completion_of(label)
                        .map_or("-".into(), |s| format!("{s:.1}")),
                );
            }
            row
        })
        .chain(std::iter::once({
            let mut row = vec!["makespan".to_string()];
            for r in runs {
                row.push(format!("{:.1}", r.makespan_secs()));
            }
            row
        }))
        .collect();
    export::text_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_metrics::summary::CompletionRecord;
    use flowcon_sim::time::SimTime;

    #[test]
    fn completion_table_includes_makespan_row() {
        let mut s = RunSummary::new("NA");
        s.completions.push(CompletionRecord {
            label: "Job-1".into(),
            arrival: SimTime::ZERO,
            finished: SimTime::from_secs(100),
            exit_code: 0,
        });
        let table = completion_table(&[&s], &["Job-1".to_string()]);
        assert!(table.contains("makespan"));
        assert!(table.contains("100.0"));
    }
}
