//! # flowcon-bench
//!
//! The experiment harness: one module per group of figures/tables from the
//! FlowCon paper's evaluation (§5), plus the ablations listed in DESIGN.md.
//!
//! Every experiment is a pure function from a seed/parameter set to
//! structured results, so the `repro` binary, the integration tests and the
//! Criterion benches all share the same code paths.
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`experiments::fig1`] | Fig. 1 (training progress of five models) |
//! | [`experiments::fixed`] | Figs. 3–8, Table 2 (fixed schedule) |
//! | [`experiments::random`] | Figs. 9–11 (five-job random schedule) |
//! | [`experiments::scale`] | Figs. 12–17 (10/15-job scalability) |
//! | [`experiments::ablation`] | back-off / β / κ / policy-zoo ablations |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod perf;
pub mod report;

pub use experiments::{ablation, fig1, fixed, random, scale};
