//! The perf micro-suite behind `repro bench`.
//!
//! A fixed set of allocator / engine / policy microbenchmarks whose results
//! are written to a machine-readable `BENCH_<date>.json`, populating the
//! repository's performance trajectory.  Every future optimisation PR is
//! judged against the numbers this suite produced before it.
//!
//! The suite is deliberately self-contained (no criterion): plain
//! `Instant`-based sampling with median aggregation, so the `repro` binary
//! can run it anywhere the workspace builds.  Heap-allocation counts come
//! from a caller-provided counter (the `repro` binary installs a counting
//! global allocator; this library stays `forbid(unsafe_code)`).

use std::time::{Duration, Instant};

use flowcon_cluster::{ClusterSession, Horizon, PolicyKind, SchedPolicyKind, TraceSource};
use flowcon_container::ContainerId;
use flowcon_core::algorithm::run_algorithm1;
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::lists::Lists;
use flowcon_core::metric::GrowthMeasurement;
use flowcon_core::policy::FlowConPolicy;
use flowcon_core::session::Session;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::alloc::{
    waterfill, waterfill_into, waterfill_soft_into, AllocRequest, WaterfillScratch,
};
use flowcon_sim::engine::{Scheduler, SimEngine, Simulation};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::trace::{FlightRecorder, Tracer};
use flowcon_workload::{ArrivalProcess, StreamSource, SyntheticStreamSource};

/// One micro-benchmark's aggregated result.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Stable benchmark name (`group/case`).
    pub name: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second implied by the median (`1e9 / ns_per_op`).
    pub ops_per_sec: f64,
    /// Heap allocations per operation, when a counter was available.
    pub allocs_per_op: Option<f64>,
    /// Events per second, for engine-throughput benchmarks.
    pub events_per_sec: Option<f64>,
}

/// A heap-allocation counter provided by the binary (reads its counting
/// global allocator).
pub type AllocCounter<'a> = &'a dyn Fn() -> u64;

/// Median ns/op of `op`, with auto-calibrated batching.
fn time_ns<F: FnMut()>(mut op: F, budget: Duration) -> f64 {
    // Calibrate: grow per-sample iterations until a sample is measurable.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 22 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut samples = Vec::new();
    let deadline = Instant::now() + budget;
    while samples.len() < 25 {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        if Instant::now() >= deadline && samples.len() >= 5 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Allocations per op of `op` over a fixed iteration count.
fn allocs_per_op<F: FnMut()>(counter: Option<AllocCounter<'_>>, op: F) -> Option<f64> {
    allocs_per_op_iters(counter, 1_000, op)
}

/// Allocations per op over `iters` iterations (for expensive ops that can't
/// afford the default 1000).
fn allocs_per_op_iters<F: FnMut()>(
    counter: Option<AllocCounter<'_>>,
    iters: u64,
    mut op: F,
) -> Option<f64> {
    let counter = counter?;
    // Warm once so buffer growth is excluded, as in steady state.
    op();
    let before = counter();
    for _ in 0..iters {
        op();
    }
    Some((counter() - before) as f64 / iters as f64)
}

/// The seed repository's `waterfill` (v0), preserved verbatim as the
/// performance baseline: two fresh `Vec`s per call, a stable (allocating)
/// sort, and cap/weight recomputed inside the comparator.  Benchmarked as
/// `waterfill/seed/*` so every future BENCH_*.json measures against the
/// same origin.
pub fn waterfill_seed(capacity: f64, requests: &[AllocRequest]) -> (Vec<f64>, f64, f64) {
    let n = requests.len();
    if n == 0 || capacity <= 0.0 {
        return (vec![0.0; n], 0.0, capacity.max(0.0));
    }
    let mut rates = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    let cap = |i: usize| {
        let c = requests[i].cap();
        if c.is_finite() && c > 0.0 {
            c
        } else {
            0.0
        }
    };
    let weight = |i: usize| {
        let w = requests[i].weight;
        if w.is_finite() && w > 0.0 {
            w
        } else {
            0.0
        }
    };
    order.retain(|&i| cap(i) > 0.0 && weight(i) > 0.0);
    order.sort_by(|&a, &b| {
        let ka = cap(a) / weight(a);
        let kb = cap(b) / weight(b);
        ka.partial_cmp(&kb)
            .expect("caps and weights sanitized to finite values")
            .then(a.cmp(&b))
    });
    let mut remaining = capacity;
    let mut weight_left: f64 = order.iter().map(|&i| weight(i)).sum();
    let mut start = 0;
    while start < order.len() && remaining > 1e-15 && weight_left > 0.0 {
        let level = remaining / weight_left;
        let i = order[start];
        let per_weight_cap = cap(i) / weight(i);
        if per_weight_cap <= level {
            rates[i] = cap(i);
            remaining -= cap(i);
            weight_left -= weight(i);
            start += 1;
        } else {
            for &j in &order[start..] {
                rates[j] = level * weight(j);
            }
            break;
        }
    }
    let total: f64 = rates.iter().sum();
    let idle = (capacity - total).max(0.0);
    (rates, total, idle)
}

/// The shared allocator-bench workload: random limits in `[0.05, 1.0)`,
/// demands in `[0.2, 1.0)`, unit weights.  Used by both this suite and the
/// criterion benches so the trajectory and criterion numbers measure the
/// same distribution.
pub fn requests(n: usize, seed: u64) -> Vec<AllocRequest> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| AllocRequest {
            limit: rng.range_f64(0.05, 1.0),
            demand: rng.range_f64(0.2, 1.0),
            weight: 1.0,
        })
        .collect()
}

struct Ticker {
    remaining: u64,
}

impl Simulation for Ticker {
    type Event = ();
    fn handle<T: Tracer>(&mut self, _ev: (), sched: &mut Scheduler<'_, (), T>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_secs(1), ());
        }
    }
}

/// Run the fixed allocator / engine / policy micro-suite.
///
/// `counter`, when provided, reports the process-wide heap-allocation count
/// (monotone); allocation rates are attributed to the allocator benches.
pub fn run_micro_suite(counter: Option<AllocCounter<'_>>) -> Vec<PerfResult> {
    let budget = Duration::from_millis(400);
    let mut out = Vec::new();
    let mut push = |name: &str, ns: f64, allocs: Option<f64>, events: Option<f64>| {
        out.push(PerfResult {
            name: name.to_string(),
            ns_per_op: ns,
            ops_per_sec: if ns > 0.0 { 1e9 / ns } else { f64::INFINITY },
            allocs_per_op: allocs,
            events_per_sec: events,
        });
    };

    // --- allocator: the seed (v0) implementation, the trajectory origin ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_seed(
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_seed(1.0, std::hint::black_box(&reqs)));
        });
        push(&format!("waterfill/seed/n{n}"), ns, allocs, None);
    }

    // --- allocator: cold (allocating wrapper, fresh sort every call) ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill(
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill(1.0, std::hint::black_box(&reqs)));
        });
        push(&format!("waterfill/cold/n{n}"), ns, allocs, None);
    }

    // --- allocator: warm scratch (order cache engaged, zero alloc) ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push(&format!("waterfill/warm/n{n}"), ns, allocs, None);
    }

    // --- allocator: O(n) early exit (under-subscribed node) ---
    {
        let mut reqs = requests(64, 42);
        for q in reqs.iter_mut() {
            q.limit = 0.01;
        }
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push("waterfill/early_exit/n64", ns, allocs, None);
    }

    // --- allocator: soft two-stage with active top-up ---
    {
        let mut reqs = requests(64, 42);
        for q in reqs.iter_mut() {
            q.limit = 0.004;
            q.demand = 0.4;
        }
        let mut scratch = WaterfillScratch::new();
        waterfill_soft_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_soft_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_soft_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push("waterfill/soft_warm/n64", ns, allocs, None);
    }

    // --- engine: raw event dispatch throughput (fused pop path) ---
    {
        const EVENTS: u64 = 200_000;
        let ns = time_ns(
            || {
                let mut engine: SimEngine<Ticker> = SimEngine::new();
                let mut sim = Ticker {
                    remaining: EVENTS - 1,
                };
                engine.prime(SimTime::ZERO, ());
                engine.run_to_completion(&mut sim);
                std::hint::black_box(engine.events_processed());
            },
            Duration::from_secs(2),
        );
        let events_per_sec = EVENTS as f64 / (ns / 1e9);
        push(
            "engine/dispatch_chain/200k",
            ns / EVENTS as f64,
            None,
            Some(events_per_sec),
        );
    }

    // --- policy: Algorithm 1 over a measured worker ---
    for n in [15usize, 100] {
        let mut rng = SimRng::new(7);
        let measures: Vec<GrowthMeasurement> = (0..n)
            .map(|i| GrowthMeasurement {
                id: ContainerId::from_raw(i as u32),
                progress: (rng.f64() > 0.1).then(|| rng.range_f64(0.0, 0.4)),
                avg_usage: flowcon_sim::ResourceVec::cpu(rng.range_f64(0.05, 1.0)),
                cpu_limit: rng.range_f64(0.05, 1.0),
            })
            .collect();
        let config = FlowConConfig::default();
        let mut lists = Lists::new();
        for m in &measures {
            lists.insert_new(m.id);
        }
        let ns = time_ns(
            || {
                std::hint::black_box(run_algorithm1(
                    &config,
                    &mut lists,
                    std::hint::black_box(&measures),
                ));
            },
            budget,
        );
        push(&format!("policy/algorithm1/n{n}"), ns, None, None);
    }

    // --- end-to-end: one FlowCon worker run (paper's fixed 3-job plan) ---
    {
        let node = NodeConfig::default().with_seed(0xF10C);
        let plan = WorkloadPlan::fixed_three();
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let result = Session::builder()
                    .node(node)
                    .plan(plan.clone())
                    .policy(FlowConPolicy::new(FlowConConfig::default()))
                    .build()
                    .run();
                events = result.events_processed;
                std::hint::black_box(result.output.completions.len());
            },
            Duration::from_secs(2),
        );
        let events_per_sec = events as f64 / (ns / 1e9);
        push("worker/flowcon_fixed_three", ns, None, Some(events_per_sec));
    }

    // --- cluster: sharded executor scale curve (2 jobs/worker, FlowCon) ---
    // Events/s is cluster-wide simulated throughput; allocs_per_op is heap
    // allocations **per worker** per run (scratch recycling keeps it flat
    // as the cluster grows).
    for workers in [8usize, 64, 256, 1024] {
        let (plan, run) = cluster_case(workers);
        let mut events = 0u64;
        let ns = time_ns(
            || {
                events = std::hint::black_box(run(&plan));
            },
            Duration::from_millis(800),
        );
        let events_per_sec = events as f64 / (ns / 1e9);
        // Expensive op: 3 measured iterations are enough for a per-worker
        // allocation figure (the signal is hundreds of allocs/worker).
        let allocs = allocs_per_op_iters(counter, 3, || {
            std::hint::black_box(run(&plan));
        })
        .map(|per_run| per_run / workers as f64);
        push(
            &format!("cluster/sharded/w{workers}"),
            ns,
            allocs,
            Some(events_per_sec),
        );
    }

    // --- cluster: headless scale (CompletionsOnly recorder) ---
    // The 10k-worker configuration: no sampling events scheduled, no label
    // clones, O(completions) memory.  allocs_per_op is per **worker** and
    // must stay within the ≲20 budget (also pinned by
    // `crates/cluster/tests/headless_allocs.rs`).
    for workers in [4096usize, 10240] {
        let plan = WorkloadPlan::random_n(workers * 2, CLUSTER_BENCH_PLAN_SEED);
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let session = |p: WorkloadPlan| {
            ClusterSession::builder()
                .nodes(workers, node)
                .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                .plan(p)
                .build()
        };
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let run = session(plan.clone()).run();
                events = run.events_processed();
                std::hint::black_box(run.completed_jobs());
            },
            Duration::from_millis(1200),
        );
        let events_per_sec = events as f64 / (ns / 1e9);
        // The timed op clones the plan (negligible wall-clock), but the
        // clone's 2×workers label allocations would swamp the per-worker
        // figure — pre-clone outside the counted window instead (one
        // warm-up + 3 measured iterations).
        let mut plans: Vec<WorkloadPlan> = (0..4).map(|_| plan.clone()).collect();
        let allocs = allocs_per_op_iters(counter, 3, || {
            let p = plans.pop().expect("4 plans pre-cloned");
            std::hint::black_box(session(p).run().completed_jobs());
        })
        .map(|per_run| per_run / workers as f64);
        push(
            &format!("cluster/headless/w{workers}"),
            ns,
            allocs,
            Some(events_per_sec),
        );
    }

    // --- cluster: dense-path density rows (the ISSUE-6 acceptance gate) ---
    // 10⁵ and 10⁶ workers through the dense arena path, one sample each: a
    // single run is seconds of wall clock at this scale, and the gate only
    // reads the machine-independent allocs/worker figure (`cluster/` rows
    // are exempt from the events/s check).  Wall time and allocations come
    // from the *same* run; the plan is built outside the measured window,
    // so the op is placement + simulation — the `repro profile` headline.
    // allocs/worker must stay under the dense budget of 10 (also pinned by
    // `crates/cluster/tests/headless_allocs.rs`).
    for workers in [100_000usize, 1_000_000] {
        let plan = WorkloadPlan::random_n(workers * 2, CLUSTER_BENCH_PLAN_SEED);
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let before = counter.map(|c| c());
        let start = Instant::now();
        let run = ClusterSession::builder()
            .nodes(workers, node)
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .plan(plan)
            .build()
            .run();
        let ns = start.elapsed().as_nanos() as f64;
        let events = run.events_processed();
        std::hint::black_box(run.completed_jobs());
        let allocs = match (before, counter) {
            (Some(b), Some(c)) => Some((c() - b) as f64 / workers as f64),
            _ => None,
        };
        push(
            &format!("cluster/headless/w{workers}"),
            ns,
            allocs,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- trace subsystem: parser + catalog binding ---
    // Parsing is zero-copy (rows borrow the document); binding recycles a
    // warm `BoundTrace` through `bind_into`, so the steady-state op — a
    // replay service rebinding arriving documents — allocates only the
    // transient row vector, not 600 label strings (was 651 allocs/op
    // before buffer reuse).  The committed 600-row bursty JSONL is the
    // realistic case; allocs/op is flat in document size by design.
    {
        use crate::experiments::trace as exp;
        use flowcon_workload::{BoundTrace, TraceCatalog};
        let doc = exp::BURSTY_LARGE_JSONL;
        let catalog = TraceCatalog::table1();
        let mut bound = BoundTrace { jobs: Vec::new() };
        exp::bind_default_into(doc, &catalog, &mut bound).unwrap(); // warm the buffers
        let ns = time_ns(
            || {
                exp::bind_default_into(std::hint::black_box(doc), &catalog, &mut bound).unwrap();
                std::hint::black_box(bound.len());
            },
            budget,
        );
        let allocs = allocs_per_op_iters(counter, 200, || {
            exp::bind_default_into(std::hint::black_box(doc), &catalog, &mut bound).unwrap();
            std::hint::black_box(bound.len());
        });
        push("trace/parse_bind/bursty600", ns, allocs, None);
    }

    // --- trace subsystem: end-to-end replay of the paper trace ---
    // The trace-driven twin of worker/flowcon_fixed_three: parse + bind
    // live outside the loop (measured above); the row times the replay.
    {
        use crate::experiments::trace as exp;
        let bound = exp::bind_default(exp::PAPER_FIXED_CSV).unwrap();
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let result = exp::replay_session(
                    &bound,
                    node,
                    PolicyKind::FlowCon(FlowConConfig::default()),
                );
                events = result.events_processed;
                std::hint::black_box(result.output.completions.len());
            },
            Duration::from_secs(2),
        );
        push(
            "trace/replay/paper_flowcon",
            ns,
            None,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- trace subsystem: synthetic generation + session run ---
    {
        use crate::experiments::trace as exp;
        let synthetic = exp::poisson_preset(0.1, 15, CLUSTER_BENCH_PLAN_SEED);
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let result = Session::builder()
                    .node(node)
                    .plan(&synthetic)
                    .policy(FlowConPolicy::new(FlowConConfig::default()))
                    .build()
                    .run();
                events = result.events_processed;
                std::hint::black_box(result.output.completions.len());
            },
            Duration::from_secs(2),
        );
        push(
            "trace/synthetic/poisson_n15",
            ns,
            None,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- cluster: 10k workers streamed off one trace (PlanSource) ---
    // The acceptance configuration of the trace subsystem: a 10240-worker
    // headless cluster pulling per-worker slices of one shared, unlabeled
    // arrival trace.  allocs_per_op is per worker and includes plan
    // construction (that is the point of a streaming source); the ≤ 20
    // budget is also pinned by `crates/cluster/tests/headless_allocs.rs`.
    {
        let workers = 10240usize;
        let plan = WorkloadPlan::random_n(workers * 2, CLUSTER_BENCH_PLAN_SEED);
        let source = TraceSource::new(
            flowcon_workload::BoundTrace::from_plan(plan).unlabeled(),
            workers,
        );
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let session = || {
            ClusterSession::builder()
                .nodes(workers, node)
                .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                .source(&source)
                .build()
        };
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let run = session().run();
                events = run.events_processed();
                std::hint::black_box(run.completed_jobs());
            },
            Duration::from_millis(1200),
        );
        let allocs = allocs_per_op_iters(counter, 3, || {
            std::hint::black_box(session().run().completed_jobs());
        })
        .map(|per_run| per_run / workers as f64);
        push(
            &format!("cluster/trace_source/w{workers}"),
            ns,
            allocs,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- open-loop: one worker session fed by a live Poisson stream ---
    // The open-loop twin of worker/flowcon_fixed_three: arrivals are
    // pulled from the stream and admitted mid-run (full recorder, 10 jobs
    // at 0.05/s), so the row times stream sampling + mid-run admission +
    // the drain, end to end.  Single-threaded, so events/s stays in the
    // relative throughput gate.
    {
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let source =
            SyntheticStreamSource::new(ArrivalProcess::poisson(0.05), CLUSTER_BENCH_PLAN_SEED);
        let horizon = Horizon::jobs(10);
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let result = Session::builder()
                    .node(node)
                    .policy(FlowConPolicy::new(FlowConConfig::default()))
                    .build()
                    .run_stream(source.stream_for(0), horizon);
                events = result.events_processed;
                std::hint::black_box(result.stream.completed);
            },
            Duration::from_secs(2),
        );
        push(
            "stream/session/poisson_j10",
            ns,
            None,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- open-loop: 1024-worker headless cluster (the acceptance row) ---
    // `repro stream --synthetic poisson --workers 1024 --until 3600
    // --headless` exactly: per-worker unbounded Poisson streams at the
    // CLI's default rate (0.0005/s ⇒ ~1.8 jobs/worker over the hour —
    // the same per-worker work as every other cluster row), admitted
    // mid-run on the sharded executor.  allocs_per_op is per worker and
    // must stay within the ≤ 20 headless budget (also pinned by
    // `crates/cluster/tests/headless_allocs.rs`); throughput scales with
    // core count, so the row is excluded from the relative events/s gate
    // like every `cluster/` row.
    {
        let workers = 1024usize;
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let source =
            SyntheticStreamSource::new(ArrivalProcess::poisson(0.0005), CLUSTER_BENCH_PLAN_SEED)
                .unlabeled();
        let horizon = Horizon::until(SimTime::from_secs(3600));
        let session = || {
            ClusterSession::builder()
                .nodes(workers, node)
                .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                .stream(&source, horizon)
                .build()
        };
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let run = session().run();
                events = run.events_processed();
                std::hint::black_box(run.completed_jobs());
            },
            Duration::from_millis(1200),
        );
        let allocs = allocs_per_op_iters(counter, 3, || {
            std::hint::black_box(session().run().completed_jobs());
        })
        .map(|per_run| per_run / workers as f64);
        push(
            &format!("stream/open_loop/w{workers}"),
            ns,
            allocs,
            Some(events as f64 / (ns / 1e9)),
        );
    }

    // --- sched: online cluster scheduler, all three disciplines ---
    // `repro sched --compare` at bench scale: 1024 jobs queued/placed/
    // preempted across a 64-node cluster by the global manager, one row
    // per discipline run back to back (the CLI's --compare shape).  The
    // op is admission + decision rounds + quantum-barrier advances, so
    // events/s tracks core count like every other sharded row — the
    // `sched/` prefix is excluded from the relative throughput gate and
    // the row is held by presence (and wall time in the json for eyeball
    // comparisons across disciplines).
    {
        let nodes = 64usize;
        let jobs = 1024usize;
        let plan = WorkloadPlan::random_n(jobs, CLUSTER_BENCH_PLAN_SEED);
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let mut completed = 0usize;
        let ns = time_ns(
            || {
                for kind in SchedPolicyKind::ALL {
                    let out = ClusterSession::builder()
                        .nodes(nodes, node)
                        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                        .plan(plan.clone())
                        .scheduler(kind)
                        .build()
                        .run();
                    completed = out.completed_jobs();
                    std::hint::black_box(out.decisions.len());
                }
            },
            Duration::from_millis(1200),
        );
        assert_eq!(completed, jobs, "sched bench must drain its workload");
        push(&format!("sched/compare/w{jobs}"), ns, None, None);
    }

    // --- trace: flight-recorder cost on a 256-node scheduler run ---
    // Two rows over the *same* FIFO sched run: `trace/noop/` is the
    // default `.run()` path (the `NoopTracer` monomorphization — i.e.
    // tracing compiled away, identical to a build without the tracer
    // layer), `trace/flight/` re-runs it through a preallocated
    // `FlightRecorder`.  Comparing the pair in the json is the standing
    // evidence that the abstraction is free and that recording costs only
    // its ring writes.  Sharded rounds make both rows core-count
    // dependent, so `trace/` is excluded from the relative events/s gate.
    {
        let nodes = 256usize;
        let jobs = 1024usize;
        let plan = WorkloadPlan::random_n(jobs, CLUSTER_BENCH_PLAN_SEED);
        let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
        let session = |p: WorkloadPlan| {
            ClusterSession::builder()
                .nodes(nodes, node)
                .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                .plan(p)
                .scheduler(SchedPolicyKind::Fifo)
        };
        let mut completed = 0usize;
        let ns = time_ns(
            || {
                let out = session(plan.clone()).build().run();
                completed = out.completed_jobs();
                std::hint::black_box(out.decisions.len());
            },
            Duration::from_millis(1200),
        );
        assert_eq!(completed, jobs, "noop-traced sched bench must drain");
        push("trace/noop/sched_w256", ns, None, None);

        let mut recorded = 0usize;
        let ns = time_ns(
            || {
                let (out, recorder) = session(plan.clone())
                    .tracer(FlightRecorder::with_capacity(1 << 16))
                    .build()
                    .run_traced();
                completed = out.completed_jobs();
                recorded = recorder.len();
                std::hint::black_box(out.decisions.len());
            },
            Duration::from_millis(1200),
        );
        assert_eq!(completed, jobs, "flight-traced sched bench must drain");
        assert!(recorded > 0, "flight recorder must capture the sched run");
        push("trace/flight/sched_w256", ns, None, None);
    }

    // --- metrics: warm quantile-sketch insert (the SLO hot path) ---
    // One op is one `QuantileSketch::insert` into a sketch whose bucket
    // range already covers the workload — the shape every worker sees on
    // the open-loop exit path after the first few jobs.  allocs_per_op is
    // zero-gated (`metrics/sketch/` is in `ZERO_ALLOC_PREFIXES`): a warm
    // insert is a log-key computation plus a counter bump, nothing else.
    {
        let mut rng = SimRng::new(CLUSTER_BENCH_PLAN_SEED);
        let values: Vec<f64> = (0..4096).map(|_| rng.range_f64(0.5, 5000.0)).collect();
        let mut sketch = flowcon_metrics::sketch::QuantileSketch::new();
        for &v in &values {
            sketch.insert(v); // warm the full bucket range
        }
        let mut i = 0usize;
        let mut op = move || {
            sketch.insert(values[i & 4095]);
            i = i.wrapping_add(1);
            std::hint::black_box(sketch.count());
        };
        let ns = time_ns(&mut op, budget);
        let allocs = allocs_per_op_iters(counter, 100_000, &mut op);
        push("metrics/sketch/insert", ns, allocs, None);
    }

    // --- frontier: capacity sweep, FIFO on a 256-node cluster ---
    // A bench-scale `repro frontier --policy fifo --workers 256`: four
    // geometric rungs bracketing the stability frontier, each a
    // deterministic 512-job scheduler run with tails recorded in the
    // sojourn/queue-wait sketches.  Sharded rounds inside each rung make
    // wall time core-count-dependent, so `frontier/` is excluded from the
    // relative events/s gate; the row is held by presence.
    {
        use crate::experiments::frontier;
        let config = frontier::FrontierConfig {
            nodes: 256,
            jobs: 512,
            ..frontier::FrontierConfig::default()
        };
        let rates = frontier::geometric_ladder(0.032, 4.0, 4);
        let mut rungs = 0usize;
        let ns = time_ns(
            || {
                let curve = frontier::sweep(SchedPolicyKind::Fifo, &config, &rates);
                rungs = curve.points.len();
                std::hint::black_box(curve.frontier_rate());
            },
            Duration::from_millis(1500),
        );
        assert!(rungs >= 2, "frontier bench ladder must measure ≥ 2 rungs");
        push("frontier/sweep/fifo_w256", ns, None, None);
    }

    // --- rt: real threads under the token-bucket governor ---
    // A tiny wall-clock run (two ~40 ms jobs, FlowCon reconfiguring every
    // 100 ms) so real-thread mode is regression-gated beside the sim rows.
    // events/s here is *completions per wall second* and depends on the
    // machine's clock, so `rt/` rows are presence-gated only (excluded
    // from the relative throughput check like `cluster/`).
    {
        use flowcon_rt::{RtConfig, RtJob, RtRuntime};
        use flowcon_sim::time::SimDuration as SimDur;
        let small_job = |label: &str, seed: u64| {
            let mut spec = flowcon_dl::ModelSpec::of(flowcon_dl::ModelId::Gru);
            spec.total_work = 0.04;
            spec.demand = 1.0;
            let mut rng = SimRng::new(seed);
            flowcon_dl::TrainingJob::with_label(spec, label, &mut rng)
        };
        let mut completed = 0usize;
        let ns = time_ns(
            || {
                let config = FlowConConfig {
                    initial_interval: SimDur::from_millis(100),
                    ..FlowConConfig::default()
                };
                let runtime =
                    RtRuntime::new(RtConfig::default(), Box::new(FlowConPolicy::new(config)));
                let summary = runtime.run(vec![
                    RtJob {
                        job: small_job("rt-a", 1),
                        arrival: Duration::ZERO,
                    },
                    RtJob {
                        job: small_job("rt-b", 2),
                        arrival: Duration::from_millis(10),
                    },
                ]);
                completed = summary.completions.len();
                std::hint::black_box(completed);
            },
            Duration::from_millis(600),
        );
        assert_eq!(completed, 2, "rt bench must complete both jobs");
        push(
            "rt/governor/flowcon_tiny",
            ns,
            None,
            Some(completed as f64 / (ns / 1e9)),
        );
    }

    out
}

/// Workload-plan seed of the `cluster/sharded/*` benches (`repro cluster`
/// defaults to the same, so any committed point can be reproduced by hand).
pub const CLUSTER_BENCH_PLAN_SEED: u64 = 0xC1A5;

/// Node seed of the `cluster/sharded/*` benches.
pub const CLUSTER_BENCH_NODE_SEED: u64 = 0xF10C;

/// The fixed cluster benchmark case: `workers` nodes, 2 jobs per worker,
/// FlowCon policy, round-robin placement, sharded execution.  Returns the
/// plan and a runner closure yielding total simulated events.
#[allow(clippy::type_complexity)]
fn cluster_case(workers: usize) -> (WorkloadPlan, impl Fn(&WorkloadPlan) -> u64) {
    let plan = WorkloadPlan::random_n(workers * 2, CLUSTER_BENCH_PLAN_SEED);
    let node = NodeConfig::default().with_seed(CLUSTER_BENCH_NODE_SEED);
    let run = move |plan: &WorkloadPlan| {
        let result = ClusterSession::builder()
            .nodes(workers, node)
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .plan(plan.clone())
            .recorder(|_| flowcon_core::recorder::FullRecorder::new())
            .build()
            .run();
        result.events_processed()
    };
    (plan, run)
}

/// Encode the suite results as the `BENCH_<date>.json` document.
pub fn to_json(results: &[PerfResult], date: &str, mode: &str) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.2}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"flowcon-bench/v1\",\n");
    s.push_str(&format!("  \"date\": \"{date}\",\n"));
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", r.name));
        s.push_str(&format!("\"ns_per_op\": {}, ", num(r.ns_per_op)));
        s.push_str(&format!("\"ops_per_sec\": {}, ", num(r.ops_per_sec)));
        s.push_str(&format!(
            "\"allocs_per_op\": {}, ",
            r.allocs_per_op.map_or("null".to_string(), num)
        ));
        s.push_str(&format!(
            "\"events_per_sec\": {}",
            r.events_per_sec.map_or("null".to_string(), num)
        ));
        s.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------------------
// The bench regression gate (`repro bench --check <baseline.json>`)
// ---------------------------------------------------------------------------

/// Benchmark-name prefixes whose warm path is contractually allocation-free
/// (see BENCHMARKS.md): any `allocs_per_op > 0` on these rows fails the
/// gate outright.
pub const ZERO_ALLOC_PREFIXES: [&str; 4] = [
    "waterfill/warm",
    "waterfill/early_exit",
    "waterfill/soft_warm",
    "metrics/sketch/",
];

/// Maximum tolerated events/s regression vs the baseline (25%): throughput
/// below `(1 - EVENTS_REGRESSION_TOLERANCE) × baseline` fails the gate.
pub const EVENTS_REGRESSION_TOLERANCE: f64 = 0.25;

/// Benchmark-name prefixes excluded from the **relative** events/s check:
/// cluster throughput (closed `cluster/` rows, the scheduler `sched/` row,
/// the open-loop `stream/open_loop/` row, and the `frontier/` capacity
/// sweep, whose rungs are scheduler runs) scales with the runner's
/// *core count* (the sharded executor uses `available_parallelism`
/// threads), so a baseline committed from an 8-core box would permanently
/// fail a 4-vCPU CI runner on unchanged code.  `trace/` joins the
/// list because its headline rows (`trace/noop/`, `trace/flight/`) are
/// sharded scheduler runs.  These rows stay gated by presence and —
/// where measured — by their machine-independent allocs/worker figure
/// (see [`ALLOCS_REGRESSION_TOLERANCE`]).
///
/// `rt/` rows are **no longer excluded**: since the push-based rewrite,
/// the tiny rt bench's wall time is set by token-bucket rates and timer
/// periods (the spin kernel measures elapsed wall time, not cycles), so
/// completions per wall second is a property of the coordination code,
/// not of the host's clock speed — a real regression there means the
/// governor or completion path got slower.
pub const THROUGHPUT_GATE_EXCLUDE_PREFIXES: [&str; 5] = [
    "cluster/",
    "sched/",
    "stream/open_loop/",
    "frontier/",
    "trace/",
];

/// Maximum tolerated relative growth of `allocs_per_op` vs the baseline
/// (25%), applied to every row measuring allocations in both runs (with a
/// 0.5-alloc absolute slack so tiny integer counts don't flake).  This is
/// what keeps the cluster rows honest on any hardware: allocation counts,
/// unlike throughput, don't depend on the runner's clock or core count —
/// if `WorkerScratch` recycling ever breaks, allocs/worker jumps from
/// ~10² to ~10⁴ and this wire trips.
pub const ALLOCS_REGRESSION_TOLERANCE: f64 = 0.25;

/// Parse a `BENCH_<date>.json` document produced by [`to_json`] back into
/// results.  Returns `None` when the document is not a flowcon-bench file.
///
/// The format is line-oriented by construction (one result object per
/// line), so this stays dependency-free: no JSON crate is vendored, and
/// the gate only ever reads files this suite wrote.
pub fn parse_results(json: &str) -> Option<Vec<PerfResult>> {
    if !json.contains("\"schema\": \"flowcon-bench/v1\"") {
        return None;
    }
    fn field_f64(line: &str, key: &str) -> Option<f64> {
        let start = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        let raw = rest[..end].trim();
        if raw == "null" {
            None
        } else {
            raw.parse().ok()
        }
    }
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_start) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_start + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let ns_per_op = field_f64(line, "ns_per_op").unwrap_or(f64::NAN);
        out.push(PerfResult {
            name: rest[..name_end].to_string(),
            ns_per_op,
            ops_per_sec: field_f64(line, "ops_per_sec").unwrap_or(if ns_per_op > 0.0 {
                1e9 / ns_per_op
            } else {
                0.0
            }),
            allocs_per_op: field_f64(line, "allocs_per_op"),
            events_per_sec: field_f64(line, "events_per_sec"),
        });
    }
    Some(out)
}

/// Compare a fresh suite run against a committed baseline.
///
/// Returns the list of violations (empty = gate passes):
///
/// * any current row matching [`ZERO_ALLOC_PREFIXES`] with
///   `allocs_per_op > 0` (the zero-allocation contract is absolute, not
///   relative to the baseline);
/// * any benchmark with `events_per_sec` in **both** runs whose current
///   throughput fell more than [`EVENTS_REGRESSION_TOLERANCE`] below the
///   baseline — except [`THROUGHPUT_GATE_EXCLUDE_PREFIXES`] rows, whose
///   throughput depends on the machine's core count;
/// * any benchmark with `allocs_per_op` in **both** runs that grew more
///   than [`ALLOCS_REGRESSION_TOLERANCE`] (+0.5 allocs absolute slack)
///   over the baseline — allocation counts are machine-independent, so
///   this wire also covers the `cluster/*` rows;
/// * any baseline benchmark that disappeared from the current suite (a
///   silently dropped benchmark would otherwise un-gate itself).
pub fn check_regression(current: &[PerfResult], baseline: &[PerfResult]) -> Vec<String> {
    let mut violations = Vec::new();

    for r in current {
        if ZERO_ALLOC_PREFIXES.iter().any(|p| r.name.starts_with(p)) {
            if let Some(allocs) = r.allocs_per_op {
                // The JSON rounds to 2 decimals; anything at or above 0.005
                // would print as > 0.00.
                if allocs >= 0.005 {
                    violations.push(format!(
                        "{}: warm path allocated ({allocs:.2} allocs/op, contract is 0)",
                        r.name
                    ));
                }
            }
        }
    }

    for b in baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            violations.push(format!("{}: benchmark missing from current run", b.name));
            continue;
        };
        if let (Some(base_allocs), Some(cur_allocs)) = (b.allocs_per_op, c.allocs_per_op) {
            let ceiling = base_allocs * (1.0 + ALLOCS_REGRESSION_TOLERANCE) + 0.5;
            if cur_allocs > ceiling {
                violations.push(format!(
                    "{}: allocs/op grew {:.1}% (baseline {:.2}, current {:.2}, ceiling {:.2})",
                    b.name,
                    100.0 * (cur_allocs / base_allocs.max(1e-9) - 1.0),
                    base_allocs,
                    cur_allocs,
                    ceiling
                ));
            }
        }
        if THROUGHPUT_GATE_EXCLUDE_PREFIXES
            .iter()
            .any(|p| b.name.starts_with(p))
        {
            continue;
        }
        if let (Some(base_eps), Some(cur_eps)) = (b.events_per_sec, c.events_per_sec) {
            let floor = base_eps * (1.0 - EVENTS_REGRESSION_TOLERANCE);
            if base_eps > 0.0 && cur_eps < floor {
                violations.push(format!(
                    "{}: events/s regressed {:.1}% (baseline {:.0}, current {:.0}, floor {:.0})",
                    b.name,
                    100.0 * (1.0 - cur_eps / base_eps),
                    base_eps,
                    cur_eps,
                    floor
                ));
            }
        }
    }

    violations
}

/// Days-since-epoch to `(year, month, day)` — Howard Hinnant's
/// civil-from-days algorithm.
pub fn civil_from_days(days: i64) -> (i64, i64, i64) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y, m, d)
}

/// Today's date (UTC) as `YYYY-MM-DD`, from the system clock.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let results = vec![PerfResult {
            name: "a/b".into(),
            ns_per_op: 12.5,
            ops_per_sec: 8e7,
            allocs_per_op: Some(0.0),
            events_per_sec: None,
        }];
        let json = to_json(&results, "2026-01-01", "release");
        assert!(json.contains("\"schema\": \"flowcon-bench/v1\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"allocs_per_op\": 0.00"));
        assert!(json.contains("\"events_per_sec\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn civil_date_conversion_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(59), (1970, 3, 1)); // non-leap Feb
        assert_eq!(civil_from_days(789), (1972, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_663), (2026, 7, 29));
    }

    fn result(name: &str, allocs: Option<f64>, events: Option<f64>) -> PerfResult {
        PerfResult {
            name: name.into(),
            ns_per_op: 100.0,
            ops_per_sec: 1e7,
            allocs_per_op: allocs,
            events_per_sec: events,
        }
    }

    #[test]
    fn json_round_trips_through_parse_results() {
        let results = vec![
            result("waterfill/warm/n64", Some(0.0), None),
            result("engine/dispatch_chain/200k", None, Some(2.3e8)),
            result("cluster/sharded/w1024", Some(312.5), Some(1.9e7)),
        ];
        let json = to_json(&results, "2026-07-29", "release");
        let parsed = parse_results(&json).expect("own format parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "waterfill/warm/n64");
        assert_eq!(parsed[0].allocs_per_op, Some(0.0));
        assert_eq!(parsed[0].events_per_sec, None);
        assert_eq!(parsed[1].allocs_per_op, None);
        assert!((parsed[1].events_per_sec.unwrap() - 2.3e8).abs() < 1.0);
        assert!((parsed[2].allocs_per_op.unwrap() - 312.5).abs() < 1e-9);
    }

    #[test]
    fn parse_results_rejects_foreign_documents() {
        assert!(parse_results("{\"results\": []}").is_none());
        assert!(parse_results("").is_none());
    }

    #[test]
    fn gate_passes_when_nothing_regressed() {
        let baseline = vec![
            result("worker/flowcon_fixed_three", None, Some(6e6)),
            result("waterfill/warm/n64", Some(0.0), None),
        ];
        let current = vec![
            result("worker/flowcon_fixed_three", None, Some(5.5e6)), // -8%: ok
            result("waterfill/warm/n64", Some(0.0), None),
            result("cluster/sharded/w8", Some(300.0), Some(1e7)), // new row: ok
        ];
        assert_eq!(check_regression(&current, &baseline), Vec::<String>::new());
    }

    #[test]
    fn gate_fails_on_warm_path_allocation() {
        let current = vec![result("waterfill/warm/n64", Some(1.0), None)];
        let violations = check_regression(&current, &[]);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("warm path allocated"),
            "{violations:?}"
        );
    }

    #[test]
    fn gate_fails_on_doctored_throughput_baseline() {
        // A baseline doctored to claim 10x the real throughput must trip
        // the 25% regression wire.
        let baseline = vec![result("engine/dispatch_chain/200k", None, Some(2.4e9))];
        let current = vec![result("engine/dispatch_chain/200k", None, Some(2.4e8))];
        let violations = check_regression(&current, &baseline);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].contains("events/s regressed"),
            "{violations:?}"
        );
        // Within-tolerance noise does not trip it.
        let ok = vec![result("engine/dispatch_chain/200k", None, Some(1.9e9))];
        assert!(check_regression(&ok, &baseline).is_empty());
    }

    #[test]
    fn gate_ignores_core_count_dependent_cluster_throughput() {
        // Cluster events/s scales with available_parallelism; a multi-core
        // baseline must not fail a fewer-core machine.  Presence is still
        // required, though.
        let baseline = vec![result("cluster/sharded/w1024", Some(113.0), Some(5.6e7))];
        let current = vec![result("cluster/sharded/w1024", Some(113.0), Some(6.7e6))];
        assert!(check_regression(&current, &baseline).is_empty());
        assert_eq!(check_regression(&[], &baseline).len(), 1);
        // The open-loop cluster row rides the same exclusion (it runs on
        // the sharded executor) — but stays gated on allocs/worker.
        let baseline = vec![result("stream/open_loop/w1024", Some(17.0), Some(6.8e6))];
        let slower = vec![result("stream/open_loop/w1024", Some(17.0), Some(9.1e5))];
        assert!(check_regression(&slower, &baseline).is_empty());
        let leaking = vec![result("stream/open_loop/w1024", Some(140.0), Some(6.8e6))];
        assert_eq!(check_regression(&leaking, &baseline).len(), 1);
        // The single-worker open-loop session row is NOT excluded.
        let baseline = vec![result("stream/session/poisson_j10", None, Some(6.0e6))];
        let regressed = vec![result("stream/session/poisson_j10", None, Some(3.0e6))];
        assert_eq!(check_regression(&regressed, &baseline).len(), 1);
    }

    #[test]
    fn gate_fails_when_cluster_allocs_per_worker_balloons() {
        // If WorkerScratch recycling breaks, allocs/worker jumps by orders
        // of magnitude — machine-independent, so gated on every runner.
        let baseline = vec![result("cluster/sharded/w1024", Some(113.0), Some(5.6e7))];
        let broken = vec![result("cluster/sharded/w1024", Some(12_000.0), Some(5.6e7))];
        let violations = check_regression(&broken, &baseline);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("allocs/op grew"), "{violations:?}");
        // 25% + 0.5 slack tolerates shard-count jitter.
        let ok = vec![result("cluster/sharded/w1024", Some(130.0), Some(5.6e7))];
        assert!(check_regression(&ok, &baseline).is_empty());
    }

    #[test]
    fn gate_fails_when_a_benchmark_disappears() {
        let baseline = vec![result("worker/flowcon_fixed_three", None, Some(6e6))];
        let violations = check_regression(&[], &baseline);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"), "{violations:?}");
    }

    #[test]
    fn micro_suite_smoke_runs_fast_subset() {
        // Full suite is seconds-long; just verify the timing helper works.
        let ns = time_ns(
            || {
                std::hint::black_box(1 + 1);
            },
            Duration::from_millis(10),
        );
        assert!((0.0..1e6).contains(&ns));
    }
}
