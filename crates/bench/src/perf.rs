//! The perf micro-suite behind `repro bench`.
//!
//! A fixed set of allocator / engine / policy microbenchmarks whose results
//! are written to a machine-readable `BENCH_<date>.json`, populating the
//! repository's performance trajectory.  Every future optimisation PR is
//! judged against the numbers this suite produced before it.
//!
//! The suite is deliberately self-contained (no criterion): plain
//! `Instant`-based sampling with median aggregation, so the `repro` binary
//! can run it anywhere the workspace builds.  Heap-allocation counts come
//! from a caller-provided counter (the `repro` binary installs a counting
//! global allocator; this library stays `forbid(unsafe_code)`).

use std::time::{Duration, Instant};

use flowcon_container::ContainerId;
use flowcon_core::algorithm::run_algorithm1;
use flowcon_core::config::{FlowConConfig, NodeConfig};
use flowcon_core::lists::Lists;
use flowcon_core::metric::GrowthMeasurement;
use flowcon_core::worker::run_flowcon;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::alloc::{
    waterfill, waterfill_into, waterfill_soft_into, AllocRequest, WaterfillScratch,
};
use flowcon_sim::engine::{Scheduler, SimEngine, Simulation};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::{SimDuration, SimTime};

/// One micro-benchmark's aggregated result.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Stable benchmark name (`group/case`).
    pub name: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second implied by the median (`1e9 / ns_per_op`).
    pub ops_per_sec: f64,
    /// Heap allocations per operation, when a counter was available.
    pub allocs_per_op: Option<f64>,
    /// Events per second, for engine-throughput benchmarks.
    pub events_per_sec: Option<f64>,
}

/// A heap-allocation counter provided by the binary (reads its counting
/// global allocator).
pub type AllocCounter<'a> = &'a dyn Fn() -> u64;

/// Median ns/op of `op`, with auto-calibrated batching.
fn time_ns<F: FnMut()>(mut op: F, budget: Duration) -> f64 {
    // Calibrate: grow per-sample iterations until a sample is measurable.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        if start.elapsed() >= Duration::from_millis(2) || iters >= 1 << 22 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut samples = Vec::new();
    let deadline = Instant::now() + budget;
    while samples.len() < 25 {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        if Instant::now() >= deadline && samples.len() >= 5 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Allocations per op of `op` over a fixed iteration count.
fn allocs_per_op<F: FnMut()>(counter: Option<AllocCounter<'_>>, mut op: F) -> Option<f64> {
    let counter = counter?;
    const ITERS: u64 = 1_000;
    // Warm once so buffer growth is excluded, as in steady state.
    op();
    let before = counter();
    for _ in 0..ITERS {
        op();
    }
    Some((counter() - before) as f64 / ITERS as f64)
}

/// The seed repository's `waterfill` (v0), preserved verbatim as the
/// performance baseline: two fresh `Vec`s per call, a stable (allocating)
/// sort, and cap/weight recomputed inside the comparator.  Benchmarked as
/// `waterfill/seed/*` so every future BENCH_*.json measures against the
/// same origin.
pub fn waterfill_seed(capacity: f64, requests: &[AllocRequest]) -> (Vec<f64>, f64, f64) {
    let n = requests.len();
    if n == 0 || capacity <= 0.0 {
        return (vec![0.0; n], 0.0, capacity.max(0.0));
    }
    let mut rates = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    let cap = |i: usize| {
        let c = requests[i].cap();
        if c.is_finite() && c > 0.0 {
            c
        } else {
            0.0
        }
    };
    let weight = |i: usize| {
        let w = requests[i].weight;
        if w.is_finite() && w > 0.0 {
            w
        } else {
            0.0
        }
    };
    order.retain(|&i| cap(i) > 0.0 && weight(i) > 0.0);
    order.sort_by(|&a, &b| {
        let ka = cap(a) / weight(a);
        let kb = cap(b) / weight(b);
        ka.partial_cmp(&kb)
            .expect("caps and weights sanitized to finite values")
            .then(a.cmp(&b))
    });
    let mut remaining = capacity;
    let mut weight_left: f64 = order.iter().map(|&i| weight(i)).sum();
    let mut start = 0;
    while start < order.len() && remaining > 1e-15 && weight_left > 0.0 {
        let level = remaining / weight_left;
        let i = order[start];
        let per_weight_cap = cap(i) / weight(i);
        if per_weight_cap <= level {
            rates[i] = cap(i);
            remaining -= cap(i);
            weight_left -= weight(i);
            start += 1;
        } else {
            for &j in &order[start..] {
                rates[j] = level * weight(j);
            }
            break;
        }
    }
    let total: f64 = rates.iter().sum();
    let idle = (capacity - total).max(0.0);
    (rates, total, idle)
}

/// The shared allocator-bench workload: random limits in `[0.05, 1.0)`,
/// demands in `[0.2, 1.0)`, unit weights.  Used by both this suite and the
/// criterion benches so the trajectory and criterion numbers measure the
/// same distribution.
pub fn requests(n: usize, seed: u64) -> Vec<AllocRequest> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| AllocRequest {
            limit: rng.range_f64(0.05, 1.0),
            demand: rng.range_f64(0.2, 1.0),
            weight: 1.0,
        })
        .collect()
}

struct Ticker {
    remaining: u64,
}

impl Simulation for Ticker {
    type Event = ();
    fn handle(&mut self, _ev: (), sched: &mut Scheduler<'_, ()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_secs(1), ());
        }
    }
}

/// Run the fixed allocator / engine / policy micro-suite.
///
/// `counter`, when provided, reports the process-wide heap-allocation count
/// (monotone); allocation rates are attributed to the allocator benches.
pub fn run_micro_suite(counter: Option<AllocCounter<'_>>) -> Vec<PerfResult> {
    let budget = Duration::from_millis(400);
    let mut out = Vec::new();
    let mut push = |name: &str, ns: f64, allocs: Option<f64>, events: Option<f64>| {
        out.push(PerfResult {
            name: name.to_string(),
            ns_per_op: ns,
            ops_per_sec: if ns > 0.0 { 1e9 / ns } else { f64::INFINITY },
            allocs_per_op: allocs,
            events_per_sec: events,
        });
    };

    // --- allocator: the seed (v0) implementation, the trajectory origin ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_seed(
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_seed(1.0, std::hint::black_box(&reqs)));
        });
        push(&format!("waterfill/seed/n{n}"), ns, allocs, None);
    }

    // --- allocator: cold (allocating wrapper, fresh sort every call) ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill(
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill(1.0, std::hint::black_box(&reqs)));
        });
        push(&format!("waterfill/cold/n{n}"), ns, allocs, None);
    }

    // --- allocator: warm scratch (order cache engaged, zero alloc) ---
    for n in [4usize, 16, 64, 256] {
        let reqs = requests(n, 42);
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push(&format!("waterfill/warm/n{n}"), ns, allocs, None);
    }

    // --- allocator: O(n) early exit (under-subscribed node) ---
    {
        let mut reqs = requests(64, 42);
        for q in reqs.iter_mut() {
            q.limit = 0.01;
        }
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push("waterfill/early_exit/n64", ns, allocs, None);
    }

    // --- allocator: soft two-stage with active top-up ---
    {
        let mut reqs = requests(64, 42);
        for q in reqs.iter_mut() {
            q.limit = 0.004;
            q.demand = 0.4;
        }
        let mut scratch = WaterfillScratch::new();
        waterfill_soft_into(&mut scratch, 1.0, &reqs);
        let ns = time_ns(
            || {
                std::hint::black_box(waterfill_soft_into(
                    &mut scratch,
                    std::hint::black_box(1.0),
                    std::hint::black_box(&reqs),
                ));
            },
            budget,
        );
        let allocs = allocs_per_op(counter, || {
            std::hint::black_box(waterfill_soft_into(
                &mut scratch,
                1.0,
                std::hint::black_box(&reqs),
            ));
        });
        push("waterfill/soft_warm/n64", ns, allocs, None);
    }

    // --- engine: raw event dispatch throughput (fused pop path) ---
    {
        const EVENTS: u64 = 200_000;
        let ns = time_ns(
            || {
                let mut engine: SimEngine<Ticker> = SimEngine::new();
                let mut sim = Ticker {
                    remaining: EVENTS - 1,
                };
                engine.prime(SimTime::ZERO, ());
                engine.run_to_completion(&mut sim);
                std::hint::black_box(engine.events_processed());
            },
            Duration::from_secs(2),
        );
        let events_per_sec = EVENTS as f64 / (ns / 1e9);
        push(
            "engine/dispatch_chain/200k",
            ns / EVENTS as f64,
            None,
            Some(events_per_sec),
        );
    }

    // --- policy: Algorithm 1 over a measured worker ---
    for n in [15usize, 100] {
        let mut rng = SimRng::new(7);
        let measures: Vec<GrowthMeasurement> = (0..n)
            .map(|i| GrowthMeasurement {
                id: ContainerId::from_raw(i as u64),
                progress: (rng.f64() > 0.1).then(|| rng.range_f64(0.0, 0.4)),
                avg_usage: flowcon_sim::ResourceVec::cpu(rng.range_f64(0.05, 1.0)),
                cpu_limit: rng.range_f64(0.05, 1.0),
            })
            .collect();
        let config = FlowConConfig::default();
        let mut lists = Lists::new();
        for m in &measures {
            lists.insert_new(m.id);
        }
        let ns = time_ns(
            || {
                std::hint::black_box(run_algorithm1(
                    &config,
                    &mut lists,
                    std::hint::black_box(&measures),
                ));
            },
            budget,
        );
        push(&format!("policy/algorithm1/n{n}"), ns, None, None);
    }

    // --- end-to-end: one FlowCon worker run (paper's fixed 3-job plan) ---
    {
        let node = NodeConfig::default().with_seed(0xF10C);
        let plan = WorkloadPlan::fixed_three();
        let mut events = 0u64;
        let ns = time_ns(
            || {
                let result = run_flowcon(node, &plan, FlowConConfig::default());
                events = result.events_processed;
                std::hint::black_box(result.summary.completions.len());
            },
            Duration::from_secs(2),
        );
        let events_per_sec = events as f64 / (ns / 1e9);
        push("worker/flowcon_fixed_three", ns, None, Some(events_per_sec));
    }

    out
}

/// Encode the suite results as the `BENCH_<date>.json` document.
pub fn to_json(results: &[PerfResult], date: &str, mode: &str) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.2}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"flowcon-bench/v1\",\n");
    s.push_str(&format!("  \"date\": \"{date}\",\n"));
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", r.name));
        s.push_str(&format!("\"ns_per_op\": {}, ", num(r.ns_per_op)));
        s.push_str(&format!("\"ops_per_sec\": {}, ", num(r.ops_per_sec)));
        s.push_str(&format!(
            "\"allocs_per_op\": {}, ",
            r.allocs_per_op.map_or("null".to_string(), num)
        ));
        s.push_str(&format!(
            "\"events_per_sec\": {}",
            r.events_per_sec.map_or("null".to_string(), num)
        ));
        s.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Days-since-epoch to `(year, month, day)` — Howard Hinnant's
/// civil-from-days algorithm.
pub fn civil_from_days(days: i64) -> (i64, i64, i64) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y, m, d)
}

/// Today's date (UTC) as `YYYY-MM-DD`, from the system clock.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let results = vec![PerfResult {
            name: "a/b".into(),
            ns_per_op: 12.5,
            ops_per_sec: 8e7,
            allocs_per_op: Some(0.0),
            events_per_sec: None,
        }];
        let json = to_json(&results, "2026-01-01", "release");
        assert!(json.contains("\"schema\": \"flowcon-bench/v1\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"allocs_per_op\": 0.00"));
        assert!(json.contains("\"events_per_sec\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn civil_date_conversion_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(59), (1970, 3, 1)); // non-leap Feb
        assert_eq!(civil_from_days(789), (1972, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_663), (2026, 7, 29));
    }

    #[test]
    fn micro_suite_smoke_runs_fast_subset() {
        // Full suite is seconds-long; just verify the timing helper works.
        let ns = time_ns(
            || {
                std::hint::black_box(1 + 1);
            },
            Duration::from_millis(10),
        );
        assert!((0.0..1e6).contains(&ns));
    }
}
