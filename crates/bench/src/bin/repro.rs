//! Regenerate every table and figure of the FlowCon paper.
//!
//! ```text
//! repro [experiment ...]
//! repro bench [--out FILE] [--check BASELINE.json]
//! repro cluster [--workers N] [--jobs J] [--seed S] [--headless]
//!               [--queue {heap,calendar}]
//! repro profile [--workers N] [--jobs J] [--seed S]
//!               [--queue {heap,calendar}]
//! repro trace --file PATH | --synthetic {poisson,bursty,diurnal}
//!             [--jobs N] [--rate R] [--seed S] [--workers N]
//!             [--policy {flowcon,na}] [--thin P] [--compress X] [--emit PATH]
//! repro stream --synthetic {poisson,bursty,diurnal} | --file PATH [--cycle]
//!              [--until SECS] [--jobs N] [--rate R] [--seed S] [--workers N]
//!              [--policy {flowcon,na}] [--headless] [--hints] [--trace-out PATH]
//! repro sched [--policy {fifo,gandiva,tiresias}] [--compare]
//!             [--workers N] [--jobs J] [--seed S] [--quantum SECS]
//!             [--slots K] [--sequential] [--trace-out PATH]
//! repro frontier [--policy {fifo,gandiva,tiresias}] [--compare]
//!                [--workers N] [--jobs J] [--seed S] [--quantum SECS]
//!                [--slots K] [--rates R1,R2,...] [--emit PATH]
//! repro timeline [--policy {fifo,gandiva,tiresias}] [--workers N] [--jobs J]
//!                [--seed S] [--quantum SECS] [--slots K] [--sequential]
//!                [--capacity N] [--out PATH] [--summary]
//! repro fidelity [--workers N] [--jobs J] [--seed S] [--dilation D]
//!                [--chaos {straggler,churn}] [--emit PATH]
//!
//! experiments:
//!   table1 fig1 fig3 fig4 fig5 fig6 table2 fig7 fig8 fig9 fig10 fig11
//!   fig12 fig13 fig14 fig15 fig16 fig17
//!   ablation-backoff ablation-beta ablation-kappa ablation-policies
//!   all (default)
//!
//! `repro bench` runs the fixed allocator/engine/policy/cluster micro-suite
//! and writes a machine-readable `BENCH_<date>.json` (see BENCHMARKS.md).
//! With `--check` it then compares the fresh results against the given
//! baseline file and exits non-zero on a regression (the CI perf gate).
//!
//! `repro cluster` runs one sharded cluster simulation (default 1024
//! workers, 2 jobs each) on at most `available_parallelism` OS threads and
//! prints the scale numbers.  With `--headless` the workers run a
//! `CompletionsOnly` recorder — no usage/limit traces, no label clones,
//! O(completions) memory — which is the supported way to drive 10k-worker
//! clusters (`repro cluster --workers 10240 --headless`).  Headless runs
//! go through the dense arena path; `--queue` picks its event-queue
//! implementation (binary heap or calendar buckets — bit-identical
//! results, different constants).
//!
//! `repro profile` is the density harness: one headless cluster run with
//! per-stage wall time (plan build, placement, simulation), allocations
//! per stage (this binary's counting allocator), allocs/worker for the
//! simulation stage, and peak RSS (`VmHWM` from `/proc/self/status`).
//! The ISSUE-6 acceptance numbers (`repro profile --workers 1000000`)
//! come from this subcommand.
//!
//! `repro trace` replays an arrival trace (`--file`, CSV or JSONL — see
//! the flowcon-workload crate docs for the format) or a synthetic arrival
//! process (`--synthetic`).  With `--workers 1` (default) it runs one
//! full-observability session and prints the completion table; with more
//! workers it streams per-worker plan slices off a `PlanSource` into a
//! headless cluster.  `--thin`/`--compress` subsample and time-compress a
//! trace file; `--emit PATH` writes the workload as a JSONL trace instead
//! of running it (how `traces/bursty_large.jsonl` was produced).
//!
//! `repro stream` runs **open-loop**: jobs keep arriving while the policy
//! reconfigures, pulled live from an unbounded per-worker `JobStream` — a
//! synthetic arrival process (`--synthetic`, per-worker `--rate` jobs/s)
//! or a trace file (`--file`; `--cycle` replays it cyclically, `--hints`
//! binds duration hints).  The run needs a horizon: `--until SECS`
//! (admission window in simulated seconds) and/or `--jobs N` (cap per
//! worker); admitted jobs always drain.  Output is the steady-state table:
//! arrival vs. completion rate, mean queue depth, utilization.  The
//! acceptance configuration `repro stream --synthetic poisson --workers
//! 1024 --until 3600 --headless` is committed as the
//! `stream/open_loop/w1024` bench row.
//!
//! `repro sched` runs the **online cluster scheduler**: one global manager
//! owns the seeded workload as a shared arrival stream and makes live
//! queueing/placement/preemption decisions at every `--quantum` barrier,
//! with per-node FlowCon sims underneath (`--slots` jobs per node).
//! `--policy` picks the discipline; `--compare` runs all three on the
//! same workload and prints the per-policy comparison table (makespan,
//! mean queueing delay, preemptions, migrations, utilization, and
//! p50/p95/p99 sojourn and queue-wait tails from the quantile sketches).
//! Runs are deterministic: same `--seed` ⇒ bit-identical decision log,
//! sharded or `--sequential`.
//!
//! `repro frontier` is the capacity-planning sweep: per policy, it feeds
//! the online scheduler a cluster-wide Poisson arrival stream and climbs
//! a geometric ladder of offered rates (`--rates` overrides it with an
//! explicit strictly-increasing list), recording p50/p95/p99 sojourn and
//! queue-wait at each rung and stopping early once the completion rate
//! saturates or the time-weighted queue depth diverges — the M/G/1 view
//! of the stability frontier.  The printed table is deterministic (CI
//! diffs two runs); `--emit PATH` additionally writes the curves as
//! JSONL for plotting.  The ladder brackets the frontier by bisection to
//! within 7% before reporting it.
//!
//! `repro timeline` runs one scheduler workload with a structured tracer
//! attached (the [`flowcon_sim::trace`] flight recorder, `--capacity`
//! events) and exports the merged timeline as Chrome trace-event JSON —
//! load it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! The JSON goes to stdout unless `--out PATH`; `--summary` adds a
//! per-kind event-count table (on stderr when the JSON owns stdout, so
//! the document stays pipeable).  Exports are deterministic: the same
//! seed produces byte-identical JSON, sharded or `--sequential`.
//! `repro sched --trace-out PATH` (single policy only) and `repro stream
//! --trace-out PATH` (single-worker full-observability runs) write the
//! same format alongside their normal tables.
//!
//! `repro fidelity` is the **differential sim↔rt harness**: the identical
//! seeded workload runs through the fluid simulation (reference) and the
//! `flowcon-rt` wall-clock backend (candidate, real OS threads behind the
//! same `Session` builder surface), per-job records are aligned by label,
//! and the divergence is reported — completion-set equality, completion-
//! order edit distance, the per-job sojourn-ratio distribution
//! (p50/p95/p99/min/max through a quantile sketch), and the makespan
//! ratio.  `--workers N` is the node capacity in cores, `--dilation D`
//! compresses D sim-seconds into each wall second on the rt side.
//! `--chaos` makes a scenario *physically real* on the rt side only
//! (straggler = one governor throttled to 25%, churn = a container thread
//! killed and relaunched): the run must still complete every job (exit 0)
//! while the report shows nonzero divergence.  `--emit PATH` writes the
//! report as JSONL.  Exits 2 when divergence breaches tolerance (or the
//! chaos-surviving completion-set invariant fails).
//! ```
//!
//! Output: paper-style tables and ASCII charts on stdout; CSV artifacts
//! under `target/experiments/`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flowcon_bench::experiments::{
    ablation, default_node, fig1, fixed, random, scale, DEFAULT_SEED,
};
use flowcon_bench::perf;
use flowcon_bench::report::{completion_table, section, write_csv};
use flowcon_dl::models::{ModelSpec, TABLE1_MODELS};
use flowcon_metrics::chart::{bar_chart, line_chart};
use flowcon_metrics::export::{completions_csv, series_csv, text_table, to_csv};
use flowcon_metrics::summary::RunSummary;

/// Counting allocator so `repro bench` can report allocs/op.
///
/// Counting is off by default and enabled only by the `bench` subcommand,
/// so figure-reproduction runs (parallel, allocation-heavy) don't pay a
/// contended atomic per allocation for a counter nobody reads.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

fn count_if_enabled() {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_enabled();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_enabled();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_enabled();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("cluster") {
        run_cluster(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        run_profile(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        run_trace(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("stream") {
        run_stream(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("sched") {
        run_sched_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("frontier") {
        run_frontier(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("timeline") {
        run_timeline(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("fidelity") {
        run_fidelity(&args[1..]);
        return;
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        // fig7/fig10/fig13/fig15 each also print their paired figure.
        vec![
            "table1",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "table2",
            "fig7",
            "fig9",
            "fig10",
            "fig12",
            "fig13",
            "fig15",
            "fig17",
            "ablation-backoff",
            "ablation-beta",
            "ablation-kappa",
            "ablation-policies",
            "ablation-resource",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    for exp in wanted {
        match exp {
            "table1" => table1(),
            "fig1" => run_fig1(),
            "fig3" => fixed_sweep(
                "Fig. 3 (alpha=5%, itval sweep)",
                fixed::fig3(default_node()),
                "fig3",
            ),
            "fig4" => fixed_sweep(
                "Fig. 4 (alpha=10%, itval sweep)",
                fixed::fig4(default_node()),
                "fig4",
            ),
            "fig5" => fixed_sweep(
                "Fig. 5 (itval=20, alpha sweep)",
                fixed::fig5(default_node()),
                "fig5",
            ),
            "fig6" => fixed_sweep(
                "Fig. 6 (itval=30, alpha sweep)",
                fixed::fig6(default_node()),
                "fig6",
            ),
            "table2" => table2(),
            "fig7" | "fig8" => fig7_fig8(),
            "fig9" => fig9(),
            "fig10" | "fig11" => fig10_fig11(),
            "fig12" => fig12_fig15_fig16(false),
            "fig15" | "fig16" => fig12_fig15_fig16(true),
            "fig13" | "fig14" => fig13_fig14(),
            "fig17" => fig17(),
            "ablation-backoff" => ablation_backoff(),
            "ablation-beta" => ablation_beta(),
            "ablation-kappa" => ablation_kappa(),
            "ablation-policies" => ablation_policies(),
            "ablation-resource" => ablation_resource(),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

/// Value of `--<name> VALUE` in `args`, if the flag is present.
///
/// A flag with a missing value — end of argv, or another `--flag` in the
/// value position — is a hard usage error: silently swallowing it would
/// e.g. let a CI script run `bench --check` with the baseline forgotten
/// and never gate anything.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("{name} requires a value");
            std::process::exit(2);
        }
    }
}

/// `repro bench [--out FILE] [--check BASELINE]`: run the micro-suite,
/// print a table, write the machine-readable trajectory file, and — with
/// `--check` — gate the fresh numbers against a committed baseline.
fn run_bench(args: &[String]) {
    let out_path =
        flag_value(args, "--out").unwrap_or_else(|| format!("BENCH_{}.json", perf::today_utc()));
    // Resolve (and stat) the baseline up front: a bad gate invocation must
    // fail before the suite spends its ~15 s, not after.
    let check_path = flag_value(args, "--check");
    if let Some(p) = &check_path {
        if !std::path::Path::new(p).is_file() {
            eprintln!("cannot read baseline {p}: not a file");
            std::process::exit(2);
        }
    }
    let mode = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };

    section(&format!("Perf micro-suite ({mode})"));
    COUNTING.store(true, Ordering::Relaxed);
    let counter = || ALLOCATIONS.load(Ordering::Relaxed);
    let results = perf::run_micro_suite(Some(&counter));
    COUNTING.store(false, Ordering::Relaxed);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}", r.ns_per_op),
                r.allocs_per_op.map_or("-".into(), |a| format!("{a:.2}")),
                r.events_per_sec.map_or("-".into(), |e| format!("{e:.0}")),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(&["benchmark", "ns/op", "allocs/op", "events/s"], &rows)
    );

    // Headline ratios at n=64: warm scratch vs the seed (v0) allocator and
    // vs today's cold allocating wrapper.
    let ns_of = |name: &str| results.iter().find(|r| r.name == name).map(|r| r.ns_per_op);
    if let (Some(seed), Some(cold), Some(warm)) = (
        ns_of("waterfill/seed/n64"),
        ns_of("waterfill/cold/n64"),
        ns_of("waterfill/warm/n64"),
    ) {
        if warm > 0.0 {
            println!(
                "waterfill n=64: warm scratch is {:.2}x faster than the seed (v0) and {:.2}x faster than the cold path",
                seed / warm,
                cold / warm
            );
        }
    }

    let json = perf::to_json(&results, &perf::today_utc(), mode);
    match flowcon_metrics::export::write_artifact(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    if let Some(baseline_path) = check_path {
        check_gate(&results, &baseline_path, mode);
    }
}

/// The CI perf gate: compare fresh results against `baseline_path`, print
/// the verdict, and exit non-zero on any violation.
fn check_gate(results: &[perf::PerfResult], baseline_path: &str, mode: &str) {
    section(&format!("Bench regression gate vs {baseline_path}"));
    if mode != "release" {
        eprintln!("warning: gating {mode} numbers against a committed (release) baseline");
    }
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let Some(baseline) = perf::parse_results(&doc) else {
        eprintln!("{baseline_path} is not a flowcon-bench/v1 document");
        std::process::exit(2);
    };
    let violations = perf::check_regression(results, &baseline);
    if violations.is_empty() {
        println!(
            "gate passed: no warm-path allocations, no events/s regression > {:.0}%, no allocs/op growth > {:.0}% vs {} baseline rows",
            100.0 * perf::EVENTS_REGRESSION_TOLERANCE,
            100.0 * perf::ALLOCS_REGRESSION_TOLERANCE,
            baseline.len()
        );
    } else {
        for v in &violations {
            eprintln!("REGRESSION: {v}");
        }
        eprintln!("bench gate FAILED with {} violation(s)", violations.len());
        std::process::exit(1);
    }
}

/// `repro cluster [--workers N] [--jobs J] [--seed S] [--headless]`: one
/// sharded cluster run — N workers on at most `available_parallelism` OS
/// threads.
///
/// Defaults (2 jobs/worker, plan seed [`perf::CLUSTER_BENCH_PLAN_SEED`],
/// node seed [`perf::CLUSTER_BENCH_NODE_SEED`]) replicate the
/// `cluster/sharded/w<N>` (or, with `--headless`, `cluster/headless/w<N>`)
/// bench case exactly, so any committed `BENCH_*.json` point can be
/// reproduced by hand; `--seed` reseeds the workload plan.
fn run_cluster(args: &[String]) {
    use flowcon_cluster::{executor, ClusterSession, PolicyKind};
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_core::recorder::FullRecorder;
    use flowcon_dl::workload::WorkloadPlan;
    use flowcon_metrics::summary::makespan_over;

    let parse_num = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers").unwrap_or(1024) as usize;
    let jobs = parse_num("--jobs").unwrap_or(2 * workers as u64) as usize;
    let seed = parse_num("--seed").unwrap_or(perf::CLUSTER_BENCH_PLAN_SEED);
    let headless = args.iter().any(|a| a == "--headless");
    // A zero is almost always a typo'd or miscomputed script variable;
    // running an empty cluster "successfully" would hide it.
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1: an empty plan simulates nothing");
        std::process::exit(2);
    }
    let queue = parse_queue_kind(args, headless);

    let shards = executor::shard_count(workers);
    let mode = if headless { "headless" } else { "full" };
    section(&format!(
        "Sharded cluster ({mode}): {workers} workers, {jobs} jobs, {shards} OS threads"
    ));
    let plan = WorkloadPlan::random_n(jobs, seed);
    let node = NodeConfig::default().with_seed(perf::CLUSTER_BENCH_NODE_SEED);
    let session = || {
        ClusterSession::builder()
            .nodes(workers, node)
            .policy(PolicyKind::FlowCon(FlowConConfig::default()))
            .plan(plan.clone())
    };
    let start = std::time::Instant::now();
    // (placed, completed, makespan, events)
    let (placed, completed, makespan, events) = if headless {
        let run = session().queue(queue).build().run();
        (
            run.placements.len(),
            run.completed_jobs(),
            run.makespan_secs(),
            run.events_processed(),
        )
    } else {
        let result = session().recorder(|_| FullRecorder::new()).build().run();
        let events = result.events_processed();
        let completed = result
            .workers
            .iter()
            .map(|w| w.output.completions.len())
            .sum::<usize>();
        let makespan = makespan_over(result.workers.iter().map(|w| w.output.makespan_secs()));
        (result.placements.len(), completed, makespan, events)
    };
    let wall = start.elapsed();

    let rows = vec![
        vec!["workers".to_string(), workers.to_string()],
        vec![
            "recorder".to_string(),
            if headless {
                "CompletionsOnly"
            } else {
                "FullRecorder"
            }
            .to_string(),
        ],
        vec![
            "event queue".to_string(),
            if headless {
                format!("{queue:?}").to_lowercase()
            } else {
                "-".into()
            },
        ],
        vec!["OS threads (shards)".to_string(), shards.to_string()],
        vec!["jobs placed".to_string(), placed.to_string()],
        vec!["jobs completed".to_string(), completed.to_string()],
        vec![
            "cluster makespan (sim s)".to_string(),
            format!("{makespan:.1}"),
        ],
        vec!["events processed".to_string(), events.to_string()],
        vec![
            "wall time (ms)".to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ],
        vec![
            "events/s (wall)".to_string(),
            format!("{:.0}", events as f64 / wall.as_secs_f64()),
        ],
    ];
    print!("{}", text_table(&["metric", "value"], &rows));
}

/// Parse `--queue {heap,calendar}` (default heap).  The flag selects the
/// dense path's event-queue implementation, so it only makes sense on a
/// headless run — silently ignoring it elsewhere would misreport what was
/// measured.
fn parse_queue_kind(args: &[String], headless: bool) -> flowcon_cluster::QueueKind {
    use flowcon_cluster::QueueKind;
    if !headless && args.iter().any(|a| a == "--queue") {
        eprintln!("--queue only applies to --headless runs (the dense path owns the event queue)");
        std::process::exit(2);
    }
    match flag_value(args, "--queue") {
        None => QueueKind::default(),
        Some(v) => QueueKind::parse(&v).unwrap_or_else(|| {
            eprintln!("--queue wants heap or calendar, got {v}");
            std::process::exit(2);
        }),
    }
}

/// Peak resident set size in kiB (`VmHWM` from `/proc/self/status`), or
/// `None` off Linux.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `repro profile [--workers N] [--jobs J] [--seed S] [--queue Q]`: the
/// density harness — one headless cluster run clocked per stage (plan
/// build, placement, simulation), with allocation counts from the counting
/// allocator and peak RSS from the kernel.
///
/// Defaults match `repro cluster --headless` (2 jobs/worker, the committed
/// bench seeds) at 100k workers, so the printed numbers line up with the
/// `cluster/headless/w100000` bench row.
fn run_profile(args: &[String]) {
    use flowcon_cluster::{executor, ClusterSession, PolicyKind};
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_dl::workload::WorkloadPlan;
    use std::time::Instant;

    let parse_num = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers").unwrap_or(100_000) as usize;
    let jobs = parse_num("--jobs").unwrap_or(2 * workers as u64) as usize;
    let seed = parse_num("--seed").unwrap_or(perf::CLUSTER_BENCH_PLAN_SEED);
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1: an empty plan simulates nothing");
        std::process::exit(2);
    }
    let queue = parse_queue_kind(args, true);

    let shards = executor::shard_count(workers);
    section(&format!(
        "Density profile: {workers} workers, {jobs} jobs, {shards} OS threads, {} queue",
        format!("{queue:?}").to_lowercase()
    ));

    COUNTING.store(true, Ordering::Relaxed);
    let allocs = || ALLOCATIONS.load(Ordering::Relaxed);

    let (a0, t0) = (allocs(), Instant::now());
    let plan = WorkloadPlan::random_n(jobs, seed);
    let (plan_secs, plan_allocs) = (t0.elapsed().as_secs_f64(), allocs() - a0);

    // Session construction (the per-worker NodeConfig vector) is part of
    // standing the cluster up, so it bills the placement stage.
    let (a1, t1) = (allocs(), Instant::now());
    let node = NodeConfig::default().with_seed(perf::CLUSTER_BENCH_NODE_SEED);
    let placed = ClusterSession::builder()
        .nodes(workers, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(plan)
        .build()
        .place();
    let (place_secs, place_allocs) = (t1.elapsed().as_secs_f64(), allocs() - a1);

    let (a2, t2) = (allocs(), Instant::now());
    let run = placed.run(queue);
    let (sim_secs, sim_allocs) = (t2.elapsed().as_secs_f64(), allocs() - a2);
    COUNTING.store(false, Ordering::Relaxed);

    let per_worker = |n: u64| n as f64 / workers as f64;
    let stage_rows: Vec<Vec<String>> = [
        ("plan build", plan_secs, plan_allocs),
        ("placement", place_secs, place_allocs),
        ("simulation", sim_secs, sim_allocs),
        (
            "total",
            plan_secs + place_secs + sim_secs,
            plan_allocs + place_allocs + sim_allocs,
        ),
    ]
    .iter()
    .map(|&(name, secs, a)| {
        vec![
            name.to_string(),
            format!("{:.1}", secs * 1e3),
            a.to_string(),
            format!("{:.2}", per_worker(a)),
        ]
    })
    .collect();
    print!(
        "{}",
        text_table(
            &["stage", "time (ms)", "allocs", "allocs/worker"],
            &stage_rows
        )
    );

    let events = run.events_processed();
    let rows = vec![
        vec![
            "jobs completed".to_string(),
            run.completed_jobs().to_string(),
        ],
        vec!["events processed".to_string(), events.to_string()],
        vec![
            "events/s (wall)".to_string(),
            format!("{:.0}", events as f64 / sim_secs),
        ],
        vec![
            // The ISSUE-6 acceptance number: the marginal cluster cost —
            // placement + simulation, the plan is the caller's input.
            "allocs/worker (place + simulate)".to_string(),
            format!("{:.2}", per_worker(place_allocs + sim_allocs)),
        ],
        vec![
            "peak RSS (MiB)".to_string(),
            peak_rss_kib().map_or("-".into(), |kib| format!("{:.1}", kib as f64 / 1024.0)),
        ],
    ];
    print!("{}", text_table(&["metric", "value"], &rows));
}

/// `repro trace`: replay an arrival-trace file or a synthetic arrival
/// process end to end (see the module docs for the flags).
fn run_trace(args: &[String]) {
    use flowcon_bench::experiments::trace as exp;
    use flowcon_cluster::PolicyKind;
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_workload::{ArrivalTrace, BoundTrace, SyntheticSource, TraceCatalog, TraceSource};

    let file = flag_value(args, "--file");
    let synthetic = flag_value(args, "--synthetic");
    if file.is_some() == synthetic.is_some() {
        eprintln!(
            "trace wants exactly one of --file PATH or --synthetic {{poisson,bursty,diurnal}}"
        );
        std::process::exit(2);
    }
    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let parse_f64 = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 1) as usize;
    let seed = parse_num("--seed", flowcon_bench::experiments::DEFAULT_SEED);
    let emit = flag_value(args, "--emit");
    let policy = match flag_value(args, "--policy").as_deref() {
        None | Some("flowcon") => PolicyKind::FlowCon(FlowConConfig::default()),
        Some("na") => PolicyKind::Baseline,
        Some(other) => {
            eprintln!("--policy wants flowcon or na, got {other}");
            std::process::exit(2);
        }
    };
    // Mode-specific flags are hard errors in the wrong mode: silently
    // ignoring `--compress` would report results for the wrong workload.
    let only_with = |flag: &str, mode: &str, allowed: bool| {
        if !allowed && args.iter().any(|a| a == flag) {
            eprintln!("{flag} only applies to {mode} workloads");
            std::process::exit(2);
        }
    };
    only_with("--thin", "--file", file.is_some());
    only_with("--compress", "--file", file.is_some());
    only_with("--jobs", "--synthetic", synthetic.is_some());
    only_with("--rate", "--synthetic", synthetic.is_some());
    // Cluster replays are headless: bind without labels so streaming a
    // 10k-worker cluster allocates no label strings.  Emission always
    // keeps labels — a transformed trace must not lose its job ids.
    let labeled = workers == 1 || emit.is_some();

    // Resolve the workload: a bound trace (file) or a synthetic template
    // (materialized only where a whole plan is actually needed).
    enum Load {
        File(BoundTrace),
        Synthetic(flowcon_workload::Synthetic),
    }
    let (what, load) = if let Some(path) = &file {
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read trace {path}: {e}");
            std::process::exit(2);
        });
        let trace = match ArrivalTrace::parse(&doc) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        let mut catalog = TraceCatalog::table1();
        if let Some(keep) = parse_f64("--thin") {
            catalog = catalog.thin(keep, seed);
        }
        if let Some(factor) = parse_f64("--compress") {
            catalog = catalog.compress(factor);
        }
        if !labeled {
            catalog = catalog.unlabeled();
        }
        match catalog.bind(&trace) {
            Ok(b) => (format!("trace {path}"), Load::File(b)),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let jobs = parse_num("--jobs", 50) as usize;
        let rate = parse_f64("--rate").unwrap_or(0.1);
        let name = synthetic.as_deref().expect("checked above");
        let Some(template) = exp::preset(name, rate, jobs, seed) else {
            eprintln!("--synthetic wants poisson, bursty or diurnal, got {name}");
            std::process::exit(2);
        };
        (
            format!("synthetic {name} (rate {rate}/s)"),
            Load::Synthetic(template),
        )
    };

    if let Some(path) = emit {
        let bound = match &load {
            Load::File(bound) => bound.clone(),
            Load::Synthetic(template) => BoundTrace::from_plan(template.plan()),
        };
        match flowcon_metrics::export::write_artifact(&path, &bound.to_jsonl()) {
            Ok(()) => println!("wrote {} arrivals to {path}", bound.len()),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let node = NodeConfig::default().with_seed(seed);
    if workers == 1 {
        let bound = match &load {
            Load::File(bound) => bound.clone(),
            Load::Synthetic(template) => BoundTrace::from_plan(template.plan()),
        };
        section(&format!(
            "Trace replay: {what}, 1 worker, {} jobs",
            bound.len()
        ));
        let start = std::time::Instant::now();
        let result = exp::replay_session(&bound, node, policy);
        let wall = start.elapsed();
        let labels: Vec<String> = result
            .output
            .completions
            .iter()
            .map(|c| c.label.clone())
            .collect();
        print!("{}", completion_table(&[&result.output], &labels));
        println!(
            "makespan {:.1}s, {} events, wall {:.1} ms",
            result.output.makespan_secs(),
            result.events_processed,
            wall.as_secs_f64() * 1e3
        );
    } else {
        section(&format!(
            "Trace replay: {what}, {workers}-worker headless cluster"
        ));
        let start = std::time::Instant::now();
        let run = match load {
            Load::File(bound) => {
                let source = TraceSource::new(bound, workers);
                exp::replay_cluster(&source, workers, node, policy)
            }
            Load::Synthetic(template) => {
                // Synthetic cluster mode streams independent per-worker
                // plans: --jobs becomes jobs per worker.
                let source = SyntheticSource::new(template.process, template.jobs, template.seed)
                    .unlabeled();
                exp::replay_cluster(&source, workers, node, policy)
            }
        };
        let wall = start.elapsed();
        let rows = vec![
            vec!["workers".to_string(), workers.to_string()],
            vec![
                "jobs completed".to_string(),
                run.completed_jobs().to_string(),
            ],
            vec![
                "cluster makespan (sim s)".to_string(),
                format!("{:.1}", run.makespan_secs()),
            ],
            vec![
                "mean completion (sim s)".to_string(),
                run.mean_completion_secs()
                    .map_or("-".into(), |m| format!("{m:.1}")),
            ],
            vec![
                "events processed".to_string(),
                run.events_processed().to_string(),
            ],
            vec![
                "wall time (ms)".to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
            ],
        ];
        print!("{}", text_table(&["metric", "value"], &rows));
    }
}

/// `repro sched [--policy P] [--compare] ...`: run the online cluster
/// scheduler over a seeded random workload and print the per-policy
/// outcome table (see the module docs for the flags).
fn run_sched_cmd(args: &[String]) {
    use flowcon_cluster::{ClusterSession, PolicyKind, SchedPolicyKind};
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_dl::workload::WorkloadPlan;
    use flowcon_sim::time::SimDuration;

    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 16) as usize;
    let jobs = parse_num("--jobs", 4 * workers as u64) as usize;
    let seed = parse_num("--seed", perf::CLUSTER_BENCH_PLAN_SEED);
    let slots = parse_num("--slots", 2) as usize;
    let quantum = flag_value(args, "--quantum").map_or(10.0, |v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--quantum wants seconds, got {v}");
            std::process::exit(2);
        })
    });
    let sequential = args.iter().any(|a| a == "--sequential");
    let compare = args.iter().any(|a| a == "--compare");
    let trace_out = flag_value(args, "--trace-out");
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1: an empty workload schedules nothing");
        std::process::exit(2);
    }
    if quantum <= 0.0 {
        eprintln!("--quantum must be positive");
        std::process::exit(2);
    }
    if slots == 0 {
        eprintln!("--slots must be at least 1: a node needs a job slot");
        std::process::exit(2);
    }
    if trace_out.is_some() && compare {
        eprintln!("--trace-out records one run's timeline; drop --compare or pick one --policy");
        std::process::exit(2);
    }
    let kinds: Vec<SchedPolicyKind> = if compare {
        SchedPolicyKind::ALL.to_vec()
    } else {
        let name = flag_value(args, "--policy").unwrap_or_else(|| "fifo".into());
        match SchedPolicyKind::parse(&name) {
            Some(kind) => vec![kind],
            None => {
                eprintln!("--policy wants fifo, gandiva or tiresias, got {name}");
                std::process::exit(2);
            }
        }
    };

    section(&format!(
        "Online cluster scheduler: {workers} nodes x {slots} slots, {jobs} jobs, {quantum:.0}s quantum"
    ));
    let plan = WorkloadPlan::random_n(jobs, seed);
    let node = NodeConfig::default().with_seed(perf::CLUSTER_BENCH_NODE_SEED);
    let rows: Vec<Vec<String>> = kinds
        .iter()
        .map(|&kind| {
            let builder = ClusterSession::builder()
                .nodes(workers, node)
                .policy(PolicyKind::FlowCon(FlowConConfig::default()))
                .plan(plan.clone())
                .scheduler(kind)
                .quantum(SimDuration::from_secs_f64(quantum))
                .slots_per_node(slots)
                .sequential(sequential);
            let out = match &trace_out {
                None => builder.build().run(),
                Some(path) => {
                    use flowcon_metrics::tracelog;
                    use flowcon_sim::trace::{FlightRecorder, DEFAULT_CAPACITY};
                    let (out, recorder) = builder
                        .tracer(FlightRecorder::with_capacity(DEFAULT_CAPACITY))
                        .build()
                        .run_traced();
                    let events = recorder.events();
                    let doc = tracelog::chrome_trace_json(&events, recorder.dropped());
                    if let Err(e) = flowcon_metrics::export::write_artifact(path, &doc) {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    println!(
                        "wrote {} trace events ({} dropped) to {path}",
                        events.len(),
                        recorder.dropped()
                    );
                    out
                }
            };
            assert_eq!(
                out.completed_jobs(),
                out.submitted,
                "{} lost jobs",
                out.policy
            );
            // Every column is simulated-time derived, so the table is
            // bit-identical across runs — the determinism the acceptance
            // check diffs on.
            vec![
                out.policy.to_string(),
                format!("{:.1}", out.makespan_secs()),
                format!("{:.1}", out.mean_queueing_delay_secs()),
                out.completed_jobs().to_string(),
                out.preemptions.to_string(),
                out.migrations.to_string(),
                out.algorithm_runs.to_string(),
                format!("{:.1}%", 100.0 * out.stream.utilization()),
                format!("{:.3}", out.stream.mean_queue_depth()),
                tail_cell(&out.sojourn_percentiles()),
                tail_cell(&out.queue_wait_percentiles()),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &[
                "policy",
                "makespan (s)",
                "mean q-delay (s)",
                "done",
                "preempt",
                "migrate",
                "rounds",
                "util",
                "mean depth",
                "sojourn p50/p95/p99 (s)",
                "q-wait p50/p95/p99 (s)"
            ],
            &rows
        )
    );
}

/// Render a p50/p95/p99 triple as one compact table cell.
fn tail_cell(p: &flowcon_metrics::sojourn::Percentiles) -> String {
    format!("{:.1}/{:.1}/{:.1}", p.p50, p.p95, p.p99)
}

/// `repro frontier [--policy P | --compare] [--rates R1,R2,..] ...`:
/// sweep offered arrival rate per policy up to the stability frontier and
/// print p50/p95/p99 sojourn vs. load (see the module docs for the
/// flags).
fn run_frontier(args: &[String]) {
    use flowcon_bench::experiments::frontier;
    use flowcon_cluster::SchedPolicyKind;
    use flowcon_sim::time::SimDuration;

    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 16) as usize;
    let jobs = parse_num("--jobs", 16 * workers as u64) as usize;
    let seed = parse_num("--seed", perf::CLUSTER_BENCH_PLAN_SEED);
    let slots = parse_num("--slots", 2) as usize;
    let quantum = flag_value(args, "--quantum").map_or(10.0, |v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--quantum wants seconds, got {v}");
            std::process::exit(2);
        })
    });
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1: a zero-job rung measures nothing");
        std::process::exit(2);
    }
    if quantum <= 0.0 {
        eprintln!("--quantum must be positive");
        std::process::exit(2);
    }
    if slots == 0 {
        eprintln!("--slots must be at least 1: a node needs a job slot");
        std::process::exit(2);
    }
    let config = frontier::FrontierConfig {
        nodes: workers,
        slots_per_node: slots,
        jobs,
        seed,
        quantum: SimDuration::from_secs_f64(quantum),
    };
    // The rate ladder: explicit `--rates R1,R2,...` must be a non-empty,
    // strictly increasing list of positive rates — anything else is a
    // script bug that would silently sweep garbage (a descending ladder
    // "finds" the frontier at its first rung).
    let rates: Vec<f64> = match flag_value(args, "--rates") {
        None => frontier::default_ladder(&config),
        Some(list) => {
            let rates: Vec<f64> = list
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    s.trim().parse::<f64>().unwrap_or_else(|_| {
                        eprintln!("--rates wants comma-separated jobs/s values, got {s:?}");
                        std::process::exit(2);
                    })
                })
                .collect();
            if rates.is_empty() {
                eprintln!("--rates must name at least one offered rate (jobs/s)");
                std::process::exit(2);
            }
            if rates.iter().any(|&r| !r.is_finite() || r <= 0.0) {
                eprintln!("--rates must be positive finite rates, got {list}");
                std::process::exit(2);
            }
            if rates.windows(2).any(|w| w[1] <= w[0]) {
                eprintln!(
                    "--rates must be strictly increasing (the sweep climbs the ladder and \
                     early-stops at saturation), got {list}"
                );
                std::process::exit(2);
            }
            rates
        }
    };
    let compare = args.iter().any(|a| a == "--compare");
    let kinds: Vec<SchedPolicyKind> = if compare {
        SchedPolicyKind::ALL.to_vec()
    } else {
        let name = flag_value(args, "--policy").unwrap_or_else(|| "fifo".into());
        match SchedPolicyKind::parse(&name) {
            Some(kind) => vec![kind],
            None => {
                eprintln!("--policy wants fifo, gandiva or tiresias, got {name}");
                std::process::exit(2);
            }
        }
    };

    section(&format!(
        "Capacity frontier: {workers} nodes x {slots} slots, {jobs} jobs/rung, {quantum:.0}s quantum, {} rung ladder",
        rates.len()
    ));
    let mut curves = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let curve = frontier::sweep(kind, &config, &rates);
        let rows: Vec<Vec<String>> = curve
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.4}", p.rate),
                    format!("{:.4}", p.completion_rate),
                    format!("{:.1}%", 100.0 * p.utilization),
                    format!("{:.2}", p.mean_queue_depth),
                    tail_cell(&p.sojourn),
                    tail_cell(&p.queue_wait),
                    if p.saturated { "SATURATED" } else { "stable" }.to_string(),
                ]
            })
            .collect();
        println!("policy: {}", curve.policy);
        print!(
            "{}",
            text_table(
                &[
                    "offered (jobs/s)",
                    "completed (jobs/s)",
                    "util",
                    "mean depth",
                    "sojourn p50/p95/p99 (s)",
                    "q-wait p50/p95/p99 (s)",
                    "verdict"
                ],
                &rows
            )
        );
        match (curve.last_stable_rate(), curve.frontier_rate()) {
            (Some(lo), Some(hi)) => {
                println!(
                    "stability frontier: between {lo:.4} and {hi:.4} jobs/s ({:.2}x bracket)",
                    hi / lo
                )
            }
            (Some(lo), None) => {
                println!("stability frontier: above {lo:.4} jobs/s (ladder exhausted while stable)")
            }
            (None, Some(hi)) => {
                println!("stability frontier: below {hi:.4} jobs/s (first rung already saturated)")
            }
            (None, None) => println!("stability frontier: no rungs ran"),
        }
        curves.push(curve);
    }
    if let Some(path) = flag_value(args, "--emit") {
        let doc = frontier::curves_jsonl(&curves);
        match flowcon_metrics::export::write_artifact(&path, &doc) {
            Ok(()) => println!("wrote {} curve points to {path}", doc.lines().count()),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

/// `repro timeline`: run one scheduler workload with the flight recorder
/// attached and export the merged timeline as Chrome trace-event JSON
/// (Perfetto-loadable; see the module docs for the flags).
fn run_timeline(args: &[String]) {
    use flowcon_cluster::{ClusterSession, PolicyKind, SchedPolicyKind};
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_dl::workload::WorkloadPlan;
    use flowcon_metrics::tracelog;
    use flowcon_sim::time::SimDuration;
    use flowcon_sim::trace::{FlightRecorder, DEFAULT_CAPACITY};

    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 16) as usize;
    let jobs = parse_num("--jobs", 4 * workers as u64) as usize;
    let seed = parse_num("--seed", perf::CLUSTER_BENCH_PLAN_SEED);
    let slots = parse_num("--slots", 2) as usize;
    let capacity = parse_num("--capacity", DEFAULT_CAPACITY as u64) as usize;
    let quantum = flag_value(args, "--quantum").map_or(10.0, |v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--quantum wants seconds, got {v}");
            std::process::exit(2);
        })
    });
    let sequential = args.iter().any(|a| a == "--sequential");
    let summary = args.iter().any(|a| a == "--summary");
    let out = flag_value(args, "--out");
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    if jobs == 0 {
        eprintln!("--jobs must be at least 1: an empty workload traces nothing");
        std::process::exit(2);
    }
    if quantum <= 0.0 {
        eprintln!("--quantum must be positive");
        std::process::exit(2);
    }
    if slots == 0 {
        eprintln!("--slots must be at least 1: a node needs a job slot");
        std::process::exit(2);
    }
    if capacity == 0 {
        eprintln!("--capacity must be at least 1: a zero-capacity ring records nothing");
        std::process::exit(2);
    }
    let kind = {
        let name = flag_value(args, "--policy").unwrap_or_else(|| "fifo".into());
        match SchedPolicyKind::parse(&name) {
            Some(kind) => kind,
            None => {
                eprintln!("--policy wants fifo, gandiva or tiresias, got {name}");
                std::process::exit(2);
            }
        }
    };

    // Without --out the JSON document owns stdout (pipeable straight into
    // a file or a viewer), so the banner and any summary go to stderr.
    if out.is_some() {
        section(&format!(
            "Timeline: {} on {workers} nodes x {slots} slots, {jobs} jobs, {quantum:.0}s quantum",
            kind.name()
        ));
    }
    let plan = WorkloadPlan::random_n(jobs, seed);
    let node = NodeConfig::default().with_seed(perf::CLUSTER_BENCH_NODE_SEED);
    let (outcome, recorder) = ClusterSession::builder()
        .nodes(workers, node)
        .policy(PolicyKind::FlowCon(FlowConConfig::default()))
        .plan(plan)
        .scheduler(kind)
        .quantum(SimDuration::from_secs_f64(quantum))
        .slots_per_node(slots)
        .sequential(sequential)
        .tracer(FlightRecorder::with_capacity(capacity))
        .build()
        .run_traced();
    assert_eq!(
        outcome.completed_jobs(),
        outcome.submitted,
        "{} lost jobs",
        outcome.policy
    );
    let events = recorder.events();
    let doc = tracelog::chrome_trace_json(&events, recorder.dropped());
    match &out {
        Some(path) => {
            if let Err(e) = flowcon_metrics::export::write_artifact(path, &doc) {
                eprintln!("{e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} trace events ({} dropped) to {path}",
                events.len(),
                recorder.dropped()
            );
        }
        None => print!("{doc}"),
    }
    if summary {
        let rows: Vec<Vec<String>> = tracelog::kind_counts(&events)
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(kind, n)| {
                vec![
                    kind.name().to_string(),
                    kind.layer().to_string(),
                    n.to_string(),
                ]
            })
            .collect();
        let mut table = text_table(&["event", "layer", "count"], &rows);
        if let Some((first, last)) = tracelog::time_span(&events) {
            table.push_str(&format!(
                "timeline: {} events over {:.1}s of simulated time, {} dropped\n",
                events.len(),
                last.saturating_since(first).as_secs_f64(),
                recorder.dropped()
            ));
        }
        if out.is_some() {
            print!("{table}");
        } else {
            eprint!("{table}");
        }
    }
}

/// `repro stream`: run an open-loop arrival stream end to end (see the
/// module docs for the flags).
fn run_stream(args: &[String]) {
    use flowcon_bench::experiments::stream as exp;
    use flowcon_cluster::{Horizon, PolicyKind, StreamSource, TraceStreamSource};
    use flowcon_core::config::{FlowConConfig, NodeConfig};
    use flowcon_sim::time::SimTime;
    use flowcon_workload::{ArrivalTrace, TraceCatalog};

    let file = flag_value(args, "--file");
    let synthetic = flag_value(args, "--synthetic");
    if file.is_some() == synthetic.is_some() {
        eprintln!(
            "stream wants exactly one of --file PATH or --synthetic {{poisson,bursty,diurnal}}"
        );
        std::process::exit(2);
    }
    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let parse_f64 = |name: &str| {
        flag_value(args, name).map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 1) as usize;
    if workers == 0 {
        eprintln!("--workers must be at least 1: a cluster with no workers cannot run jobs");
        std::process::exit(2);
    }
    let seed = parse_num("--seed", flowcon_bench::experiments::DEFAULT_SEED);
    let policy = match flag_value(args, "--policy").as_deref() {
        None | Some("flowcon") => PolicyKind::FlowCon(FlowConConfig::default()),
        Some("na") => PolicyKind::Baseline,
        Some(other) => {
            eprintln!("--policy wants flowcon or na, got {other}");
            std::process::exit(2);
        }
    };
    // Mode-specific flags are hard errors in the wrong mode.
    let only_with = |flag: &str, mode: &str, allowed: bool| {
        if !allowed && args.iter().any(|a| a == flag) {
            eprintln!("{flag} only applies to {mode} workloads");
            std::process::exit(2);
        }
    };
    only_with("--rate", "--synthetic", synthetic.is_some());
    only_with("--cycle", "--file", file.is_some());
    only_with("--hints", "--file", file.is_some());

    // The horizon: --until (admission window, simulated seconds) and/or
    // --jobs (per-worker admission cap).  An unbounded open-loop run
    // would never terminate, so at least one is mandatory.
    let until = parse_f64("--until");
    let max_jobs = flag_value(args, "--jobs").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--jobs wants a number, got {v}");
            std::process::exit(2);
        })
    });
    // `--jobs 0` would "run" a stream that admits nothing — a degenerate
    // horizon that is always a script bug, never a workload.
    if max_jobs == Some(0) {
        eprintln!("--jobs must be at least 1: a zero-job horizon admits nothing");
        std::process::exit(2);
    }
    if until.is_none() && max_jobs.is_none() {
        eprintln!("stream needs a horizon: --until SECS and/or --jobs N");
        std::process::exit(2);
    }
    let horizon = Horizon {
        until: until.map(SimTime::from_secs_f64),
        max_jobs,
    };
    // Cluster streams run headless (accepting the flag explicitly too);
    // a single worker records the full paper traces.
    let headless = workers > 1 || args.iter().any(|a| a == "--headless");
    // The structured tracer rides the full-observability session; the
    // headless cluster path has no per-job identity to trace against.
    let trace_out = flag_value(args, "--trace-out");
    if trace_out.is_some() && headless {
        eprintln!(
            "--trace-out only applies to the single-worker full-observability run \
             (use --workers 1 and drop --headless)"
        );
        std::process::exit(2);
    }

    // Resolve the stream source.
    enum Source {
        Synthetic(flowcon_workload::SyntheticStreamSource),
        Trace(TraceStreamSource),
    }
    let (what, source) = if let Some(name) = &synthetic {
        let rate = parse_f64("--rate").unwrap_or(exp::DEFAULT_STREAM_RATE);
        let Some(mut src) = exp::stream_preset(name, rate, seed) else {
            eprintln!("--synthetic wants poisson, bursty or diurnal, got {name}");
            std::process::exit(2);
        };
        if headless {
            src = src.unlabeled();
        }
        (
            format!("synthetic {name} ({rate}/s per worker)"),
            Source::Synthetic(src),
        )
    } else {
        let path = file.as_deref().expect("checked above");
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read trace {path}: {e}");
            std::process::exit(2);
        });
        let trace = match ArrivalTrace::parse(&doc) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        let mut catalog = TraceCatalog::table1();
        if args.iter().any(|a| a == "--hints") {
            catalog = catalog.with_duration_hints();
        }
        if headless {
            catalog = catalog.unlabeled();
        }
        let bound = match catalog.bind(&trace) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        let mut src = TraceStreamSource::new(bound, workers);
        let mut what = format!("trace {path}");
        if args.iter().any(|a| a == "--cycle") {
            src = src.cyclic();
            what.push_str(" (cyclic)");
        }
        (what, Source::Trace(src))
    };

    let node = NodeConfig::default().with_seed(seed);
    let describe_horizon = {
        let mut parts = Vec::new();
        if let Some(t) = horizon.until {
            parts.push(format!("until {t}"));
        }
        if let Some(n) = horizon.max_jobs {
            parts.push(format!("{n} jobs/worker"));
        }
        parts.join(", ")
    };

    let start = std::time::Instant::now();
    let (totals, events, full) = if workers == 1 && !headless {
        let result = if let Some(path) = &trace_out {
            use flowcon_metrics::tracelog;
            use flowcon_sim::trace::{FlightRecorder, DEFAULT_CAPACITY};
            let mut recorder = FlightRecorder::with_capacity(DEFAULT_CAPACITY);
            let result = match source {
                Source::Synthetic(src) => exp::stream_session_traced(
                    src.stream_for(0),
                    horizon,
                    node,
                    policy,
                    &mut recorder,
                ),
                Source::Trace(src) => exp::stream_session_traced(
                    src.stream_for(0),
                    horizon,
                    node,
                    policy,
                    &mut recorder,
                ),
            };
            let trace_events = recorder.events();
            let doc = tracelog::chrome_trace_json(&trace_events, recorder.dropped());
            if let Err(e) = flowcon_metrics::export::write_artifact(path, &doc) {
                eprintln!("{e}");
                std::process::exit(2);
            }
            println!(
                "wrote {} trace events ({} dropped) to {path}",
                trace_events.len(),
                recorder.dropped()
            );
            result
        } else {
            match source {
                Source::Synthetic(src) => {
                    exp::stream_session(src.stream_for(0), horizon, node, policy)
                }
                Source::Trace(src) => exp::stream_session(src.stream_for(0), horizon, node, policy),
            }
        };
        (result.stream, result.events_processed, Some(result.output))
    } else {
        let run = match source {
            Source::Synthetic(src) => exp::stream_cluster(&src, workers, horizon, node, policy),
            Source::Trace(src) => exp::stream_cluster(&src, workers, horizon, node, policy),
        };
        (run.stream_totals(), run.events_processed(), None)
    };
    let wall = start.elapsed();

    section(&format!(
        "Open-loop stream: {what}, {workers} worker{}, {describe_horizon}",
        if workers == 1 { "" } else { "s" }
    ));
    if let Some(summary) = &full {
        // List completions positionally, not by label lookup: a cyclic
        // replay legitimately admits the same label several times, and a
        // by-label table would repeat the first instance's time.
        let rows: Vec<Vec<String>> = summary
            .completions
            .iter()
            .map(|c| {
                vec![
                    c.label.clone(),
                    format!("{:.1}", c.arrival.as_secs_f64()),
                    format!("{:.1}", c.completion_secs()),
                ]
            })
            .collect();
        print!(
            "{}",
            text_table(
                &["job (exit order)", "arrival (s)", "completion (s)"],
                &rows
            )
        );
    }
    print!("{}", stream_stats_table(&totals, events, wall));
}

/// The steady-state metrics table every `repro stream` mode prints.
fn stream_stats_table(
    s: &flowcon_metrics::stream::StreamStats,
    events: u64,
    wall: std::time::Duration,
) -> String {
    let rows = vec![
        vec!["jobs submitted".to_string(), s.submitted.to_string()],
        vec!["jobs completed".to_string(), s.completed.to_string()],
        vec![
            "run duration (sim s)".to_string(),
            format!("{:.1}", s.duration_secs),
        ],
        vec![
            "arrival rate (jobs/s)".to_string(),
            format!("{:.4}", s.arrival_rate()),
        ],
        vec![
            "completion rate (jobs/s)".to_string(),
            format!("{:.4}", s.completion_rate()),
        ],
        vec![
            "mean queue depth (jobs)".to_string(),
            format!("{:.3}", s.mean_queue_depth()),
        ],
        vec![
            "utilization".to_string(),
            format!("{:.1}%", 100.0 * s.utilization()),
        ],
        vec!["events processed".to_string(), events.to_string()],
        vec![
            "wall time (ms)".to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ],
    ];
    text_table(&["metric", "value"], &rows)
}

fn table1() {
    section("Table 1: Tested Deep Learning Models");
    let rows: Vec<Vec<String>> = TABLE1_MODELS
        .iter()
        .map(|&id| {
            let m = ModelSpec::of(id);
            vec![
                m.label(),
                m.eval.kind.name().to_string(),
                format!("{:?}", m.framework),
                format!("{:.0}", m.total_work),
                format!("{:.2}", m.demand),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &[
                "Model",
                "Eval. Function",
                "Platform",
                "Work (cpu-s)",
                "Demand"
            ],
            &rows
        )
    );
}

fn run_fig1() {
    section("Fig. 1: Training progress of five models (NA, one node)");
    let fig = fig1::run(default_node());
    let mut rows = Vec::new();
    for c in &fig.curves {
        let t90 = fig1::time_fraction_to_quality(&fig, &c.label, 0.9);
        rows.push(vec![
            c.label.clone(),
            t90.map_or("-".into(), |t| format!("{:.1}%", t * 100.0)),
        ]);
        let csv_rows: Vec<Vec<String>> = c
            .points
            .iter()
            .map(|&(t, a)| vec![c.label.clone(), format!("{t:.4}"), format!("{a:.4}")])
            .collect();
        write_csv(
            &format!("fig1_{}.csv", c.label.replace([' ', '(', ')'], "_")),
            &to_csv(&["model", "time_frac", "accuracy"], &csv_rows),
        );
    }
    print!(
        "{}",
        text_table(&["Model", "time to 90% of final accuracy"], &rows)
    );
    println!(
        "(makespan {:.1}s; CSVs under target/experiments/)",
        fig.makespan_secs
    );
}

fn fixed_sweep(title: &str, sweep: fixed::FixedSweep, file: &str) {
    section(title);
    let labels: Vec<String> = sweep
        .baseline
        .completions
        .iter()
        .map(|c| c.label.clone())
        .collect();
    let mut runs: Vec<&RunSummary> = sweep.cells.iter().map(|c| &c.summary).collect();
    runs.push(&sweep.baseline);
    print!("{}", completion_table(&runs, &labels));
    write_csv(&format!("{file}.csv"), &completions_csv(&runs));
}

fn table2() {
    section("Table 2: Completion-time reduction of MNIST (Tensorflow)");
    let (fig4_col, fig5_col) = fixed::table2(default_node());
    let n = fig4_col.len().max(fig5_col.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let left = fig4_col.get(i);
            let right = fig5_col.get(i);
            vec![
                left.map_or(String::new(), |(n, _)| n.clone()),
                left.map_or(String::new(), |(_, r)| format!("{r:.1}%")),
                right.map_or(String::new(), |(n, _)| n.clone()),
                right.map_or(String::new(), |(_, r)| format!("{r:.1}%")),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &[
                "alpha,itval (Fig.4)",
                "Reduction",
                "alpha,itval (Fig.5)",
                "Reduction"
            ],
            &rows
        )
    );
    let csv_rows: Vec<Vec<String>> = fig4_col
        .iter()
        .chain(fig5_col.iter())
        .map(|(name, red)| vec![name.clone(), format!("{red:.2}")])
        .collect();
    write_csv(
        "table2.csv",
        &to_csv(&["setting", "reduction_pct"], &csv_rows),
    );
}

fn cpu_chart(title: &str, summary: &RunSummary, file: &str) {
    section(title);
    let series: Vec<(&str, &flowcon_metrics::TimeSeries)> = summary.cpu_usage.iter().collect();
    print!("{}", line_chart("CPU usage", &series, Some(1.0), 100, 14));
    write_csv(
        &format!("{file}.csv"),
        &series_csv("cpu_usage", &summary.cpu_usage),
    );
}

fn fig7_fig8() {
    let (fc, na) = fixed::fig7_fig8(default_node());
    cpu_chart(
        "Fig. 7: CPU usage, FlowCon (alpha=5%, itval=20, 3 jobs)",
        &fc,
        "fig7",
    );
    cpu_chart("Fig. 8: CPU usage, NA (3 jobs)", &na, "fig8");
}

fn fig9() {
    section("Fig. 9: Five jobs, random submission");
    let cmp = random::fig9(default_node(), DEFAULT_SEED);
    let labels = cmp.labels();
    let mut runs: Vec<&RunSummary> = cmp.flowcon.iter().collect();
    runs.push(&cmp.baseline);
    print!("{}", completion_table(&runs, &labels));
    for (policy, wins, losses) in cmp.win_loss_rows() {
        println!("{policy}: {wins} wins / {losses} losses vs NA");
    }
    write_csv("fig9.csv", &completions_csv(&runs));
}

fn fig10_fig11() {
    let (fc, na) = random::fig10_fig11(default_node(), DEFAULT_SEED);
    cpu_chart(
        "Fig. 10: CPU usage, FlowCon (alpha=3%, itval=30, 5 jobs)",
        &fc,
        "fig10",
    );
    cpu_chart("Fig. 11: CPU usage, NA (5 jobs)", &na, "fig11");
}

fn fig12_fig15_fig16(charts: bool) {
    let cmp = scale::fig12(default_node(), DEFAULT_SEED);
    if charts {
        cpu_chart(
            "Fig. 15: CPU usage, FlowCon (alpha=10%, itval=20, 10 jobs)",
            &cmp.flowcon,
            "fig15",
        );
        cpu_chart("Fig. 16: CPU usage, NA (10 jobs)", &cmp.baseline, "fig16");
        return;
    }
    section("Fig. 12: Ten jobs, random submission (FlowCon-10%-20 vs NA)");
    let labels = cmp.labels();
    let runs = [&cmp.flowcon, &cmp.baseline];
    print!("{}", completion_table(&runs, &labels));
    let (wins, losses) = cmp.wins_losses();
    println!("FlowCon wins {wins} / loses {losses} of 10 jobs");
    if let Some((job, red)) = cmp.biggest_winner() {
        println!("largest improvement: {job} ({red:.1}%)");
    }
    write_csv("fig12.csv", &completions_csv(&runs));
}

fn fig13_fig14() {
    let cmp = scale::fig12(default_node(), DEFAULT_SEED);
    let (loser, winner) = cmp.exemplars();
    for (figure, job, file) in [("Fig. 13", &loser, "fig13"), ("Fig. 14", &winner, "fig14")] {
        section(&format!(
            "{figure}: Growth efficiency of {job} (FlowCon vs NA)"
        ));
        let empty = flowcon_metrics::TimeSeries::new();
        let fc = cmp.flowcon.growth_efficiency.get(job).unwrap_or(&empty);
        let na = cmp.baseline.growth_efficiency.get(job).unwrap_or(&empty);
        print!(
            "{}",
            line_chart(
                "Growth efficiency",
                &[("FlowCon", fc), ("NA", na)],
                None,
                100,
                12
            )
        );
        write_csv(
            &format!("{file}.csv"),
            &series_csv("growth", &cmp.flowcon.growth_efficiency),
        );
    }
}

fn fig17() {
    section("Fig. 17: Fifteen jobs, random submission (FlowCon-10%-40 vs NA)");
    let cmp = scale::fig17(default_node(), DEFAULT_SEED);
    let labels = cmp.labels();
    let runs = [&cmp.flowcon, &cmp.baseline];
    print!("{}", completion_table(&runs, &labels));
    let (wins, losses) = cmp.wins_losses();
    println!("FlowCon wins {wins} / loses {losses} of 15 jobs");
    write_csv("fig17.csv", &completions_csv(&runs));
}

fn ablation_backoff() {
    section("Ablation: exponential back-off");
    let ab = ablation::backoff(default_node());
    print!(
        "{}",
        text_table(
            &["variant", "algorithm runs", "makespan (s)"],
            &[
                vec![
                    "back-off on".into(),
                    ab.runs_with.to_string(),
                    format!("{:.1}", ab.makespan_with)
                ],
                vec![
                    "back-off off".into(),
                    ab.runs_without.to_string(),
                    format!("{:.1}", ab.makespan_without)
                ],
            ]
        )
    );
}

fn ablation_beta() {
    section("Ablation: beta lower-bound sweep (5 random jobs)");
    let rows = ablation::beta_sweep(default_node(), DEFAULT_SEED, &[1.0, 2.0, 4.0, 8.0]);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(b, makespan, worst)| {
            vec![
                format!("{b}"),
                format!("{makespan:.1}"),
                format!("{worst:.1}%"),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &["beta", "makespan (s)", "worst per-job reduction"],
            &table_rows
        )
    );
}

fn ablation_kappa() {
    section("Ablation: contention coefficient sweep (fixed schedule)");
    let rows = ablation::kappa_sweep(default_node(), &[0.0, 0.01, 0.02, 0.05, 0.10]);
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|(k, imp)| (format!("kappa={k}"), imp.max(0.0)))
        .collect();
    print!(
        "{}",
        bar_chart("makespan improvement vs NA (%)", &bars, "%", 40)
    );
    for (k, imp) in rows {
        println!("kappa={k}: {imp:+.2}%");
    }
}

fn ablation_resource() {
    section("Ablation: growth efficiency per resource kind (Eq. 2)");
    let rows = ablation::resource_sweep(default_node(), DEFAULT_SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(res, makespan, wins)| {
            vec![
                res.clone(),
                format!("{makespan:.1}"),
                format!("{wins} of 5"),
            ]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &["driving resource", "makespan (s)", "wins vs NA"],
            &table_rows
        )
    );
}

fn ablation_policies() {
    section("Ablation: policy zoo (5 random jobs)");
    let rows = ablation::policy_zoo(default_node(), DEFAULT_SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, makespan, mean)| {
            vec![name.clone(), format!("{makespan:.1}"), format!("{mean:.1}")]
        })
        .collect();
    print!(
        "{}",
        text_table(
            &["policy", "makespan (s)", "mean completion (s)"],
            &table_rows
        )
    );
}

/// `repro fidelity [--workers N] [--jobs J] [--seed S] [--dilation D]
/// [--chaos {straggler,churn}] [--emit PATH]`: run the identical seeded
/// workload through the fluid simulation and the wall-clock rt backend,
/// align per-job records, report the divergence, and exit 2 on tolerance
/// breach (see the module docs).
fn run_fidelity(args: &[String]) {
    use flowcon_bench::experiments::fidelity::{self, ChaosKind, FidelityConfig};
    use flowcon_metrics::export::JsonValue;
    use flowcon_metrics::fidelity::FidelityTolerance;

    let parse_num = |name: &str, default: u64| {
        flag_value(args, name).map_or(default, |v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name} wants a number, got {v}");
                std::process::exit(2);
            })
        })
    };
    let workers = parse_num("--workers", 2) as u32;
    let jobs = parse_num("--jobs", 8) as usize;
    let seed = parse_num("--seed", DEFAULT_SEED);
    let dilation = flag_value(args, "--dilation").map_or(400.0, |v| {
        v.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("--dilation wants sim-seconds per wall second, got {v}");
            std::process::exit(2);
        })
    });
    let chaos = match flag_value(args, "--chaos").as_deref() {
        None => None,
        Some("straggler") => Some(ChaosKind::Straggler),
        Some("churn") => Some(ChaosKind::Churn),
        Some(other) => {
            eprintln!("unknown chaos scenario {other}; expected straggler or churn");
            std::process::exit(2);
        }
    };
    if workers == 0 || jobs == 0 {
        eprintln!("--workers and --jobs must both be at least 1");
        std::process::exit(2);
    }
    if !(dilation.is_finite() && dilation > 0.0) {
        eprintln!("--dilation must be a positive finite number");
        std::process::exit(2);
    }

    let config = FidelityConfig {
        workers,
        jobs,
        seed,
        dilation,
        chaos,
    };
    let chaos_name = chaos.map_or("none", ChaosKind::name);
    println!("Differential fidelity: sim (reference) vs rt (candidate)");
    println!(
        "workload: {jobs} jobs, seed {seed:#x}, {workers}-core node, dilation {dilation:.0}x, chaos {chaos_name}"
    );

    let outcome = fidelity::run(&config);
    let report = &outcome.report;
    println!("policy: {}", outcome.policy);
    if report.completion_set_equal {
        println!(
            "completion set: equal ({}/{} jobs)",
            report.matched, report.reference_jobs
        );
    } else {
        println!(
            "completion set: DIVERGED ({} sim jobs, {} rt jobs; missing {:?}, extra {:?})",
            report.reference_jobs,
            report.candidate_jobs,
            report.missing_labels,
            report.extra_labels
        );
    }
    println!(
        "completion-order edit distance: {}",
        report.order_edit_distance
    );
    let (p50, p95, p99, rmin, rmax) = match report.sojourn_ratio_percentiles() {
        Some(p) => (
            p.p50,
            p.p95,
            p.p99,
            report.sojourn_ratios.quantile(0.0).unwrap_or(f64::NAN),
            report.sojourn_ratios.quantile(1.0).unwrap_or(f64::NAN),
        ),
        None => (f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN),
    };
    println!(
        "sojourn ratio (rt/sim): p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}  min {rmin:.3}  max {rmax:.3}"
    );
    println!(
        "makespan ratio (rt/sim): {:.3} (sim {:.1}s, rt {:.1}s)",
        report.makespan_ratio(),
        report.makespan_reference,
        report.makespan_candidate
    );
    if report.divergent() {
        println!(
            "divergence: nonzero (order distance {}, sojourn p50 {p50:.3}, makespan ratio {:.3})",
            report.order_edit_distance,
            report.makespan_ratio()
        );
    } else {
        println!("divergence: none");
    }

    // A node of C cores can only run in real time if the host actually has
    // C cores free: on an oversubscribed host the wall run is legitimately
    // ~C/nproc slower than the fluid model, with no divergence of the
    // *control* behaviour.  Widen the upper ratio bands by that physical
    // floor so the gate measures fidelity, not host size.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as f64;
    let oversub = (f64::from(workers) / host_cores).max(1.0);
    let base = FidelityTolerance::default();
    let tolerance = FidelityTolerance {
        sojourn_p50: (base.sojourn_p50.0, base.sojourn_p50.1 * oversub),
        makespan: (base.makespan.0, base.makespan.1 * oversub),
        ..base
    };
    println!(
        "tolerance: sojourn p50 <= {:.1}, makespan ratio <= {:.1} ({}-core node on a {:.0}-core host)",
        tolerance.sojourn_p50.1, tolerance.makespan.1, workers, host_cores
    );
    let violations = report.violations(&tolerance);
    for v in &violations {
        eprintln!("tolerance breach: {v}");
    }

    if let Some(path) = flag_value(args, "--emit") {
        let record: Vec<(&str, JsonValue)> = vec![
            ("experiment", JsonValue::Str("fidelity".into())),
            ("policy", JsonValue::Str(outcome.policy.clone())),
            ("workers", JsonValue::Int(workers as u64)),
            ("jobs", JsonValue::Int(jobs as u64)),
            ("seed", JsonValue::Int(seed)),
            ("dilation", JsonValue::Num(dilation)),
            ("chaos", JsonValue::Str(chaos_name.into())),
            (
                "completion_set_equal",
                JsonValue::Bool(report.completion_set_equal),
            ),
            (
                "reference_jobs",
                JsonValue::Int(report.reference_jobs as u64),
            ),
            (
                "candidate_jobs",
                JsonValue::Int(report.candidate_jobs as u64),
            ),
            ("matched", JsonValue::Int(report.matched as u64)),
            (
                "order_edit_distance",
                JsonValue::Int(report.order_edit_distance as u64),
            ),
            ("sojourn_ratio_p50", JsonValue::Num(p50)),
            ("sojourn_ratio_p95", JsonValue::Num(p95)),
            ("sojourn_ratio_p99", JsonValue::Num(p99)),
            ("sojourn_ratio_min", JsonValue::Num(rmin)),
            ("sojourn_ratio_max", JsonValue::Num(rmax)),
            (
                "makespan_sim_secs",
                JsonValue::Num(report.makespan_reference),
            ),
            (
                "makespan_rt_secs",
                JsonValue::Num(report.makespan_candidate),
            ),
            ("makespan_ratio", JsonValue::Num(report.makespan_ratio())),
            ("divergent", JsonValue::Bool(report.divergent())),
            ("violations", JsonValue::Int(violations.len() as u64)),
        ];
        let doc = flowcon_metrics::export::to_jsonl([record.as_slice()]);
        match flowcon_metrics::export::write_artifact(&path, &doc) {
            Ok(()) => println!("wrote fidelity report to {path}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let code = report.exit_code(&tolerance, chaos.is_some());
    if code != 0 {
        std::process::exit(code);
    }
}
