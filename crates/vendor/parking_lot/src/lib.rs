//! Offline subset of `parking_lot` covering exactly the API this workspace
//! uses: `Mutex` (infallible `lock()`), `Condvar` with `wait` /
//! `wait_until`, and `RwLock`.
//!
//! Backed by `std::sync` primitives; lock poisoning is deliberately ignored
//! (parking_lot has no poisoning), matching the upstream contract.

use std::time::Instant;

/// A mutex whose `lock()` returns the guard directly (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Wait until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (reacquired, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose acquisitions return guards directly.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
