//! Offline subset of `crossbeam` covering exactly the API this workspace
//! uses (`crossbeam::channel::{bounded, Sender, Receiver, RecvTimeoutError}`).
//!
//! The build environment has no access to crates.io, so the real crate is
//! replaced by this std-backed shim: multi-producer channels built on
//! `std::sync::mpsc::sync_channel`, with crossbeam's error vocabulary.

pub mod channel {
    //! Bounded MPSC channels with timeout-aware receives.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Why a `recv_timeout` returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Every sender has been dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel (cloneable).
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the receiver is gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block for up to `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// A bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn timeout_on_empty() {
            let (_tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_senders_share_channel() {
            let (tx, rx) = bounded(8);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1u8).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
