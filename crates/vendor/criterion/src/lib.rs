//! Offline subset of `criterion` covering the API this workspace's benches
//! use: `Criterion`, `BenchmarkGroup`, `Bencher` (`iter` / `iter_batched`),
//! `BenchmarkId`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so this shim provides a
//! real (if simple) measurement loop: each benchmark is warmed up, then
//! sampled `sample_size` times with an auto-calibrated iteration count per
//! sample, and the median/min ns-per-iteration are printed in a stable,
//! greppable one-line format:
//!
//! ```text
//! bench: <name> ... median 123.4 ns/iter (min 120.0, samples 20)
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (kept for API parity; the shim
/// always times routine-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many routine calls per setup.
    SmallInput,
    /// Large inputs: one routine call per setup.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/value` id from a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// `function/value` id.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One measured sample set.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark name (`group/id`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    result_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least `min_sample_time`.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.config.min_sample_time || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            std::hint::black_box(routine());
        }
        // Sample.
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.result_ns.push(ns);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size.max(10) {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let ns = start.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            self.result_ns.push(ns);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    min_sample_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(750),
            min_sample_time: Duration::from_millis(5),
        }
    }
}

/// The benchmark manager (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    config: Config,
    /// Every measurement taken so far (inspectable by callers).
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Parse CLI configuration (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            sink: &mut self.measurements,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config.clone();
        run_one(name, &config, f, &mut self.measurements);
        self
    }

    /// Print a final summary (no-op placeholder for API parity).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    sink: &'a mut Vec<Measurement>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&name, &self.config, f, self.sink);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&name, &self.config, |b| f(b, input), self.sink);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    name: &str,
    config: &Config,
    mut f: F,
    sink: &mut Vec<Measurement>,
) {
    let mut bencher = Bencher {
        config,
        result_ns: Vec::new(),
    };
    f(&mut bencher);
    let mut ns = bencher.result_ns;
    if ns.is_empty() {
        return;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = ns[ns.len() / 2];
    let min = ns[0];
    println!(
        "bench: {name} ... median {median:.1} ns/iter (min {min:.1}, samples {})",
        ns.len()
    );
    sink.push(Measurement {
        name: name.to_string(),
        median_ns: median,
        min_ns: min,
        samples: ns.len(),
    });
}

/// Re-export for `b.iter(|| black_box(...))`-style benches.
pub use std::hint::black_box;

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion {
            config: Config {
                sample_size: 3,
                warm_up_time: Duration::from_millis(1),
                measurement_time: Duration::from_millis(20),
                min_sample_time: Duration::from_micros(100),
            },
            measurements: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements.len(), 1);
        assert!(c.measurements[0].median_ns >= 0.0);
    }

    #[test]
    fn group_names_prefix_benchmarks() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(10));
            g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.measurements[0].name, "g/5");
    }
}
