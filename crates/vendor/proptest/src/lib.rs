//! Offline subset of `proptest` covering the API this workspace's property
//! tests use: the `Strategy` trait (with `prop_map`), range and tuple
//! strategies, `collection::vec` / `collection::btree_set`,
//! `option::weighted`, and the `proptest!` / `prop_assert*` macros.
//!
//! The build environment has no crates.io access, so the real crate is
//! replaced by this shim.  Differences from upstream: no shrinking (a
//! failing case panics with its inputs via the assertion message), and a
//! fixed deterministic seed per test function so failures reproduce.
//! Case count defaults to 64 and honours `PROPTEST_CASES`.

pub mod strategy {
    //! The strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64_inclusive() * (hi - lo)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range");
                    let span = (hi - lo) as u64;
                    let offset = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_u64() % (span + 1)
                    };
                    lo + offset as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! signed_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range");
                    let span = (hi as i128 - lo as i128) as u64;
                    let offset = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_u64() % (span + 1)
                    };
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    signed_int_strategies!(i8, i16, i32, i64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A half-open `[min, max)` length domain for collection strategies.
    ///
    /// Mirrors upstream's `SizeRange`: taking `Into<SizeRange>` (instead of
    /// a generic strategy) is what pins bare `1..12` literals to `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min + 1 {
                return self.min;
            }
            self.min + (rng.next_u64() % (self.max - self.min) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// A vector of values from `element`, sized within `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from a
    /// [`SizeRange`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// A set of values from `element`; duplicates drawn while filling are
    /// discarded, so the final size may undershoot the target (as upstream).
    pub fn btree_set<S>(element: S, sizes: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.sizes.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so narrow element domains cannot loop forever.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` with the given probability.
    pub struct WeightedOption<S> {
        probability: f64,
        inner: S,
    }

    /// `Some(value)` with probability `probability`, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { probability, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The deterministic RNG and case-count plumbing behind `proptest!`.

    /// Number of cases each property runs (default 64, `PROPTEST_CASES`
    /// overrides).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// SplitMix64: tiny, fast, and plenty for test-input generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            for b in test_name.bytes() {
                seed = seed.rotate_left(7) ^ (b as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    // `prop::collection::vec(...)`-style paths resolve through this alias.
    pub use crate as prop;
}

/// Assert inside a property (panics with context in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Define property tests: each function runs its body over generated
/// inputs for [`test_runner::cases`] cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in 0.25f64..=0.75,
            n in 3usize..10,
            raw in 1u64..5,
        ) {
            prop_assert!((0.25..=0.75).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..5).contains(&raw));
        }

        #[test]
        fn vec_and_map_compose(
            xs in prop::collection::vec((0.0f64..1.0, 0u64..4).prop_map(|(a, b)| a + b as f64), 1..20),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in &xs {
                prop_assert!((0.0..5.0).contains(x));
            }
        }

        #[test]
        fn weighted_option_mixes(flags in prop::collection::vec(prop::option::weighted(0.5, 0u64..2), 64..65)) {
            let somes = flags.iter().filter(|f| f.is_some()).count();
            // 64 draws at p=0.5: statistically impossible to be all-or-nothing
            // with a correct generator (probability 2^-63).
            prop_assert!(somes > 0 && somes < 64, "somes {somes}");
        }

        #[test]
        fn patterns_allow_mut(mut v in 1usize..4) {
            v += 1;
            prop_assert!(v >= 2);
        }
    }

    #[test]
    fn determinism_per_case() {
        use crate::strategy::Strategy;
        let a = (0.0f64..1.0).generate(&mut crate::test_runner::TestRng::for_case("t", 3));
        let b = (0.0f64..1.0).generate(&mut crate::test_runner::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn btree_set_respects_target() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_case("set", 0);
        let s = crate::collection::btree_set(0u64..12, 0usize..8).generate(&mut rng);
        assert!(s.len() < 8);
    }
}
