//! Steady-state allocation audit for the hot path.
//!
//! A counting global allocator wraps `System`; after warm-up, repeated
//! `waterfill_into` / `waterfill_soft_into` rounds and a steady-state
//! engine loop must perform **zero** heap allocations.
//!
//! Counting is gated on a thread-local flag so the libtest harness's own
//! threads (which allocate at will) cannot contaminate the measurement
//! window of the test thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use flowcon_sim::alloc::{waterfill_into, waterfill_soft_into, AllocRequest, WaterfillScratch};
use flowcon_sim::engine::{Scheduler, SimEngine, Simulation};
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::trace::{NoopTracer, Tracer};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` init: reading the flag never allocates, so the allocator can
    // consult it re-entrancy-free.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    let tracking = TRACKING.try_with(|t| t.get()).unwrap_or(false);
    if tracking {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Run `f` with allocation tracking enabled on this thread; return how many
/// heap allocations it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    let out = f();
    TRACKING.with(|t| t.set(false));
    std::hint::black_box(out);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn drifted_requests(reqs: &mut [AllocRequest], round: usize) {
    // Move every limit each round (the Algorithm 1 steady-state pattern)
    // without changing the relative cap/weight order.
    let n = reqs.len() as f64;
    for (i, q) in reqs.iter_mut().enumerate() {
        let base = 0.05 + 0.9 * (i as f64 + 1.0) / (n + 1.0);
        q.limit = base + 0.0003 * ((round % 7) as f64);
    }
}

/// A self-rescheduling ticker: the engine's steady-state event pattern.
struct Ticker {
    remaining: u32,
}

impl Simulation for Ticker {
    type Event = ();
    fn handle<T: Tracer>(&mut self, _ev: (), sched: &mut Scheduler<'_, (), T>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_secs(1), ());
        }
    }
}

#[test]
fn hot_path_is_allocation_free_in_steady_state() {
    let n = 64;
    let mut reqs: Vec<AllocRequest> = (0..n)
        .map(|i| AllocRequest {
            limit: 1.0,
            demand: 0.3 + 0.6 * (i as f64) / (n as f64),
            weight: 1.0,
        })
        .collect();

    // --- waterfill_into, oversubscribed (sort path + warm cache) ---
    let mut scratch = WaterfillScratch::new();
    drifted_requests(&mut reqs, 0);
    waterfill_into(&mut scratch, 1.0, &reqs); // warm-up: buffers grow here
    let hard_allocs = allocations_during(|| {
        for round in 1..1_000usize {
            drifted_requests(&mut reqs, round);
            waterfill_into(&mut scratch, 1.0, &reqs);
        }
    });
    assert_eq!(
        hard_allocs, 0,
        "waterfill_into allocated {hard_allocs} times across 999 warm rounds"
    );
    assert!(
        scratch.sort_skips() > 0,
        "warm-order cache never engaged (skips {}, sorts {})",
        scratch.sort_skips(),
        scratch.sorts()
    );

    // --- early-exit path (Σcaps ≤ capacity) is also allocation-free ---
    for q in reqs.iter_mut() {
        q.limit = 0.005;
    }
    waterfill_into(&mut scratch, 1.0, &reqs);
    let early_allocs = allocations_during(|| {
        for _ in 0..100 {
            waterfill_into(&mut scratch, 1.0, &reqs);
        }
    });
    assert_eq!(
        early_allocs, 0,
        "early-exit path allocated {early_allocs} times"
    );
    assert!(scratch.early_exits() > 0, "early exit never engaged");

    // --- waterfill_soft_into with an active stage-2 top-up ---
    for (i, q) in reqs.iter_mut().enumerate() {
        q.limit = 0.004; // caps sum ≈ 0.26 < capacity → stage 2 runs
        q.demand = 0.2 + 0.01 * (i as f64);
    }
    waterfill_soft_into(&mut scratch, 1.0, &reqs); // warm-up for soft buffers
    let soft_allocs = allocations_during(|| {
        for _ in 0..500 {
            waterfill_soft_into(&mut scratch, 1.0, &reqs);
        }
    });
    assert_eq!(
        soft_allocs, 0,
        "waterfill_soft_into allocated {soft_allocs} times across 500 warm rounds"
    );

    // --- engine steady state: self-rescheduling chain, fused pop path ---
    let mut engine: SimEngine<Ticker> = SimEngine::new();
    let mut sim = Ticker { remaining: 10_000 };
    engine.prime(SimTime::ZERO, ());
    // Warm-up: let the queue reach its steady size.
    engine.run_until(&mut sim, SimTime::from_secs(100));
    let engine_allocs = allocations_during(|| {
        engine.run_to_completion(&mut sim);
    });
    assert_eq!(
        engine_allocs, 0,
        "steady-state engine loop allocated {engine_allocs} times"
    );

    // --- explicitly-noop-traced loop is the same zero-alloc loop ---
    let mut engine: SimEngine<Ticker> = SimEngine::new();
    let mut sim = Ticker { remaining: 10_000 };
    engine.prime(SimTime::ZERO, ());
    engine.run_until_traced(&mut sim, SimTime::from_secs(100), &mut NoopTracer);
    let traced_allocs = allocations_during(|| {
        engine.run_to_completion_traced(&mut sim, &mut NoopTracer);
    });
    assert_eq!(
        traced_allocs, 0,
        "NoopTracer-instrumented engine loop allocated {traced_allocs} times"
    );
}
