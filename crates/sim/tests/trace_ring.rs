//! Property-based tests for the [`FlightRecorder`] ring buffer: at any
//! capacity, event order is preserved, the newest events win, and the
//! drop count is exact.

use flowcon_sim::time::SimTime;
use flowcon_sim::trace::{FlightRecorder, TraceEvent, TraceKind, TracePhase, Tracer};
use proptest::prelude::*;

fn ev(i: u32) -> TraceEvent {
    TraceEvent {
        at: SimTime::from_micros(i as u64),
        phase: TracePhase::Instant,
        kind: TraceKind::EngineEvent,
        a: i,
        b: 0,
        value: i as f64,
    }
}

proptest! {
    /// Wrap-around keeps exactly the newest `capacity` events in recorded
    /// order, and the drop count is exactly the overflow.
    #[test]
    fn wraparound_keeps_newest_in_order_with_exact_drop_count(
        capacity in 0usize..40,
        n in 0u32..200,
    ) {
        let mut r = FlightRecorder::with_capacity(capacity);
        for i in 0..n {
            r.record(ev(i));
        }
        let held: Vec<u32> = r.iter().map(|e| e.a).collect();
        let kept = (n as usize).min(capacity);
        let expect: Vec<u32> = (n - kept as u32..n).collect();
        prop_assert_eq!(held, expect);
        prop_assert_eq!(r.dropped(), n as u64 - kept as u64);
        prop_assert_eq!(r.len(), kept);
        prop_assert_eq!(r.capacity(), capacity);
    }

    /// Absorbing shards one after another reproduces the sequential
    /// recording of the same event stream, drops included.
    #[test]
    fn absorbing_shards_in_order_equals_sequential_recording(
        splits in prop::collection::vec(1u32..30, 1..6),
        parent_capacity in 1usize..64,
        shard_capacity in 1usize..16,
    ) {
        // One logical stream of events, cut into per-shard chunks.
        let mut sequential = FlightRecorder::with_capacity(parent_capacity);
        let mut merged = FlightRecorder::with_capacity(parent_capacity);
        let mut shard_drops = 0u64;
        let mut next = 0u32;
        for &count in &splits {
            let mut shard = FlightRecorder::with_capacity(shard_capacity);
            for _ in 0..count {
                shard.record(ev(next));
                next += 1;
            }
            shard_drops += shard.dropped();
            // Sequentially record exactly what the shard retained.
            for e in shard.events() {
                sequential.record(e);
            }
            merged.absorb(&mut shard);
            prop_assert!(shard.is_empty());
            prop_assert_eq!(shard.dropped(), 0);
        }
        prop_assert_eq!(merged.events(), sequential.events());
        prop_assert_eq!(merged.dropped(), sequential.dropped() + shard_drops);
    }

    /// `clear` keeps capacity and the drop count but forgets events, and
    /// the ring refills correctly afterwards.
    #[test]
    fn clear_then_refill_behaves_like_fresh(
        capacity in 1usize..24,
        first in 0u32..60,
        second in 0u32..60,
    ) {
        let mut r = FlightRecorder::with_capacity(capacity);
        for i in 0..first {
            r.record(ev(i));
        }
        let dropped_before = r.dropped();
        r.clear();
        prop_assert!(r.is_empty());
        let mut fresh = FlightRecorder::with_capacity(capacity);
        for i in 0..second {
            r.record(ev(i));
            fresh.record(ev(i));
        }
        prop_assert_eq!(r.events(), fresh.events());
        prop_assert_eq!(r.dropped(), dropped_before + fresh.dropped());
    }
}
