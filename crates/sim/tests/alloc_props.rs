//! Property-based tests for the water-filling allocator: the invariants
//! every FlowCon experiment rests on.

use flowcon_sim::alloc::{waterfill_into, waterfill_soft, waterfill_soft_into, WaterfillScratch};
use flowcon_sim::{waterfill, AllocRequest};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = AllocRequest> {
    (0.0f64..=1.5, 0.0f64..=1.2, 0.1f64..=4.0).prop_map(|(limit, demand, weight)| AllocRequest {
        limit,
        demand,
        weight,
    })
}

proptest! {
    /// No container ever exceeds its cap, and capacity is never exceeded.
    #[test]
    fn caps_and_capacity_respected(
        reqs in prop::collection::vec(arb_request(), 0..24),
        capacity in 0.1f64..=16.0,
    ) {
        let a = waterfill(capacity, &reqs);
        prop_assert_eq!(a.rates.len(), reqs.len());
        let total: f64 = a.rates.iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        for (r, q) in a.rates.iter().zip(&reqs) {
            prop_assert!(*r >= 0.0);
            prop_assert!(*r <= q.cap() + 1e-9, "rate {} cap {}", r, q.cap());
        }
    }

    /// Work conservation: if aggregate caps cover the capacity, nothing idles.
    #[test]
    fn work_conserving_when_demand_suffices(
        reqs in prop::collection::vec(arb_request(), 1..24),
        capacity in 0.1f64..=4.0,
    ) {
        let cap_sum: f64 = reqs.iter().map(|q| q.cap()).sum();
        let a = waterfill(capacity, &reqs);
        let total: f64 = a.rates.iter().sum();
        if cap_sum >= capacity {
            prop_assert!((total - capacity).abs() < 1e-6,
                "total {} != capacity {} though caps sum to {}", total, capacity, cap_sum);
        } else {
            prop_assert!((total - cap_sum).abs() < 1e-6,
                "all caps binding: total {} != cap sum {}", total, cap_sum);
        }
    }

    /// Symmetry: identical requests receive identical rates.
    #[test]
    fn equal_requests_equal_rates(
        q in arb_request(),
        n in 1usize..16,
        capacity in 0.1f64..=4.0,
    ) {
        let reqs = vec![q; n];
        let a = waterfill(capacity, &reqs);
        for w in a.rates.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9, "{:?}", a.rates);
        }
    }

    /// Raising one container's limit never reduces its own allocation.
    #[test]
    fn limit_monotonicity(
        mut reqs in prop::collection::vec(arb_request(), 1..12),
        idx in 0usize..12,
        bump in 0.0f64..=1.0,
        capacity in 0.5f64..=2.0,
    ) {
        let idx = idx % reqs.len();
        let before = waterfill(capacity, &reqs);
        reqs[idx].limit += bump;
        let after = waterfill(capacity, &reqs);
        prop_assert!(after.rates[idx] >= before.rates[idx] - 1e-9,
            "raising a limit lowered the rate: {} -> {}", before.rates[idx], after.rates[idx]);
    }

    /// Idle + total always equals capacity (up to fp error) when inputs sane.
    #[test]
    fn idle_accounting(
        reqs in prop::collection::vec(arb_request(), 0..16),
        capacity in 0.1f64..=4.0,
    ) {
        let a = waterfill(capacity, &reqs);
        prop_assert!((a.total + a.idle - capacity).abs() < 1e-6);
    }

    /// Determinism: same inputs, same outputs.
    #[test]
    fn deterministic(
        reqs in prop::collection::vec(arb_request(), 0..16),
        capacity in 0.1f64..=4.0,
    ) {
        let a = waterfill(capacity, &reqs);
        let b = waterfill(capacity, &reqs);
        prop_assert_eq!(a, b);
    }

    /// Equal treatment of equals: two identical requests embedded anywhere
    /// in a random set receive bit-identical rates.
    #[test]
    fn equal_requests_treated_equally_in_mixed_sets(
        mut reqs in prop::collection::vec(arb_request(), 2..20),
        twin in arb_request(),
        positions in (0usize..20, 0usize..20),
        capacity in 0.1f64..=4.0,
    ) {
        let i = positions.0 % reqs.len();
        let mut j = positions.1 % reqs.len();
        if i == j {
            j = (j + 1) % reqs.len();
        }
        reqs[i] = twin;
        reqs[j] = twin;
        let a = waterfill(capacity, &reqs);
        prop_assert!(
            (a.rates[i] - a.rates[j]).abs() < 1e-9,
            "equal requests, unequal rates: {} vs {}",
            a.rates[i],
            a.rates[j]
        );
    }

    /// Bit-identity: `waterfill_into` with a continuously reused scratch
    /// (warm order cache, early exits, shrink/grow) returns exactly the
    /// rates of the allocating `waterfill`, round after round.
    #[test]
    fn scratch_reuse_bit_identical_to_allocating(
        rounds in prop::collection::vec(prop::collection::vec(arb_request(), 0..24), 1..8),
        capacity in 0.1f64..=4.0,
    ) {
        let mut scratch = WaterfillScratch::new();
        for reqs in &rounds {
            let totals = waterfill_into(&mut scratch, capacity, reqs);
            let fresh = waterfill(capacity, reqs);
            prop_assert_eq!(scratch.rates().len(), fresh.rates.len());
            for (a, b) in scratch.rates().iter().zip(&fresh.rates) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} != {}", a, b);
            }
            prop_assert_eq!(totals.total.to_bits(), fresh.total.to_bits());
            prop_assert_eq!(totals.idle.to_bits(), fresh.idle.to_bits());
        }
    }

    /// Bit-identity under steady-state limit drift: only limits move between
    /// rounds (the Algorithm 1 pattern), which exercises the warm-order
    /// revalidation path specifically.
    #[test]
    fn warm_cache_bit_identical_under_limit_drift(
        base in prop::collection::vec(arb_request(), 1..24),
        drifts in prop::collection::vec((0usize..24, -0.3f64..=0.3), 1..16),
        capacity in 0.1f64..=4.0,
    ) {
        let mut reqs = base;
        let mut scratch = WaterfillScratch::new();
        for (idx, delta) in drifts {
            let i = idx % reqs.len();
            reqs[i].limit = (reqs[i].limit + delta).clamp(0.0, 1.5);
            waterfill_into(&mut scratch, capacity, &reqs);
            let fresh = waterfill(capacity, &reqs);
            for (a, b) in scratch.rates().iter().zip(&fresh.rates) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} != {}", a, b);
            }
        }
    }

    /// The soft (demand top-up) scratch path is bit-identical too.
    #[test]
    fn soft_scratch_reuse_bit_identical(
        rounds in prop::collection::vec(prop::collection::vec(arb_request(), 0..16), 1..8),
        capacity in 0.1f64..=4.0,
    ) {
        let mut scratch = WaterfillScratch::new();
        for reqs in &rounds {
            let totals = waterfill_soft_into(&mut scratch, capacity, reqs);
            let fresh = waterfill_soft(capacity, reqs);
            prop_assert_eq!(scratch.rates().len(), fresh.rates.len());
            for (a, b) in scratch.rates().iter().zip(&fresh.rates) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} != {}", a, b);
            }
            prop_assert_eq!(totals.total.to_bits(), fresh.total.to_bits());
        }
    }

    /// The scratch entry point upholds the allocator invariants directly
    /// (cap respect, capacity respect, work conservation).
    #[test]
    fn scratch_caps_capacity_and_conservation(
        reqs in prop::collection::vec(arb_request(), 0..24),
        capacity in 0.1f64..=4.0,
    ) {
        let mut scratch = WaterfillScratch::new();
        let totals = waterfill_into(&mut scratch, capacity, &reqs);
        let total: f64 = scratch.rates().iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        for (r, q) in scratch.rates().iter().zip(&reqs) {
            prop_assert!(*r >= 0.0);
            prop_assert!(*r <= q.cap() + 1e-9, "rate {} cap {}", r, q.cap());
        }
        let cap_sum: f64 = reqs.iter().map(|q| q.cap()).sum();
        if cap_sum >= capacity {
            prop_assert!((total - capacity).abs() < 1e-6);
        }
        prop_assert!((totals.total + totals.idle - capacity).abs() < 1e-6);
    }
}
