//! Property-based tests for the water-filling allocator: the invariants
//! every FlowCon experiment rests on.

use flowcon_sim::{waterfill, AllocRequest};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = AllocRequest> {
    (0.0f64..=1.5, 0.0f64..=1.2, 0.1f64..=4.0).prop_map(|(limit, demand, weight)| AllocRequest {
        limit,
        demand,
        weight,
    })
}

proptest! {
    /// No container ever exceeds its cap, and capacity is never exceeded.
    #[test]
    fn caps_and_capacity_respected(
        reqs in prop::collection::vec(arb_request(), 0..24),
        capacity in 0.1f64..=16.0,
    ) {
        let a = waterfill(capacity, &reqs);
        prop_assert_eq!(a.rates.len(), reqs.len());
        let total: f64 = a.rates.iter().sum();
        prop_assert!(total <= capacity + 1e-9);
        for (r, q) in a.rates.iter().zip(&reqs) {
            prop_assert!(*r >= 0.0);
            prop_assert!(*r <= q.cap() + 1e-9, "rate {} cap {}", r, q.cap());
        }
    }

    /// Work conservation: if aggregate caps cover the capacity, nothing idles.
    #[test]
    fn work_conserving_when_demand_suffices(
        reqs in prop::collection::vec(arb_request(), 1..24),
        capacity in 0.1f64..=4.0,
    ) {
        let cap_sum: f64 = reqs.iter().map(|q| q.cap()).sum();
        let a = waterfill(capacity, &reqs);
        let total: f64 = a.rates.iter().sum();
        if cap_sum >= capacity {
            prop_assert!((total - capacity).abs() < 1e-6,
                "total {} != capacity {} though caps sum to {}", total, capacity, cap_sum);
        } else {
            prop_assert!((total - cap_sum).abs() < 1e-6,
                "all caps binding: total {} != cap sum {}", total, cap_sum);
        }
    }

    /// Symmetry: identical requests receive identical rates.
    #[test]
    fn equal_requests_equal_rates(
        q in arb_request(),
        n in 1usize..16,
        capacity in 0.1f64..=4.0,
    ) {
        let reqs = vec![q; n];
        let a = waterfill(capacity, &reqs);
        for w in a.rates.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9, "{:?}", a.rates);
        }
    }

    /// Raising one container's limit never reduces its own allocation.
    #[test]
    fn limit_monotonicity(
        mut reqs in prop::collection::vec(arb_request(), 1..12),
        idx in 0usize..12,
        bump in 0.0f64..=1.0,
        capacity in 0.5f64..=2.0,
    ) {
        let idx = idx % reqs.len();
        let before = waterfill(capacity, &reqs);
        reqs[idx].limit += bump;
        let after = waterfill(capacity, &reqs);
        prop_assert!(after.rates[idx] >= before.rates[idx] - 1e-9,
            "raising a limit lowered the rate: {} -> {}", before.rates[idx], after.rates[idx]);
    }

    /// Idle + total always equals capacity (up to fp error) when inputs sane.
    #[test]
    fn idle_accounting(
        reqs in prop::collection::vec(arb_request(), 0..16),
        capacity in 0.1f64..=4.0,
    ) {
        let a = waterfill(capacity, &reqs);
        prop_assert!((a.total + a.idle - capacity).abs() < 1e-6);
    }

    /// Determinism: same inputs, same outputs.
    #[test]
    fn deterministic(
        reqs in prop::collection::vec(arb_request(), 0..16),
        capacity in 0.1f64..=4.0,
    ) {
        let a = waterfill(capacity, &reqs);
        let b = waterfill(capacity, &reqs);
        prop_assert_eq!(a, b);
    }
}
