//! Deterministic, splittable random number generation.
//!
//! Experiments must be bit-for-bit reproducible from a single `u64` seed, and
//! independently parallelizable (parameter sweeps run one simulation per
//! thread).  We therefore implement **xoshiro256++** (Blackman & Vigna) with a
//! SplitMix64 seeder from scratch — ~60 lines, no dependency, and a `split`
//! operation that derives statistically independent child streams for
//! sub-components (one per container, one per workload, ...).

/// A xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from Box–Muller.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl SimRng {
    /// Create a generator from a seed.  Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Derive an independent child generator.
    ///
    /// Mixes the parent's next output through SplitMix64 so that child
    /// streams do not overlap the parent stream in practice.  Used to hand
    /// each container / workload its own noise source so adding a job never
    /// perturbs the randomness seen by existing jobs.
    pub fn split(&mut self) -> SimRng {
        let mut sm = self.next_u64() ^ 0xA076_1D64_78BD_642F;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.  `lo` must be `<= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`.  `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo {lo} > hi {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal variate (Box–Muller, cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln(u) is finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential variate with the given rate `lambda`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.f64();
        -u.ln() / lambda
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_of_parent_future() {
        let mut parent = SimRng::new(7);
        let mut child = parent.split();
        let child_vals: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        let parent_vals: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        assert_ne!(child_vals, parent_vals);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut r = SimRng::new(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = SimRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_u64(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }
}
