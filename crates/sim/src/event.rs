//! The discrete-event priority queue.
//!
//! Events are ordered by their timestamp; events scheduled for the same
//! instant pop in FIFO order of scheduling (a monotone sequence number breaks
//! ties), so simulations are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: `(when, seq)` keys a payload.
struct Entry<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` to fire at `when`.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { when, seq, payload });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.when)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.when, e.payload))
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run-away diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(4));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is a lifetime counter, unaffected by clear.
        assert_eq!(q.scheduled_total(), 2);
    }
}
