//! The discrete-event priority queue.
//!
//! Events are ordered by their timestamp; events scheduled for the same
//! instant pop in FIFO order of scheduling (a monotone sequence number breaks
//! ties), so simulations are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: `(when, seq)` keys a payload.
struct Entry<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .when
            .cmp(&self.when)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` to fire at `when`.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { when, seq, payload });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.when)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.when, e.payload))
    }

    /// Remove and return the earliest event **iff** it fires at or before
    /// `horizon` — the engine's fused peek/pop fast path.
    ///
    /// A dispatch loop built on `peek_time` + `pop` touches the heap twice
    /// per event; this does one sift-down via [`std::collections::binary_heap::PeekMut`],
    /// and costs only an O(1) root inspection when the next event lies
    /// beyond the horizon.
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let entry = self.heap.peek_mut()?;
        if entry.when > horizon {
            return None;
        }
        let e = std::collections::binary_heap::PeekMut::pop(entry);
        Some((e.when, e.payload))
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run-away diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(4));
    }

    #[test]
    fn pop_if_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4), "later");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "soon"))
        );
        // Next event is beyond the horizon: nothing popped, queue intact.
        assert_eq!(q.pop_if_at_or_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(4)),
            Some((SimTime::from_secs(4), "later"))
        );
        assert_eq!(q.pop_if_at_or_before(SimTime::MAX), None, "empty queue");
    }

    #[test]
    fn pop_if_at_or_before_keeps_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..5 {
            q.schedule(t, i);
        }
        let order: Vec<i32> =
            std::iter::from_fn(|| q.pop_if_at_or_before(t).map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is a lifetime counter, unaffected by clear.
        assert_eq!(q.scheduled_total(), 2);
    }
}
