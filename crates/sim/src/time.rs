//! Virtual time.
//!
//! The simulation clock counts integer **microseconds** from the start of an
//! experiment.  Integer time gives a total order (no NaN, no float drift in
//! comparisons) which keeps the event queue deterministic across platforms,
//! while one-microsecond resolution is far below anything the FlowCon
//! executor (intervals of tens of seconds) can observe.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock (microseconds since t=0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime(0);
        }
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating doubling — used by the executor's exponential back-off.
    pub fn saturating_double(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_millis(250).as_micros(), 250_000);
    }

    #[test]
    fn negative_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(SimTime::from_secs(14) - t, d);
        // Saturating subtraction: earlier - later == 0.
        assert_eq!(t - SimTime::from_secs(14), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn backoff_doubling_saturates() {
        let mut d = SimDuration::from_secs(20);
        for _ in 0..100 {
            d = d.saturating_double();
        }
        assert_eq!(d.as_micros(), u64::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }
}
