//! Deterministic structured tracing: the [`Tracer`] layer.
//!
//! Mirrors the recorder pattern used for metrics: a monomorphized trait
//! with a zero-cost default ([`NoopTracer`], `ENABLED = false`, every
//! call compiles away) and one real implementation ([`FlightRecorder`],
//! a preallocated fixed-capacity ring buffer of POD [`TraceEvent`]s).
//!
//! Determinism rule: trace timestamps are **sim-time only** — never wall
//! clocks — so a trace is a pure function of the run's configuration and
//! seed.  Per-shard recorders (see [`Tracer::fork`]) are merged back in a
//! stable worker order, which makes sharded and sequential executions of
//! the same run produce bit-identical event sequences.
//!
//! When a [`FlightRecorder`] wraps, the *oldest* events are overwritten
//! and every overwrite is counted ([`FlightRecorder::dropped`]) so
//! exporters can report truncation instead of hiding it.

use crate::time::SimTime;

/// The Chrome-trace-style phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TracePhase {
    /// A span opens (`ph: "B"`).
    Begin,
    /// A span closes (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`); the sample is in
    /// [`TraceEvent::value`].
    Counter,
}

/// What a [`TraceEvent`] describes.  The integer payload fields `a`/`b`
/// of the event are interpreted per kind (job ids, node ids, queue
/// depths); see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// Engine layer: virtual time advanced from the span's `Begin`
    /// timestamp to its `End` timestamp while moving to the next event.
    EngineAdvance,
    /// Engine layer: one event was popped and dispatched (`a` = low 32
    /// bits of the running event count).
    EngineEvent,
    /// A job was admitted to a worker or node (`a` = job/container id,
    /// `b` = node id in cluster traces).
    JobAdmit,
    /// A job is occupying a slot: span from placement to exit or
    /// preemption (`a` = job/container id, `b` = node id in cluster
    /// traces).
    JobRun,
    /// A job finished (`a` = job/container id, `b` = exit code on a
    /// worker, node id in cluster traces).
    JobComplete,
    /// Policy layer: a reconfiguration pass ran (`a` = live containers,
    /// `b` = node trace id in cluster traces).
    Reconfigure,
    /// Policy layer: cumulative water-filling invocations (`a` = node
    /// trace id in cluster traces; the count is in
    /// [`TraceEvent::value`]).
    Waterfill,
    /// Scheduler layer: one barrier quantum: span from the decision
    /// point to the barrier (`a` = admission-queue depth at decision
    /// time, `b` = running jobs).
    SchedBarrier,
    /// Scheduler layer: a placement decision (`a` = job gid, `b` =
    /// node).
    SchedPlace,
    /// Scheduler layer: a preemption decision (`a` = job gid, `b` =
    /// node it was evicted from).
    SchedPreempt,
    /// Scheduler layer: a migration decision (`a` = job gid, `b` =
    /// destination node).
    SchedMigrate,
    /// Scheduler layer: admission-queue depth after a barrier's actions
    /// (the depth is in [`TraceEvent::value`]).
    QueueDepth,
}

impl TraceKind {
    /// Every kind, in declaration order (stable: export summaries
    /// iterate this).
    pub const ALL: [TraceKind; 12] = [
        TraceKind::EngineAdvance,
        TraceKind::EngineEvent,
        TraceKind::JobAdmit,
        TraceKind::JobRun,
        TraceKind::JobComplete,
        TraceKind::Reconfigure,
        TraceKind::Waterfill,
        TraceKind::SchedBarrier,
        TraceKind::SchedPlace,
        TraceKind::SchedPreempt,
        TraceKind::SchedMigrate,
        TraceKind::QueueDepth,
    ];

    /// Stable display name (the Chrome trace `name` field).
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::EngineAdvance => "engine.advance",
            TraceKind::EngineEvent => "engine.event",
            TraceKind::JobAdmit => "job.admit",
            TraceKind::JobRun => "job.run",
            TraceKind::JobComplete => "job.complete",
            TraceKind::Reconfigure => "policy.reconfigure",
            TraceKind::Waterfill => "policy.waterfill",
            TraceKind::SchedBarrier => "sched.barrier",
            TraceKind::SchedPlace => "sched.place",
            TraceKind::SchedPreempt => "sched.preempt",
            TraceKind::SchedMigrate => "sched.migrate",
            TraceKind::QueueDepth => "sched.queue_depth",
        }
    }

    /// Stable category name (the Chrome trace `cat` field): which layer
    /// emitted events of this kind.
    pub const fn layer(self) -> &'static str {
        match self {
            TraceKind::EngineAdvance | TraceKind::EngineEvent => "engine",
            TraceKind::JobAdmit | TraceKind::JobRun | TraceKind::JobComplete => "job",
            TraceKind::Reconfigure | TraceKind::Waterfill => "policy",
            TraceKind::SchedBarrier
            | TraceKind::SchedPlace
            | TraceKind::SchedPreempt
            | TraceKind::SchedMigrate
            | TraceKind::QueueDepth => "sched",
        }
    }
}

/// One plain-old-data trace record.
///
/// Fixed-size and `Copy` so a [`FlightRecorder`] ring is a single flat
/// preallocation and recording an event is a store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Sim-time timestamp (never wall-clock).
    pub at: SimTime,
    /// Span/instant/counter discriminator.
    pub phase: TracePhase,
    /// What happened.
    pub kind: TraceKind,
    /// First integer payload (typically a job/container id).
    pub a: u32,
    /// Second integer payload (typically a node id or exit code).
    pub b: u32,
    /// Counter payload (0.0 for non-counter events).
    pub value: f64,
}

/// A sink for [`TraceEvent`]s, monomorphized into every instrumented
/// loop.
///
/// The `ENABLED` associated const lets instrumentation sites guard event
/// construction with `if T::ENABLED { … }`: with [`NoopTracer`] the
/// branch is constant-false and the whole site compiles away, which is
/// what keeps the zero-allocation warm paths at their pinned budgets.
pub trait Tracer: Sized {
    /// Whether this tracer records anything at all.
    const ENABLED: bool;

    /// Record one event.  Must not allocate on the hot path.
    fn record(&mut self, event: TraceEvent);

    /// An empty tracer of the same configuration, for a per-shard
    /// recorder that will later be [`absorb`](Tracer::absorb)ed back.
    fn fork(&self) -> Self;

    /// Drain `other`'s events into `self` in their recorded order and
    /// take over its drop count, leaving `other` empty.  Callers absorb
    /// shards in a stable (worker-index) order, which is what makes
    /// sharded and sequential runs produce identical merged sequences.
    fn absorb(&mut self, other: &mut Self);

    /// Open a span of `kind` at `at`.
    #[inline]
    fn span_begin(&mut self, at: SimTime, kind: TraceKind, a: u32, b: u32) {
        if Self::ENABLED {
            self.record(TraceEvent {
                at,
                phase: TracePhase::Begin,
                kind,
                a,
                b,
                value: 0.0,
            });
        }
    }

    /// Close a span of `kind` at `at`.
    #[inline]
    fn span_end(&mut self, at: SimTime, kind: TraceKind, a: u32, b: u32) {
        if Self::ENABLED {
            self.record(TraceEvent {
                at,
                phase: TracePhase::End,
                kind,
                a,
                b,
                value: 0.0,
            });
        }
    }

    /// Record a point-in-time marker.
    #[inline]
    fn instant(&mut self, at: SimTime, kind: TraceKind, a: u32, b: u32) {
        if Self::ENABLED {
            self.record(TraceEvent {
                at,
                phase: TracePhase::Instant,
                kind,
                a,
                b,
                value: 0.0,
            });
        }
    }

    /// Record a counter sample.
    #[inline]
    fn counter(&mut self, at: SimTime, kind: TraceKind, a: u32, value: f64) {
        if Self::ENABLED {
            self.record(TraceEvent {
                at,
                phase: TracePhase::Counter,
                kind,
                a,
                b: 0,
                value,
            });
        }
    }
}

/// The default tracer: records nothing, costs nothing.
///
/// A zero-sized type with `ENABLED = false`, so every instrumentation
/// site guarded by `if T::ENABLED` is dead code after monomorphization —
/// the property the counting-allocator pins in `headless_allocs.rs`
/// assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline]
    fn record(&mut self, _event: TraceEvent) {}

    #[inline]
    fn fork(&self) -> Self {
        NoopTracer
    }

    #[inline]
    fn absorb(&mut self, _other: &mut Self) {}
}

/// Per-shard fork capacity cap: a forked [`FlightRecorder`] only buffers
/// one shard's events between merges, so it gets a small ring regardless
/// of how large the parent is (but never larger than the parent).
pub const FORK_CAPACITY: usize = 1024;

/// Default ring capacity for a [`FlightRecorder`] built with
/// [`Default::default`] (also the `repro timeline --capacity` default).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// A fixed-capacity flight recorder: a preallocated ring buffer of
/// [`TraceEvent`]s.
///
/// All storage is allocated up front in
/// [`with_capacity`](FlightRecorder::with_capacity); recording never
/// allocates.  When
/// the ring is full the **oldest** event is overwritten and the
/// [`dropped`](FlightRecorder::dropped) count is incremented — exporters
/// surface that count so truncation is never silent.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    /// Flat storage; `len() < capacity` while the ring is filling.
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Configured capacity (fixed for the recorder's lifetime).
    capacity: usize,
    /// Exact number of events overwritten (lost) to wrap-around.
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder with room for exactly `capacity` events, allocated up
    /// front.  A zero capacity records nothing and counts every event as
    /// dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact number of events lost to wrap-around (or to a zero
    /// capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events as two slices, oldest first: `first` then
    /// `second` is recorded order.
    pub fn as_slices(&self) -> (&[TraceEvent], &[TraceEvent]) {
        let (second, first) = self.buf.split_at(self.head);
        (first, second)
    }

    /// Iterate the held events oldest → newest without allocating.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (first, second) = self.as_slices();
        first.iter().chain(second.iter())
    }

    /// The held events, oldest first, as an owned vector.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }

    /// Forget all held events (capacity and drop count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer for FlightRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.capacity {
            // Still filling the preallocation: a push into reserved
            // space, no reallocation.
            self.buf.push(event);
        } else {
            // Full: overwrite the oldest and advance the ring head.
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn fork(&self) -> Self {
        FlightRecorder::with_capacity(self.capacity.min(FORK_CAPACITY))
    }

    fn absorb(&mut self, other: &mut Self) {
        let (first, second) = other.as_slices();
        // `self` and `other` are distinct recorders, so re-recording
        // preserves order and lets `self`'s own wrap accounting apply.
        let mut moved = Vec::new();
        if self.capacity >= other.buf.len() + self.buf.len() && self.head == 0 {
            // Fast path: everything fits without wrapping.
            self.buf.extend_from_slice(first);
            self.buf.extend_from_slice(second);
        } else {
            moved.extend_from_slice(first);
            moved.extend_from_slice(second);
            for e in moved {
                self.record(e);
            }
        }
        self.dropped += other.dropped;
        other.dropped = 0;
        other.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(i as u64),
            phase: TracePhase::Instant,
            kind: TraceKind::EngineEvent,
            a: i,
            b: 0,
            value: 0.0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops_exactly() {
        let mut r = FlightRecorder::with_capacity(3);
        for i in 0..7 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let held: Vec<u32> = r.iter().map(|e| e.a).collect();
        assert_eq!(held, vec![4, 5, 6]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = FlightRecorder::with_capacity(0);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 5);
    }

    #[test]
    fn recording_never_allocates_after_construction() {
        let mut r = FlightRecorder::with_capacity(4);
        let base = r.buf.as_ptr();
        for i in 0..100 {
            r.record(ev(i));
        }
        // The ring never reallocated its storage.
        assert_eq!(r.buf.as_ptr(), base);
        assert_eq!(r.buf.capacity(), 4);
    }

    #[test]
    fn fork_is_empty_and_capped() {
        let parent = FlightRecorder::with_capacity(1 << 20);
        let child = parent.fork();
        assert!(child.is_empty());
        assert_eq!(child.capacity(), FORK_CAPACITY);
        let small = FlightRecorder::with_capacity(8);
        assert_eq!(small.fork().capacity(), 8);
    }

    #[test]
    fn absorb_appends_in_order_and_moves_drop_counts() {
        let mut a = FlightRecorder::with_capacity(16);
        a.record(ev(0));
        let mut b = FlightRecorder::with_capacity(2);
        for i in 10..15 {
            b.record(ev(i));
        }
        assert_eq!(b.dropped(), 3);
        a.absorb(&mut b);
        let held: Vec<u32> = a.iter().map(|e| e.a).collect();
        assert_eq!(held, vec![0, 13, 14]);
        assert_eq!(a.dropped(), 3);
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn absorb_into_wrapped_parent_preserves_order() {
        let mut a = FlightRecorder::with_capacity(3);
        for i in 0..4 {
            a.record(ev(i)); // wrapped: holds 1,2,3, head != 0
        }
        let mut b = FlightRecorder::with_capacity(4);
        b.record(ev(9));
        a.absorb(&mut b);
        let held: Vec<u32> = a.iter().map(|e| e.a).collect();
        assert_eq!(held, vec![2, 3, 9]);
        assert_eq!(a.dropped(), 2);
    }

    #[test]
    fn noop_tracer_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
        let mut t = NoopTracer;
        t.span_begin(SimTime::ZERO, TraceKind::JobRun, 1, 2);
        t.counter(SimTime::ZERO, TraceKind::Waterfill, 0, 1.0);
        let mut other = t.fork();
        t.absorb(&mut other);
    }

    #[test]
    fn helper_methods_fill_fields() {
        let mut r = FlightRecorder::with_capacity(8);
        let t = SimTime::from_micros(42);
        r.span_begin(t, TraceKind::JobRun, 7, 3);
        r.span_end(t, TraceKind::JobRun, 7, 3);
        r.instant(t, TraceKind::JobComplete, 7, 0);
        r.counter(t, TraceKind::QueueDepth, 0, 5.0);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].phase, TracePhase::Begin);
        assert_eq!(evs[1].phase, TracePhase::End);
        assert_eq!(evs[2].phase, TracePhase::Instant);
        assert_eq!(evs[3].phase, TracePhase::Counter);
        assert_eq!(evs[3].value, 5.0);
        assert!(evs.iter().all(|e| e.at == t));
    }

    #[test]
    fn kind_names_and_layers_are_stable() {
        for kind in TraceKind::ALL {
            assert!(!kind.name().is_empty());
            assert!(matches!(
                kind.layer(),
                "engine" | "job" | "policy" | "sched"
            ));
        }
        assert_eq!(TraceKind::SchedPlace.name(), "sched.place");
        assert_eq!(TraceKind::SchedPlace.layer(), "sched");
    }
}
