//! Resource vocabulary.
//!
//! FlowCon's container monitor records four resources per container
//! (paper §3.2.1): CPU, memory, block I/O and network I/O.  The evaluation
//! focuses on CPU because DL training jobs are compute-bound (§5.2), and the
//! algorithms here do the same, but the data model carries all four so the
//! growth-efficiency metric (Eq. 2) can be computed per resource kind.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul};

/// The resource kinds tracked per container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// CPU, expressed as a fraction of one node's compute capacity.
    Cpu,
    /// Memory, expressed as a fraction of the node's memory.
    Memory,
    /// Block I/O bandwidth fraction.
    BlkIo,
    /// Network I/O bandwidth fraction.
    NetIo,
}

/// All resource kinds, in canonical order.
pub const RESOURCE_KINDS: [ResourceKind; 4] = [
    ResourceKind::Cpu,
    ResourceKind::Memory,
    ResourceKind::BlkIo,
    ResourceKind::NetIo,
];

impl ResourceKind {
    /// Canonical index of this kind in a [`ResourceVec`].
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::BlkIo => 2,
            ResourceKind::NetIo => 3,
        }
    }

    /// Human-readable name as used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::BlkIo => "blkio",
            ResourceKind::NetIo => "netio",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A small fixed-size vector with one `f64` per resource kind.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVec([f64; 4]);

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; 4]);

    /// A vector with every component set to `v`.
    pub const fn splat(v: f64) -> Self {
        ResourceVec([v; 4])
    }

    /// A vector with only the CPU component set.
    pub const fn cpu(v: f64) -> Self {
        ResourceVec([v, 0.0, 0.0, 0.0])
    }

    /// Build from explicit components (cpu, memory, blkio, netio).
    pub const fn new(cpu: f64, memory: f64, blkio: f64, netio: f64) -> Self {
        ResourceVec([cpu, memory, blkio, netio])
    }

    /// Component accessor.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.0[kind.index()]
    }

    /// Set one component.
    pub fn set(&mut self, kind: ResourceKind, v: f64) {
        self.0[kind.index()] = v;
    }

    /// Component-wise scaling.
    pub fn scale(&self, k: f64) -> ResourceVec {
        ResourceVec([self.0[0] * k, self.0[1] * k, self.0[2] * k, self.0[3] * k])
    }

    /// True if every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|x| x.is_finite() && *x >= 0.0)
    }

    /// Component-wise maximum with another vector.
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        ResourceVec([
            self.0[0].max(other.0[0]),
            self.0[1].max(other.0[1]),
            self.0[2].max(other.0[2]),
            self.0[3].max(other.0[3]),
        ])
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = f64;
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.0[kind.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, k: f64) -> ResourceVec {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_canonical_and_distinct() {
        let mut seen = [false; 4];
        for kind in RESOURCE_KINDS {
            assert!(!seen[kind.index()], "duplicate index for {kind}");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVec::new(0.5, 0.25, 0.0, 0.1);
        let b = ResourceVec::splat(0.1);
        let c = a + b;
        assert!((c.get(ResourceKind::Cpu) - 0.6).abs() < 1e-12);
        assert!((c.get(ResourceKind::Memory) - 0.35).abs() < 1e-12);
        let d = a * 2.0;
        assert!((d.get(ResourceKind::Cpu) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_constructor_only_sets_cpu() {
        let v = ResourceVec::cpu(0.7);
        assert_eq!(v.get(ResourceKind::Cpu), 0.7);
        assert_eq!(v.get(ResourceKind::Memory), 0.0);
        assert_eq!(v.get(ResourceKind::BlkIo), 0.0);
        assert_eq!(v.get(ResourceKind::NetIo), 0.0);
    }

    #[test]
    fn validity_checks() {
        assert!(ResourceVec::splat(0.0).is_valid());
        assert!(!ResourceVec::new(-0.1, 0.0, 0.0, 0.0).is_valid());
        assert!(!ResourceVec::new(f64::NAN, 0.0, 0.0, 0.0).is_valid());
    }

    #[test]
    fn index_traits() {
        let mut v = ResourceVec::ZERO;
        v[ResourceKind::NetIo] = 0.9;
        assert_eq!(v[ResourceKind::NetIo], 0.9);
        v.set(ResourceKind::BlkIo, 0.2);
        assert_eq!(v.get(ResourceKind::BlkIo), 0.2);
    }
}
