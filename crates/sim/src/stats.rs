//! Time-weighted accumulation of piecewise-constant signals.
//!
//! A fluid simulation advances in irregular steps between events, and most
//! of its state (pool size, allocated CPU rates) is piecewise constant
//! between those steps.  Steady-state metrics over such a signal — mean
//! queue depth, utilization — are time integrals, not sample averages: a
//! value that held for 100 s must weigh 100× more than one that held for
//! 1 s.  [`TimeWeighted`] is the accumulator for exactly that pattern; the
//! FlowCon worker threads one through its `advance_to` integration step to
//! produce open-loop steady-state statistics without retaining any series.

/// Accumulates `∫ value · dt` over a piecewise-constant signal.
///
/// The caller reports each constant segment as `(value, dt)`; the
/// accumulator keeps only the running area, so it costs two `f64`
/// operations per segment and no allocation — fit for the simulation hot
/// path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeWeighted {
    area: f64,
}

impl TimeWeighted {
    /// An empty accumulator (zero area).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one constant segment: the signal held `value` for `dt_secs`
    /// seconds.  Non-positive durations contribute nothing (events at the
    /// same instant advance no time).
    pub fn accumulate(&mut self, value: f64, dt_secs: f64) {
        if dt_secs > 0.0 {
            self.area += value * dt_secs;
        }
    }

    /// The accumulated `∫ value · dt` in value-seconds.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// The time-weighted mean over a window of `duration_secs` seconds
    /// (zero for an empty window).
    pub fn mean_over(&self, duration_secs: f64) -> f64 {
        if duration_secs > 0.0 {
            self.area / duration_secs
        } else {
            0.0
        }
    }

    /// Reset to zero (for accumulator reuse across runs).
    pub fn reset(&mut self) {
        self.area = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_integrates_piecewise_segments() {
        let mut acc = TimeWeighted::new();
        acc.accumulate(2.0, 10.0); // 20
        acc.accumulate(0.5, 4.0); // 2
        acc.accumulate(0.0, 100.0); // idle contributes nothing
        assert!((acc.area() - 22.0).abs() < 1e-12);
        assert!((acc.mean_over(114.0) - 22.0 / 114.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_negative_durations_are_ignored() {
        let mut acc = TimeWeighted::new();
        acc.accumulate(5.0, 0.0);
        acc.accumulate(5.0, -1.0);
        assert_eq!(acc.area(), 0.0);
        assert_eq!(acc.mean_over(0.0), 0.0, "empty window has mean 0");
    }

    #[test]
    fn reset_clears_the_area() {
        let mut acc = TimeWeighted::new();
        acc.accumulate(1.0, 3.0);
        acc.reset();
        assert_eq!(acc.area(), 0.0);
        assert_eq!(acc, TimeWeighted::new());
    }
}
