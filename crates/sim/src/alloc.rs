//! Water-filling CPU allocation with Docker-style *soft* limits.
//!
//! The paper relies on two properties of `docker update` limits (§4.1):
//!
//! 1. A limit caps the share a container may claim, and
//! 2. limits are **soft**: capacity a container cannot use (because of its
//!    limit *or* because the workload cannot scale past its own parallelism
//!    ceiling) is redistributed to the other runnable containers.
//!
//! Property 2 is why the sum of FlowCon limits may exceed 1 (§5.4) and why
//! the `1/(β·n)` lower bound never strands capacity.  Both properties are
//! exactly *progressive filling*: starting from an equal split, containers
//! whose effective cap is below their fair share are pinned at the cap and
//! the slack is re-split among the rest.
//!
//! The allocator is the innermost loop of every experiment, so it works on
//! caller-provided request slices, allocates only one scratch vector, and is
//! `O(n log n)` in the number of runnable containers.

/// One runnable container's view of the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocRequest {
    /// Soft limit as a fraction of node capacity (`1.0` = unlimited).
    ///
    /// This is what FlowCon's Algorithm 1 writes via `docker update`.
    pub limit: f64,
    /// Demand ceiling: the largest share this workload can actually consume
    /// (DL frameworks rarely saturate a whole node — cf. the paper's Fig. 11
    /// where a lone job uses well under full capacity).
    pub demand: f64,
    /// Scheduling weight for the fair split.  Docker's default gives every
    /// container the same `cpu-shares`, so policies normally leave this at 1.
    pub weight: f64,
}

impl AllocRequest {
    /// A request with the given limit, full demand and unit weight.
    pub fn with_limit(limit: f64) -> Self {
        AllocRequest {
            limit,
            demand: 1.0,
            weight: 1.0,
        }
    }

    /// An unlimited request (the NA baseline) with the given demand ceiling.
    pub fn unlimited(demand: f64) -> Self {
        AllocRequest {
            limit: 1.0,
            demand,
            weight: 1.0,
        }
    }

    /// Effective cap: the binding constraint between limit and demand.
    ///
    /// Non-finite limits or demands yield a zero cap (`f64::min` would
    /// silently discard a NaN operand otherwise).
    pub fn cap(&self) -> f64 {
        if !self.limit.is_finite() || !self.demand.is_finite() {
            return 0.0;
        }
        self.limit.min(self.demand).max(0.0)
    }
}

/// The result of a water-filling round.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-container CPU rate, same order as the request slice.
    pub rates: Vec<f64>,
    /// Total allocated rate (≤ capacity).
    pub total: f64,
    /// Capacity left unallocated because every container hit its cap.
    pub idle: f64,
}

/// Distribute `capacity` over the requests by weighted progressive filling.
///
/// Guarantees (enforced by debug assertions and property tests):
///
/// * `rates[i] <= requests[i].cap() + ε`
/// * `sum(rates) <= capacity + ε`
/// * work conservation: if `sum(caps) >= capacity` then
///   `sum(rates) == capacity` (up to ε)
/// * containers with equal `(limit, demand, weight)` receive equal rates.
///
/// Non-finite or negative inputs are treated as zero; zero-cap containers
/// receive a zero rate.
pub fn waterfill(capacity: f64, requests: &[AllocRequest]) -> Allocation {
    let n = requests.len();
    if n == 0 || capacity <= 0.0 {
        return Allocation {
            rates: vec![0.0; n],
            total: 0.0,
            idle: capacity.max(0.0),
        };
    }

    // Sanitize caps and weights once.
    let mut rates = vec![0.0f64; n];
    // Indices of containers still unfilled, sorted by cap/weight ascending so
    // each filling round can peel off saturated containers in one pass.
    let mut order: Vec<usize> = (0..n).collect();
    let cap = |i: usize| {
        let c = requests[i].cap();
        if c.is_finite() && c > 0.0 {
            c
        } else {
            0.0
        }
    };
    let weight = |i: usize| {
        let w = requests[i].weight;
        if w.is_finite() && w > 0.0 {
            w
        } else {
            0.0
        }
    };
    // Containers with zero cap or zero weight never receive capacity.
    order.retain(|&i| cap(i) > 0.0 && weight(i) > 0.0);
    order.sort_by(|&a, &b| {
        let ka = cap(a) / weight(a);
        let kb = cap(b) / weight(b);
        ka.partial_cmp(&kb)
            .expect("caps and weights sanitized to finite values")
            .then(a.cmp(&b))
    });

    let mut remaining = capacity;
    let mut weight_left: f64 = order.iter().map(|&i| weight(i)).sum();
    let mut start = 0;
    // Progressive filling: the water level is `remaining / weight_left`.  Any
    // container whose cap-per-weight is below the level is pinned at its cap;
    // because `order` is sorted those are exactly a prefix.
    while start < order.len() && remaining > 1e-15 && weight_left > 0.0 {
        let level = remaining / weight_left;
        let i = order[start];
        let per_weight_cap = cap(i) / weight(i);
        if per_weight_cap <= level {
            // Pinned at cap.
            rates[i] = cap(i);
            remaining -= cap(i);
            weight_left -= weight(i);
            start += 1;
        } else {
            // Everyone remaining fits under the level: weighted equal split.
            for &j in &order[start..] {
                rates[j] = level * weight(j);
            }
            break;
        }
    }

    let total: f64 = rates.iter().sum();
    debug_assert!(total <= capacity + 1e-9, "over-allocated: {total}");
    for (i, &r) in rates.iter().enumerate() {
        debug_assert!(
            r <= requests[i].cap() + 1e-9,
            "rate {r} exceeds cap {}",
            requests[i].cap()
        );
    }
    Allocation {
        rates,
        total,
        idle: (capacity - total).max(0.0),
    }
}

/// Water-filling with **truly soft** limits.
///
/// Stage 1 is [`waterfill`] with caps `min(limit, demand)`.  If capacity
/// remains because every cap is satisfied (e.g. every container is
/// throttled), stage 2 redistributes the leftover among containers whose
/// *demand* exceeds their stage-1 allocation — limits bound a container's
/// entitled share under contention, but never leave the node idle while
/// someone is runnable, which is how the paper describes `docker update`
/// limits behaving (§4.1, §5.4).
pub fn waterfill_soft(capacity: f64, requests: &[AllocRequest]) -> Allocation {
    let stage1 = waterfill(capacity, requests);
    if stage1.idle <= 1e-12 {
        return stage1;
    }
    // Stage 2: top up to demand, ignoring limits, weighted as before.
    let top_up: Vec<AllocRequest> = requests
        .iter()
        .zip(&stage1.rates)
        .map(|(q, &r)| {
            let demand = if q.demand.is_finite() { q.demand.max(0.0) } else { 0.0 };
            AllocRequest {
                limit: 1.0,
                demand: (demand - r).max(0.0),
                weight: q.weight,
            }
        })
        .collect();
    let stage2 = waterfill(stage1.idle, &top_up);
    let rates: Vec<f64> = stage1
        .rates
        .iter()
        .zip(&stage2.rates)
        .map(|(&a, &b)| a + b)
        .collect();
    let total: f64 = rates.iter().sum();
    Allocation {
        rates,
        idle: (capacity - total).max(0.0),
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(limit: f64, demand: f64) -> AllocRequest {
        AllocRequest {
            limit,
            demand,
            weight: 1.0,
        }
    }

    #[test]
    fn empty_input_is_all_idle() {
        let a = waterfill(1.0, &[]);
        assert!(a.rates.is_empty());
        assert_eq!(a.idle, 1.0);
    }

    #[test]
    fn single_unlimited_container_gets_its_demand() {
        let a = waterfill(1.0, &[req(1.0, 0.8)]);
        assert!((a.rates[0] - 0.8).abs() < 1e-12);
        assert!((a.idle - 0.2).abs() < 1e-12);
    }

    #[test]
    fn equal_containers_split_equally() {
        let a = waterfill(1.0, &[req(1.0, 1.0); 4]);
        for r in &a.rates {
            assert!((r - 0.25).abs() < 1e-12);
        }
        assert!(a.idle < 1e-12);
    }

    #[test]
    fn paper_fig7_scenario_limit_quarter_vs_one() {
        // §5.3: VAE limited to 0.25, MNIST limit 1 -> 25% / 75% split.
        let a = waterfill(1.0, &[req(0.25, 1.0), req(1.0, 1.0)]);
        assert!((a.rates[0] - 0.25).abs() < 1e-12, "{:?}", a.rates);
        assert!((a.rates[1] - 0.75).abs() < 1e-12, "{:?}", a.rates);
    }

    #[test]
    fn soft_limits_redistribute_unused_capacity() {
        // Three containers limited to 0.2 each plus one unlimited: the
        // unlimited one absorbs the leftover 0.4.
        let a = waterfill(1.0, &[req(0.2, 1.0), req(0.2, 1.0), req(0.2, 1.0), req(1.0, 1.0)]);
        assert!((a.rates[3] - 0.4).abs() < 1e-12, "{:?}", a.rates);
        assert!(a.idle < 1e-12);
    }

    #[test]
    fn demand_ceiling_binds_like_a_limit() {
        // A job that can only use 30% of the node leaves the rest to others.
        let a = waterfill(1.0, &[req(1.0, 0.3), req(1.0, 1.0)]);
        assert!((a.rates[0] - 0.3).abs() < 1e-12);
        assert!((a.rates[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn all_capped_leaves_idle_capacity() {
        let a = waterfill(1.0, &[req(0.1, 1.0), req(0.2, 1.0)]);
        assert!((a.total - 0.3).abs() < 1e-12);
        assert!((a.idle - 0.7).abs() < 1e-12);
    }

    #[test]
    fn weights_bias_the_split() {
        let reqs = [
            AllocRequest {
                limit: 1.0,
                demand: 1.0,
                weight: 3.0,
            },
            AllocRequest {
                limit: 1.0,
                demand: 1.0,
                weight: 1.0,
            },
        ];
        let a = waterfill(1.0, &reqs);
        assert!((a.rates[0] - 0.75).abs() < 1e-12);
        assert!((a.rates[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_or_invalid_requests_get_nothing() {
        let reqs = [
            req(0.0, 1.0),
            AllocRequest {
                limit: f64::NAN,
                demand: 1.0,
                weight: 1.0,
            },
            req(1.0, 1.0),
        ];
        let a = waterfill(1.0, &reqs);
        assert_eq!(a.rates[0], 0.0);
        assert_eq!(a.rates[1], 0.0);
        assert!((a.rates[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_other_than_one() {
        // An 8-core node expressed in cores instead of fractions.
        let a = waterfill(8.0, &[req(2.0, 8.0), req(8.0, 8.0)]);
        assert!((a.rates[0] - 2.0).abs() < 1e-12);
        assert!((a.rates[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn soft_waterfill_matches_hard_when_caps_cover_capacity() {
        let reqs = [req(0.25, 1.0), req(1.0, 1.0)];
        assert_eq!(waterfill_soft(1.0, &reqs), waterfill(1.0, &reqs));
    }

    #[test]
    fn soft_waterfill_redistributes_past_limits_up_to_demand() {
        // Both containers throttled to 0.2, but both could use 0.6: the
        // idle 0.6 splits evenly, 0.5 each — nothing idles while demand
        // remains.
        let reqs = [req(0.2, 0.6), req(0.2, 0.6)];
        let a = waterfill_soft(1.0, &reqs);
        assert!((a.rates[0] - 0.5).abs() < 1e-9, "{:?}", a.rates);
        assert!((a.rates[1] - 0.5).abs() < 1e-9);
        assert!(a.idle < 1e-9, "idle {}", a.idle);
    }

    #[test]
    fn soft_waterfill_respects_demand_ceilings() {
        let reqs = [req(0.1, 0.3), req(0.1, 0.2)];
        let a = waterfill_soft(1.0, &reqs);
        assert!((a.rates[0] - 0.3).abs() < 1e-9);
        assert!((a.rates[1] - 0.2).abs() < 1e-9);
        assert!((a.idle - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sum_of_limits_above_one_is_fine() {
        // §5.4 note: with the β lower bound the limit sum can exceed 1.
        let a = waterfill(1.0, &[req(0.6, 1.0), req(0.6, 1.0), req(0.6, 1.0)]);
        let total: f64 = a.rates.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in &a.rates {
            assert!(*r <= 0.6 + 1e-12);
        }
    }
}
