//! Water-filling CPU allocation with Docker-style *soft* limits.
//!
//! The paper relies on two properties of `docker update` limits (§4.1):
//!
//! 1. A limit caps the share a container may claim, and
//! 2. limits are **soft**: capacity a container cannot use (because of its
//!    limit *or* because the workload cannot scale past its own parallelism
//!    ceiling) is redistributed to the other runnable containers.
//!
//! Property 2 is why the sum of FlowCon limits may exceed 1 (§5.4) and why
//! the `1/(β·n)` lower bound never strands capacity.  Both properties are
//! exactly *progressive filling*: starting from an equal split, containers
//! whose effective cap is below their fair share are pinned at the cap and
//! the slack is re-split among the rest.
//!
//! The allocator is the innermost loop of every experiment — it runs at
//! every monitoring tick, arrival, completion and interrupt — so the hot
//! entry points ([`waterfill_into`] / [`waterfill_soft_into`]) are
//! **allocation-free in steady state**: every buffer lives in a caller-owned
//! [`WaterfillScratch`] that is reused across ticks.  Two structural
//! fast paths keep the common cases cheap:
//!
//! * an `O(n)` **early exit** when `Σcaps ≤ capacity` — every container
//!   simply receives its cap, no sort required (the usual case on an
//!   under-subscribed node);
//! * a **warm order cache**: the cap-per-weight sort order from the previous
//!   round is revalidated in `O(n)` and reused when limit updates did not
//!   change the relative order (the steady-state case between policy
//!   decisions), so the `O(n log n)` sort only runs when the ordering
//!   actually changed.
//!
//! The allocating [`waterfill`] / [`waterfill_soft`] wrappers remain for
//! callers outside the hot path; they delegate to the exact same core, so
//! both entry points are bit-identical by construction.

/// One runnable container's view of the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocRequest {
    /// Soft limit as a fraction of node capacity (`1.0` = unlimited).
    ///
    /// This is what FlowCon's Algorithm 1 writes via `docker update`.
    pub limit: f64,
    /// Demand ceiling: the largest share this workload can actually consume
    /// (DL frameworks rarely saturate a whole node — cf. the paper's Fig. 11
    /// where a lone job uses well under full capacity).
    pub demand: f64,
    /// Scheduling weight for the fair split.  Docker's default gives every
    /// container the same `cpu-shares`, so policies normally leave this at 1.
    pub weight: f64,
}

impl AllocRequest {
    /// A request with the given limit, full demand and unit weight.
    pub fn with_limit(limit: f64) -> Self {
        AllocRequest {
            limit,
            demand: 1.0,
            weight: 1.0,
        }
    }

    /// An unlimited request (the NA baseline) with the given demand ceiling.
    pub fn unlimited(demand: f64) -> Self {
        AllocRequest {
            limit: 1.0,
            demand,
            weight: 1.0,
        }
    }

    /// Effective cap: the binding constraint between limit and demand.
    ///
    /// Non-finite limits or demands yield a zero cap (`f64::min` would
    /// silently discard a NaN operand otherwise).
    pub fn cap(&self) -> f64 {
        if !self.limit.is_finite() || !self.demand.is_finite() {
            return 0.0;
        }
        self.limit.min(self.demand).max(0.0)
    }
}

/// The result of a water-filling round (allocating API).
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-container CPU rate, same order as the request slice.
    pub rates: Vec<f64>,
    /// Total allocated rate (≤ capacity).
    pub total: f64,
    /// Capacity left unallocated because every container hit its cap.
    pub idle: f64,
}

/// Totals of a scratch-based water-filling round; the per-container rates
/// live in [`WaterfillScratch::rates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocTotals {
    /// Total allocated rate (≤ capacity).
    pub total: f64,
    /// Capacity left unallocated because every container hit its cap.
    pub idle: f64,
}

/// One sanitized request in the scratch: cap, weight, and the cap-per-weight
/// sort key, packed together for cache locality in the filling loop.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Sanitized cap (`min(limit, demand)` clamped to `[0, ∞)`).
    cap: f64,
    /// Sanitized weight (non-finite / non-positive become 0).
    weight: f64,
    /// `cap / weight` for eligible containers, NaN otherwise (so accidental
    /// use is loudly wrong in debug comparisons).
    key: f64,
}

impl Entry {
    /// True if this container can receive capacity this round.
    #[inline]
    fn eligible(&self) -> bool {
        self.cap > 0.0 && self.weight > 0.0
    }
}

/// Reusable buffers for the allocation-free water-filling entry points.
///
/// One scratch per allocator call-site (e.g. per simulated worker) is the
/// intended granularity: the scratch carries the warm sort-order cache, so
/// sharing one across unrelated request streams defeats the cache.
#[derive(Debug, Default, Clone)]
pub struct WaterfillScratch {
    /// Output rates, indexed like the request slice.
    rates: Vec<f64>,
    /// Sanitized per-request entries, indexed like the request slice.
    entries: Vec<Entry>,
    /// Eligible indices sorted by `(key, index)` — the warm order cache.
    order: Vec<usize>,
    /// Request count `order` was built for (cache guard).
    order_for_n: usize,
    /// Whether `order` may be reused after revalidation.
    order_warm: bool,
    /// Stage-2 caps for the soft (demand top-up) pass; grows lazily on the
    /// first soft call so plain [`waterfill_into`] users never pay for it.
    soft_caps: Vec<f64>,
    /// Stage-2 sort order (rebuilt whenever stage 2 runs; it is rare).
    soft_order: Vec<usize>,
    // --- introspection counters (tests, benches, BENCH_*.json) ---
    sorts: u64,
    sort_skips: u64,
    early_exits: u64,
}

impl WaterfillScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for `n` containers (avoids even the first-call
    /// growth allocations on the hard-limit path; the stage-2 soft buffers
    /// still grow lazily when first used).
    pub fn with_capacity(n: usize) -> Self {
        WaterfillScratch {
            rates: Vec::with_capacity(n),
            entries: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Reserve room for `n` containers in the hard-limit-path buffers
    /// (same coverage as [`WaterfillScratch::with_capacity`], for scratch
    /// that is recycled rather than rebuilt).
    pub fn reserve(&mut self, n: usize) {
        self.rates.reserve(n.saturating_sub(self.rates.len()));
        self.entries.reserve(n.saturating_sub(self.entries.len()));
        self.order.reserve(n.saturating_sub(self.order.len()));
    }

    /// Per-container CPU rates of the most recent round, in request order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of full `O(n log n)` sorts performed so far.
    pub fn sorts(&self) -> u64 {
        self.sorts
    }

    /// Number of rounds that reused the warm sort order.
    pub fn sort_skips(&self) -> u64 {
        self.sort_skips
    }

    /// Number of rounds resolved by the `Σcaps ≤ capacity` early exit.
    pub fn early_exits(&self) -> u64 {
        self.early_exits
    }

    /// Sanitize requests into `entries`.  Returns the sum of eligible caps
    /// and the count of eligible containers.
    fn load(&mut self, requests: &[AllocRequest]) -> (f64, usize) {
        self.entries.clear();
        let mut cap_sum = 0.0;
        let mut eligible = 0usize;
        for q in requests {
            let c = q.cap();
            let c = if c.is_finite() && c > 0.0 { c } else { 0.0 };
            let w = q.weight;
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            let key = if c > 0.0 && w > 0.0 {
                cap_sum += c;
                eligible += 1;
                c / w
            } else {
                f64::NAN
            };
            self.entries.push(Entry {
                cap: c,
                weight: w,
                key,
            });
        }
        (cap_sum, eligible)
    }

    /// Ensure `order` holds the eligible indices sorted by `(key, index)`,
    /// reusing the previous round's order when it is still correct.
    fn ensure_order(&mut self, n: usize, eligible_count: usize) {
        let entries = &self.entries;
        if self.order_warm && self.order_for_n == n && self.order.len() == eligible_count {
            // O(n) revalidation: same eligible set, keys still ascending.
            let members_ok = self.order.iter().all(|&i| entries[i].eligible());
            let sorted_ok = members_ok
                && self.order.windows(2).all(|w| {
                    let (a, b) = (w[0], w[1]);
                    let (ka, kb) = (entries[a].key, entries[b].key);
                    ka < kb || (ka == kb && a < b)
                });
            if sorted_ok {
                self.sort_skips += 1;
                return;
            }
        }
        self.order.clear();
        self.order.extend((0..n).filter(|&i| entries[i].eligible()));
        // `sort_unstable_by` never allocates; the `(key, index)` key is a
        // total order over distinct indices, so the result equals a stable
        // sort's.
        self.order.sort_unstable_by(|&a, &b| {
            entries[a]
                .key
                .partial_cmp(&entries[b].key)
                .expect("caps and weights sanitized to finite values")
                .then(a.cmp(&b))
        });
        self.order_for_n = n;
        self.order_warm = true;
        self.sorts += 1;
    }
}

/// The progressive-filling core shared by stage 1 and the soft stage-2
/// top-up: walk `order` (sorted by cap-per-weight ascending), pin the
/// prefix whose key is below the water level at its cap, level-split the
/// rest.  **Adds** into `rates`; returns the total amount added.
fn fill_sorted(
    rates: &mut [f64],
    order: &[usize],
    cap_of: impl Fn(usize) -> f64,
    weight_of: impl Fn(usize) -> f64,
    capacity: f64,
) -> f64 {
    let mut added = 0.0;
    let mut remaining = capacity;
    let mut weight_left: f64 = order.iter().map(|&i| weight_of(i)).sum();
    let mut start = 0;
    while start < order.len() && remaining > 1e-15 && weight_left > 0.0 {
        let level = remaining / weight_left;
        let i = order[start];
        let key = cap_of(i) / weight_of(i);
        if key <= level {
            // Pinned at cap.
            rates[i] += cap_of(i);
            added += cap_of(i);
            remaining -= cap_of(i);
            weight_left -= weight_of(i);
            start += 1;
        } else {
            // Everyone remaining fits under the level: weighted equal split.
            for &j in &order[start..] {
                let add = level * weight_of(j);
                rates[j] += add;
                added += add;
            }
            break;
        }
    }
    added
}

/// Distribute `capacity` over the requests by weighted progressive filling,
/// reusing `scratch`'s buffers: **zero heap allocations in steady state**.
///
/// Guarantees (enforced by debug assertions and property tests):
///
/// * `scratch.rates()[i] <= requests[i].cap() + ε`
/// * `sum(rates) <= capacity + ε`
/// * work conservation: if `sum(caps) >= capacity` then
///   `sum(rates) == capacity` (up to ε)
/// * containers with equal `(limit, demand, weight)` receive equal rates
/// * bit-identical to [`waterfill`] for the same inputs, regardless of what
///   the scratch previously computed.
///
/// Non-finite or negative inputs are treated as zero; zero-cap containers
/// receive a zero rate.
pub fn waterfill_into(
    scratch: &mut WaterfillScratch,
    capacity: f64,
    requests: &[AllocRequest],
) -> AllocTotals {
    let n = requests.len();
    scratch.rates.clear();
    scratch.rates.resize(n, 0.0);
    if n == 0 || capacity <= 0.0 {
        return AllocTotals {
            total: 0.0,
            idle: capacity.max(0.0),
        };
    }

    let (cap_sum, eligible_count) = scratch.load(requests);

    // O(n) early exit: every eligible container fits under its cap, so the
    // progressive-filling loop would pin each one at exactly `cap` anyway.
    if cap_sum <= capacity {
        scratch.early_exits += 1;
        let mut total = 0.0;
        for (rate, e) in scratch.rates.iter_mut().zip(&scratch.entries) {
            if e.eligible() {
                *rate = e.cap;
                total += e.cap;
            }
        }
        return finish(scratch, capacity, requests, total);
    }

    scratch.ensure_order(n, eligible_count);

    let entries = &scratch.entries;
    let total = fill_sorted(
        &mut scratch.rates,
        &scratch.order,
        |i| entries[i].cap,
        |i| entries[i].weight,
        capacity,
    );
    finish(scratch, capacity, requests, total)
}

/// Shared tail of [`waterfill_into`]: invariants + totals.
fn finish(
    scratch: &WaterfillScratch,
    capacity: f64,
    requests: &[AllocRequest],
    total: f64,
) -> AllocTotals {
    debug_assert!(total <= capacity + 1e-9, "over-allocated: {total}");
    for (i, &r) in scratch.rates.iter().enumerate() {
        debug_assert!(
            r <= requests[i].cap() + 1e-9,
            "rate {r} exceeds cap {}",
            requests[i].cap()
        );
    }
    AllocTotals {
        total,
        idle: (capacity - total).max(0.0),
    }
}

/// Water-filling with **truly soft** limits, allocation-free in steady
/// state.
///
/// Stage 1 is [`waterfill_into`] with caps `min(limit, demand)`.  If
/// capacity remains because every cap is satisfied (e.g. every container is
/// throttled), stage 2 redistributes the leftover among containers whose
/// *demand* exceeds their stage-1 allocation — limits bound a container's
/// entitled share under contention, but never leave the node idle while
/// someone is runnable, which is how the paper describes `docker update`
/// limits behaving (§4.1, §5.4).
pub fn waterfill_soft_into(
    scratch: &mut WaterfillScratch,
    capacity: f64,
    requests: &[AllocRequest],
) -> AllocTotals {
    let stage1 = waterfill_into(scratch, capacity, requests);
    if stage1.idle <= 1e-12 {
        return stage1;
    }

    // Stage 2: top up to demand, ignoring limits, weighted as before.  The
    // stage-2 cap mirrors the historical `AllocRequest { limit: 1.0,
    // demand: (demand - r).max(0.0), .. }.cap()` formulation exactly.
    let n = requests.len();
    scratch.soft_caps.clear();
    let mut top_up_sum = 0.0;
    for (q, &r) in requests.iter().zip(&scratch.rates) {
        let demand = if q.demand.is_finite() {
            q.demand.max(0.0)
        } else {
            0.0
        };
        let cap = 1.0f64.min((demand - r).max(0.0)).max(0.0);
        let w = q.weight;
        let eligible = cap > 0.0 && w.is_finite() && w > 0.0;
        scratch.soft_caps.push(if eligible { cap } else { 0.0 });
        if eligible {
            top_up_sum += cap;
        }
    }

    let mut total = stage1.total;
    if top_up_sum <= stage1.idle {
        // Early exit again: every top-up fits.
        for i in 0..n {
            scratch.rates[i] += scratch.soft_caps[i];
            total += scratch.soft_caps[i];
        }
    } else {
        // Progressive filling over the top-up caps.  Stage 2 only runs when
        // the node would otherwise idle, which is rare — a fresh sort is
        // fine (and `soft_order` is still a reused buffer: no allocation).
        scratch.soft_order.clear();
        scratch
            .soft_order
            .extend((0..n).filter(|&i| scratch.soft_caps[i] > 0.0));
        let soft_caps = &scratch.soft_caps;
        let entries = &scratch.entries;
        scratch.soft_order.sort_unstable_by(|&a, &b| {
            let ka = soft_caps[a] / entries[a].weight;
            let kb = soft_caps[b] / entries[b].weight;
            ka.partial_cmp(&kb)
                .expect("stage-2 caps and weights are finite")
                .then(a.cmp(&b))
        });
        total += fill_sorted(
            &mut scratch.rates,
            &scratch.soft_order,
            |i| soft_caps[i],
            |i| entries[i].weight,
            stage1.idle,
        );
    }

    AllocTotals {
        total,
        idle: (capacity - total).max(0.0),
    }
}

/// Distribute `capacity` over the requests by weighted progressive filling.
///
/// Compatibility wrapper around [`waterfill_into`]: allocates a fresh
/// scratch per call.  Hot paths should hold a [`WaterfillScratch`] and call
/// [`waterfill_into`] directly.
pub fn waterfill(capacity: f64, requests: &[AllocRequest]) -> Allocation {
    let mut scratch = WaterfillScratch::with_capacity(requests.len());
    let totals = waterfill_into(&mut scratch, capacity, requests);
    Allocation {
        rates: std::mem::take(&mut scratch.rates),
        total: totals.total,
        idle: totals.idle,
    }
}

/// Water-filling with **truly soft** limits (allocating wrapper around
/// [`waterfill_soft_into`]).
pub fn waterfill_soft(capacity: f64, requests: &[AllocRequest]) -> Allocation {
    let mut scratch = WaterfillScratch::with_capacity(requests.len());
    let totals = waterfill_soft_into(&mut scratch, capacity, requests);
    Allocation {
        rates: std::mem::take(&mut scratch.rates),
        total: totals.total,
        idle: totals.idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(limit: f64, demand: f64) -> AllocRequest {
        AllocRequest {
            limit,
            demand,
            weight: 1.0,
        }
    }

    #[test]
    fn empty_input_is_all_idle() {
        let a = waterfill(1.0, &[]);
        assert!(a.rates.is_empty());
        assert_eq!(a.idle, 1.0);
    }

    #[test]
    fn single_unlimited_container_gets_its_demand() {
        let a = waterfill(1.0, &[req(1.0, 0.8)]);
        assert!((a.rates[0] - 0.8).abs() < 1e-12);
        assert!((a.idle - 0.2).abs() < 1e-12);
    }

    #[test]
    fn equal_containers_split_equally() {
        let a = waterfill(1.0, &[req(1.0, 1.0); 4]);
        for r in &a.rates {
            assert!((r - 0.25).abs() < 1e-12);
        }
        assert!(a.idle < 1e-12);
    }

    #[test]
    fn paper_fig7_scenario_limit_quarter_vs_one() {
        // §5.3: VAE limited to 0.25, MNIST limit 1 -> 25% / 75% split.
        let a = waterfill(1.0, &[req(0.25, 1.0), req(1.0, 1.0)]);
        assert!((a.rates[0] - 0.25).abs() < 1e-12, "{:?}", a.rates);
        assert!((a.rates[1] - 0.75).abs() < 1e-12, "{:?}", a.rates);
    }

    #[test]
    fn soft_limits_redistribute_unused_capacity() {
        // Three containers limited to 0.2 each plus one unlimited: the
        // unlimited one absorbs the leftover 0.4.
        let a = waterfill(
            1.0,
            &[req(0.2, 1.0), req(0.2, 1.0), req(0.2, 1.0), req(1.0, 1.0)],
        );
        assert!((a.rates[3] - 0.4).abs() < 1e-12, "{:?}", a.rates);
        assert!(a.idle < 1e-12);
    }

    #[test]
    fn demand_ceiling_binds_like_a_limit() {
        // A job that can only use 30% of the node leaves the rest to others.
        let a = waterfill(1.0, &[req(1.0, 0.3), req(1.0, 1.0)]);
        assert!((a.rates[0] - 0.3).abs() < 1e-12);
        assert!((a.rates[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn all_capped_leaves_idle_capacity() {
        let a = waterfill(1.0, &[req(0.1, 1.0), req(0.2, 1.0)]);
        assert!((a.total - 0.3).abs() < 1e-12);
        assert!((a.idle - 0.7).abs() < 1e-12);
    }

    #[test]
    fn weights_bias_the_split() {
        let reqs = [
            AllocRequest {
                limit: 1.0,
                demand: 1.0,
                weight: 3.0,
            },
            AllocRequest {
                limit: 1.0,
                demand: 1.0,
                weight: 1.0,
            },
        ];
        let a = waterfill(1.0, &reqs);
        assert!((a.rates[0] - 0.75).abs() < 1e-12);
        assert!((a.rates[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_or_invalid_requests_get_nothing() {
        let reqs = [
            req(0.0, 1.0),
            AllocRequest {
                limit: f64::NAN,
                demand: 1.0,
                weight: 1.0,
            },
            req(1.0, 1.0),
        ];
        let a = waterfill(1.0, &reqs);
        assert_eq!(a.rates[0], 0.0);
        assert_eq!(a.rates[1], 0.0);
        assert!((a.rates[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_other_than_one() {
        // An 8-core node expressed in cores instead of fractions.
        let a = waterfill(8.0, &[req(2.0, 8.0), req(8.0, 8.0)]);
        assert!((a.rates[0] - 2.0).abs() < 1e-12);
        assert!((a.rates[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn soft_waterfill_matches_hard_when_caps_cover_capacity() {
        let reqs = [req(0.25, 1.0), req(1.0, 1.0)];
        assert_eq!(waterfill_soft(1.0, &reqs), waterfill(1.0, &reqs));
    }

    #[test]
    fn soft_waterfill_redistributes_past_limits_up_to_demand() {
        // Both containers throttled to 0.2, but both could use 0.6: the
        // idle 0.6 splits evenly, 0.5 each — nothing idles while demand
        // remains.
        let reqs = [req(0.2, 0.6), req(0.2, 0.6)];
        let a = waterfill_soft(1.0, &reqs);
        assert!((a.rates[0] - 0.5).abs() < 1e-9, "{:?}", a.rates);
        assert!((a.rates[1] - 0.5).abs() < 1e-9);
        assert!(a.idle < 1e-9, "idle {}", a.idle);
    }

    #[test]
    fn soft_waterfill_respects_demand_ceilings() {
        let reqs = [req(0.1, 0.3), req(0.1, 0.2)];
        let a = waterfill_soft(1.0, &reqs);
        assert!((a.rates[0] - 0.3).abs() < 1e-9);
        assert!((a.rates[1] - 0.2).abs() < 1e-9);
        assert!((a.idle - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sum_of_limits_above_one_is_fine() {
        // §5.4 note: with the β lower bound the limit sum can exceed 1.
        let a = waterfill(1.0, &[req(0.6, 1.0), req(0.6, 1.0), req(0.6, 1.0)]);
        let total: f64 = a.rates.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in &a.rates {
            assert!(*r <= 0.6 + 1e-12);
        }
    }

    // --- scratch-based entry point ---

    #[test]
    fn scratch_reuse_matches_fresh_allocating_calls() {
        let mut scratch = WaterfillScratch::new();
        let rounds = [
            vec![req(0.3, 1.0), req(1.0, 0.9), req(0.5, 0.4)],
            vec![req(0.2, 1.0), req(1.0, 0.9), req(0.5, 0.4)], // limit moved
            vec![req(0.2, 1.0), req(1.0, 0.9)],                // container left
            vec![req(0.9, 1.0), req(0.1, 0.9), req(0.7, 1.0)], // order changed
        ];
        for reqs in &rounds {
            let totals = waterfill_into(&mut scratch, 1.0, reqs);
            let fresh = waterfill(1.0, reqs);
            assert_eq!(scratch.rates(), fresh.rates.as_slice(), "{reqs:?}");
            assert_eq!(totals.total.to_bits(), fresh.total.to_bits());
            assert_eq!(totals.idle.to_bits(), fresh.idle.to_bits());
        }
    }

    #[test]
    fn early_exit_taken_when_caps_fit() {
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &[req(0.1, 1.0), req(0.2, 1.0)]);
        assert_eq!(scratch.early_exits(), 1);
        assert_eq!(scratch.sorts(), 0, "no sort needed when caps fit");
        assert_eq!(scratch.rates(), &[0.1, 0.2]);
    }

    #[test]
    fn warm_order_skips_resort_when_order_preserved() {
        let mut scratch = WaterfillScratch::new();
        let mut reqs = vec![req(0.3, 1.0), req(0.6, 1.0), req(0.9, 1.0)];
        waterfill_into(&mut scratch, 1.0, &reqs);
        assert_eq!(scratch.sorts(), 1);
        // Limits move but relative order is preserved: no re-sort.
        reqs[0].limit = 0.35;
        reqs[1].limit = 0.55;
        waterfill_into(&mut scratch, 1.0, &reqs);
        assert_eq!(scratch.sorts(), 1);
        assert_eq!(scratch.sort_skips(), 1);
        // Order inverted: re-sort required, result still exact.
        reqs[0].limit = 0.95;
        waterfill_into(&mut scratch, 1.0, &reqs);
        assert_eq!(scratch.sorts(), 2);
        let fresh = waterfill(1.0, &reqs);
        assert_eq!(scratch.rates(), fresh.rates.as_slice());
    }

    #[test]
    fn soft_into_matches_soft_allocating() {
        let mut scratch = WaterfillScratch::new();
        let cases = [
            vec![req(0.2, 0.6), req(0.2, 0.6)],
            vec![req(0.1, 0.3), req(0.1, 0.2)],
            vec![req(0.25, 1.0), req(1.0, 1.0)],
            vec![],
        ];
        for reqs in &cases {
            let totals = waterfill_soft_into(&mut scratch, 1.0, reqs);
            let fresh = waterfill_soft(1.0, reqs);
            assert_eq!(scratch.rates(), fresh.rates.as_slice(), "{reqs:?}");
            assert_eq!(totals.total.to_bits(), fresh.total.to_bits());
        }
    }

    #[test]
    fn scratch_shrinks_and_grows_with_request_count() {
        let mut scratch = WaterfillScratch::new();
        waterfill_into(&mut scratch, 1.0, &[req(1.0, 1.0); 8]);
        assert_eq!(scratch.rates().len(), 8);
        waterfill_into(&mut scratch, 1.0, &[req(1.0, 1.0); 2]);
        assert_eq!(scratch.rates().len(), 2);
        waterfill_into(&mut scratch, 1.0, &[]);
        assert!(scratch.rates().is_empty());
    }
}
