//! # flowcon-sim
//!
//! Deterministic discrete-event simulation kernel used by the FlowCon
//! reproduction.
//!
//! The FlowCon paper (ICPP 2019) evaluates its elastic container
//! configuration scheme on a physical CloudLab node running Docker.  This
//! crate substitutes that testbed with a *fluid* model of a shared compute
//! node:
//!
//! * [`time`] — a virtual clock measured in integer microseconds, so event
//!   ordering is total and platform independent.
//! * [`event`] — a priority event queue with FIFO tie-breaking.
//! * [`engine`] — a minimal simulation driver ([`Simulation`] trait +
//!   `run_until` loops) with run-away protection.
//! * [`rng`] — a from-scratch, splittable xoshiro256++ RNG so every
//!   experiment is reproducible from a single `u64` seed without external
//!   dependencies.
//! * [`resources`] — the four resource kinds FlowCon's container monitor
//!   tracks (CPU, memory, block I/O, network I/O) and small fixed-size
//!   resource vectors.
//! * [`alloc`] — the water-filling processor-sharing allocator that models
//!   Docker's *soft* CPU limits: a container's limit caps its share, but
//!   capacity it cannot use is redistributed to others.
//! * [`contention`] — the interference model that makes concurrency
//!   imperfect (the mechanism behind the paper's 1–5% makespan win).
//! * [`stats`] — time-weighted accumulation for piecewise-constant signals
//!   (the open-loop steady-state metrics: mean queue depth, utilization).
//! * [`trace`] — the deterministic structured-tracing layer: a
//!   monomorphized [`Tracer`] trait with a zero-cost [`NoopTracer`]
//!   default and a preallocated [`FlightRecorder`] ring buffer.
//!
//! Everything in this crate is pure and deterministic: no wall-clock, no
//! I/O, no global state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod calendar;
pub mod contention;
pub mod engine;
pub mod event;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use alloc::{waterfill, AllocRequest, Allocation};
pub use calendar::CalendarQueue;
pub use contention::ContentionModel;
pub use engine::{RunOutcome, SimEngine, Simulation};
pub use event::EventQueue;
pub use resources::{ResourceKind, ResourceVec, RESOURCE_KINDS};
pub use rng::SimRng;
pub use stats::TimeWeighted;
pub use time::{SimDuration, SimTime};
pub use trace::{FlightRecorder, NoopTracer, TraceEvent, TraceKind, TracePhase, Tracer};
