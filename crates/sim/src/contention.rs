//! Contention / interference model.
//!
//! On the paper's testbed, concurrent training jobs interfere: context
//! switches, cache pollution and memory-bandwidth pressure mean that the sum
//! of useful work done by `n` co-located jobs is less than the node's nominal
//! capacity.  This is the mechanism behind two observations in §5.3–§5.5:
//!
//! * NA traces show *jitter* — "uncontrolled resource competition";
//! * FlowCon improves makespan by 1–5% **because** skewing resources toward
//!   fewer jobs reduces the overlap (time during which many jobs co-run) and
//!   therefore the total interference tax.
//!
//! We model the tax as a multiplicative efficiency applied to every
//! container's *useful* progress rate:
//!
//! ```text
//! eff(n) = 1 / (1 + kappa * (n - 1))        n = number of runnable jobs
//! ```
//!
//! `kappa = 0` recovers an ideal (work-conserving, interference-free) node;
//! the default `kappa = 0.02` produces the paper's small-but-consistent
//! makespan gap.  An ablation bench sweeps `kappa` (see `flowcon-bench`).

/// Interference model mapping concurrency to a progress-efficiency factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Interference coefficient per additional co-runner (cache pollution,
    /// memory-bandwidth pressure) — paid by every container.
    pub kappa: f64,
    /// Scheduler-jitter coefficient per additional co-runner — paid only by
    /// containers competing *without* an explicit limit.  The paper's NA
    /// traces show heavy jitter from "uncontrolled resource competition"
    /// (Figs. 8/11/16) while FlowCon's limit-shaped containers are "much
    /// smoother" (Fig. 15); this term is that asymmetry, and it is what
    /// lets FlowCon's *makespan* beat NA by the paper's 1–5%.
    pub jitter: f64,
    /// Floor on the jitter *factor*: scheduler jitter saturates (a process
    /// does not lose an unbounded fraction of throughput to preemption just
    /// because more peers exist).  Keeps the NA-vs-FlowCon makespan gap in
    /// the paper's 1–5% band even at 10–15 concurrent jobs.
    pub jitter_floor: f64,
    /// Floor on efficiency so pathological concurrency cannot stall progress.
    pub min_efficiency: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel {
            kappa: 0.06,
            jitter: 0.04,
            jitter_floor: 0.92,
            min_efficiency: 0.2,
        }
    }
}

impl ContentionModel {
    /// An ideal node: no interference at any concurrency.
    pub const fn ideal() -> Self {
        ContentionModel {
            kappa: 0.0,
            jitter: 0.0,
            jitter_floor: 1.0,
            min_efficiency: 1.0,
        }
    }

    /// A model with the given interference coefficient and no jitter term.
    pub fn with_kappa(kappa: f64) -> Self {
        ContentionModel {
            kappa,
            jitter: 0.0,
            jitter_floor: 1.0,
            ..Default::default()
        }
    }

    /// Base efficiency factor for `n` concurrently runnable containers.
    ///
    /// Monotonically non-increasing in `n`, equal to 1 for `n <= 1`.
    pub fn efficiency(&self, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let raw = 1.0 / (1.0 + self.kappa * (n as f64 - 1.0));
        raw.max(self.min_efficiency)
    }

    /// Efficiency of one container given the concurrency level and whether
    /// the container runs under an explicit limit (shaped) or competes
    /// freely (paying the jitter tax).
    pub fn container_efficiency(&self, n: usize, shaped: bool) -> f64 {
        let base = self.efficiency(n);
        if shaped || n <= 1 {
            return base;
        }
        let jitter_factor =
            (1.0 - self.jitter * (n as f64 - 1.0)).max(self.jitter_floor.clamp(0.0, 1.0));
        (base * jitter_factor).max(self.min_efficiency.min(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_is_unaffected() {
        let m = ContentionModel::default();
        assert_eq!(m.efficiency(0), 1.0);
        assert_eq!(m.efficiency(1), 1.0);
    }

    #[test]
    fn efficiency_decreases_with_concurrency() {
        let m = ContentionModel::with_kappa(0.05);
        let mut last = 1.0;
        for n in 1..20 {
            let e = m.efficiency(n);
            assert!(e <= last + 1e-12, "efficiency must be non-increasing");
            assert!(e > 0.0);
            last = e;
        }
    }

    #[test]
    fn ideal_model_is_always_one() {
        let m = ContentionModel::ideal();
        for n in 0..100 {
            assert_eq!(m.efficiency(n), 1.0);
        }
    }

    #[test]
    fn floor_binds_at_extreme_concurrency() {
        let m = ContentionModel {
            kappa: 1.0,
            jitter: 0.0,
            jitter_floor: 1.0,
            min_efficiency: 0.5,
        };
        assert_eq!(m.efficiency(1000), 0.5);
    }

    #[test]
    fn jitter_taxes_only_unshaped_containers() {
        let m = ContentionModel::default();
        let shaped = m.container_efficiency(3, true);
        let unshaped = m.container_efficiency(3, false);
        assert_eq!(shaped, m.efficiency(3));
        assert!(unshaped < shaped, "{unshaped} !< {shaped}");
        // Solo containers never pay jitter.
        assert_eq!(m.container_efficiency(1, false), 1.0);
    }

    #[test]
    fn container_efficiency_never_negative() {
        let m = ContentionModel {
            kappa: 0.0,
            jitter: 0.2,
            jitter_floor: 0.0,
            min_efficiency: 0.0,
        };
        assert!(m.container_efficiency(50, false) >= 0.0);
    }

    #[test]
    fn default_matches_paper_scale() {
        // With the default kappa, 3 co-located jobs lose ~10% throughput —
        // enough interference for FlowCon's overlap reduction to buy the
        // paper's 1-5% makespan improvement.
        let m = ContentionModel::default();
        let e3 = m.efficiency(3);
        assert!(e3 > 0.85 && e3 < 0.95, "eff(3) = {e3}");
    }
}
