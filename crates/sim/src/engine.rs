//! A minimal, reusable discrete-event simulation driver.
//!
//! Concrete simulations (the FlowCon worker-node model, the cluster model)
//! implement [`Simulation`]; the engine owns the clock and the event queue
//! and repeatedly dispatches the earliest event.  Handlers receive a
//! [`Scheduler`] so they can enqueue follow-up events but cannot rewind the
//! clock.

use crate::event::EventQueue;
use crate::time::SimTime;
use crate::trace::{NoopTracer, TraceKind, Tracer};

/// Why an engine run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon passed; later events remain pending.
    HorizonReached,
    /// The event budget was exhausted (run-away protection).
    EventBudgetExhausted,
    /// A handler requested an early stop.
    Stopped,
}

/// Handle through which event handlers schedule new events.
///
/// Also carries the run's [`Tracer`], so handlers can record structured
/// trace events without the simulation type itself being generic over
/// the tracer.  The default is [`NoopTracer`], which compiles every
/// instrumentation site away.
pub struct Scheduler<'a, E, T: Tracer = NoopTracer> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
    tracer: &'a mut T,
}

impl<'a, E, T: Tracer> Scheduler<'a, E, T> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's tracer, for handler-side instrumentation.
    pub fn tracer(&mut self) -> &mut T {
        self.tracer
    }

    /// Schedule an event at an absolute time.
    ///
    /// Panics if `when` lies in the past — causality must hold.
    pub fn at(&mut self, when: SimTime, event: E) {
        assert!(
            when >= self.now,
            "cannot schedule into the past: now={}, when={}",
            self.now,
            when
        );
        self.queue.schedule(when, event);
    }

    /// Schedule an event `delay` after now.
    pub fn after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Request that the engine stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A discrete-event simulation: state plus an event handler.
pub trait Simulation {
    /// The event payload type.
    type Event;

    /// Handle one event at its firing time.
    ///
    /// Generic over the run's [`Tracer`] (monomorphized per tracer, so
    /// the untraced instantiation is byte-for-byte the pre-tracing
    /// loop).
    fn handle<T: Tracer>(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event, T>);
}

/// The engine: clock + queue + dispatch loop.
pub struct SimEngine<S: Simulation> {
    queue: EventQueue<S::Event>,
    now: SimTime,
    events_processed: u64,
    /// Run-away guard: an experiment on this scale should never need more.
    max_events: u64,
}

impl<S: Simulation> Default for SimEngine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Simulation> SimEngine<S> {
    /// A fresh engine at t=0 with the default event budget.
    pub fn new() -> Self {
        Self::from_queue(EventQueue::new())
    }

    /// A fresh engine at t=0 reusing `queue`'s heap allocation.
    ///
    /// The queue is cleared of any pending events; only its capacity (and
    /// its monotone sequence counter, which preserves FIFO tie-breaking) is
    /// carried over.  Callers that drive many short simulations back to
    /// back — the sharded cluster executor runs hundreds per shard — thread
    /// one queue through [`SimEngine::into_queue`] so the event heap is
    /// allocated once per shard instead of once per simulation.
    pub fn from_queue(mut queue: EventQueue<S::Event>) -> Self {
        queue.clear();
        SimEngine {
            queue,
            now: SimTime::ZERO,
            events_processed: 0,
            max_events: 50_000_000,
        }
    }

    /// Tear down the engine, handing back the event queue for reuse by a
    /// later [`SimEngine::from_queue`].
    pub fn into_queue(self) -> EventQueue<S::Event> {
        self.queue
    }

    /// Override the run-away event budget.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an initial event before running.
    pub fn prime(&mut self, when: SimTime, event: S::Event) {
        self.queue.schedule(when, event);
    }

    /// Run until the queue drains, the horizon passes, or budget runs out.
    pub fn run_until(&mut self, sim: &mut S, horizon: SimTime) -> RunOutcome {
        self.run_until_traced(sim, horizon, &mut NoopTracer)
    }

    /// [`run_until`](SimEngine::run_until) with an explicit [`Tracer`].
    ///
    /// When the tracer is enabled, each dispatch records an
    /// [`EngineAdvance`](TraceKind::EngineAdvance) span over every
    /// non-zero clock jump plus an
    /// [`EngineEvent`](TraceKind::EngineEvent) instant; handlers see the
    /// same tracer through [`Scheduler::tracer`].  With [`NoopTracer`]
    /// this is exactly the untraced loop.
    pub fn run_until_traced<T: Tracer>(
        &mut self,
        sim: &mut S,
        horizon: SimTime,
        tracer: &mut T,
    ) -> RunOutcome {
        let mut stop = false;
        loop {
            if self.events_processed >= self.max_events {
                // Budget exhaustion only reports when a dispatchable event
                // is actually pending (drain/horizon outcomes win otherwise).
                return match self.queue.peek_time() {
                    None => RunOutcome::Drained,
                    Some(next) if next > horizon => RunOutcome::HorizonReached,
                    Some(_) => RunOutcome::EventBudgetExhausted,
                };
            }
            // Fused peek/pop: one heap operation per dispatched event.
            let Some((when, event)) = self.queue.pop_if_at_or_before(horizon) else {
                return if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            };
            debug_assert!(when >= self.now, "event queue yielded a past event");
            if T::ENABLED {
                if when > self.now {
                    tracer.span_begin(self.now, TraceKind::EngineAdvance, 0, 0);
                    tracer.span_end(when, TraceKind::EngineAdvance, 0, 0);
                }
                tracer.instant(
                    when,
                    TraceKind::EngineEvent,
                    self.events_processed as u32,
                    0,
                );
            }
            self.now = when;
            self.events_processed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                stop: &mut stop,
                tracer,
            };
            sim.handle(event, &mut sched);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Run until no events remain (or budget runs out).
    pub fn run_to_completion(&mut self, sim: &mut S) -> RunOutcome {
        self.run_until(sim, SimTime::MAX)
    }

    /// [`run_to_completion`](SimEngine::run_to_completion) with an
    /// explicit [`Tracer`].
    pub fn run_to_completion_traced<T: Tracer>(
        &mut self,
        sim: &mut S,
        tracer: &mut T,
    ) -> RunOutcome {
        self.run_until_traced(sim, SimTime::MAX, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A toy simulation: a counter that reschedules itself `n` times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    enum TickEvent {
        Tick,
    }

    impl Simulation for Ticker {
        type Event = TickEvent;
        fn handle<T: Tracer>(&mut self, _ev: TickEvent, sched: &mut Scheduler<'_, TickEvent, T>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_secs(10), TickEvent::Tick);
            }
        }
    }

    #[test]
    fn self_rescheduling_chain_runs_to_completion() {
        let mut sim = Ticker {
            remaining: 3,
            fired_at: vec![],
        };
        let mut engine = SimEngine::new();
        engine.prime(SimTime::ZERO, TickEvent::Tick);
        let outcome = engine.run_to_completion(&mut sim);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(
            sim.fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
        assert_eq!(engine.events_processed(), 4);
    }

    #[test]
    fn horizon_stops_early() {
        let mut sim = Ticker {
            remaining: 100,
            fired_at: vec![],
        };
        let mut engine = SimEngine::new();
        engine.prime(SimTime::ZERO, TickEvent::Tick);
        let outcome = engine.run_until(&mut sim, SimTime::from_secs(25));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.fired_at.len(), 3); // t=0, 10, 20
        assert_eq!(engine.now(), SimTime::from_secs(20));
    }

    #[test]
    fn event_budget_guards_runaway() {
        let mut sim = Ticker {
            remaining: u32::MAX,
            fired_at: vec![],
        };
        let mut engine = SimEngine::new().with_max_events(5);
        engine.prime(SimTime::ZERO, TickEvent::Tick);
        let outcome = engine.run_to_completion(&mut sim);
        assert_eq!(outcome, RunOutcome::EventBudgetExhausted);
        assert_eq!(engine.events_processed(), 5);
    }

    #[test]
    fn recycled_queue_reproduces_fresh_run() {
        let run = |engine: &mut SimEngine<Ticker>| {
            let mut sim = Ticker {
                remaining: 3,
                fired_at: vec![],
            };
            engine.prime(SimTime::ZERO, TickEvent::Tick);
            engine.run_to_completion(&mut sim);
            (engine.events_processed(), sim.fired_at)
        };
        let mut fresh = SimEngine::new();
        let fresh_out = run(&mut fresh);
        // Recycle through a queue that still holds stale pending events:
        // from_queue must clear them.
        let mut dirty = EventQueue::new();
        dirty.schedule(SimTime::from_secs(999), TickEvent::Tick);
        let mut recycled = SimEngine::from_queue(dirty);
        let recycled_out = run(&mut recycled);
        assert_eq!(fresh_out, recycled_out);
        assert!(recycled.into_queue().is_empty());
    }

    struct Stopper;
    impl Simulation for Stopper {
        type Event = u8;
        fn handle<T: Tracer>(&mut self, _ev: u8, sched: &mut Scheduler<'_, u8, T>) {
            sched.stop();
        }
    }

    #[test]
    fn handler_can_stop_engine() {
        let mut sim = Stopper;
        let mut engine = SimEngine::new();
        engine.prime(SimTime::ZERO, 0);
        engine.prime(SimTime::from_secs(1), 1);
        assert_eq!(engine.run_to_completion(&mut sim), RunOutcome::Stopped);
        assert_eq!(engine.events_processed(), 1);
    }

    #[test]
    fn traced_run_records_advances_and_dispatches() {
        use crate::trace::{FlightRecorder, TraceEvent, TracePhase};
        let mut sim = Ticker {
            remaining: 2,
            fired_at: vec![],
        };
        let mut engine = SimEngine::new();
        engine.prime(SimTime::ZERO, TickEvent::Tick);
        let mut rec = FlightRecorder::with_capacity(64);
        let outcome = engine.run_to_completion_traced(&mut sim, &mut rec);
        assert_eq!(outcome, RunOutcome::Drained);
        let evs = rec.events();
        // 3 dispatches (t=0,10,20): one EngineEvent each, and an
        // EngineAdvance Begin/End pair for each non-zero clock jump.
        let dispatches: Vec<&TraceEvent> = evs
            .iter()
            .filter(|e| e.kind == TraceKind::EngineEvent)
            .collect();
        assert_eq!(dispatches.len(), 3);
        assert_eq!(dispatches[0].at, SimTime::ZERO);
        assert_eq!(dispatches[2].at, SimTime::from_secs(20));
        let advances: Vec<&TraceEvent> = evs
            .iter()
            .filter(|e| e.kind == TraceKind::EngineAdvance)
            .collect();
        assert_eq!(advances.len(), 4); // two jumps × (Begin, End)
        assert_eq!(advances[0].phase, TracePhase::Begin);
        assert_eq!(advances[1].phase, TracePhase::End);
        assert_eq!(advances[1].at, SimTime::from_secs(10));
        assert_eq!(rec.dropped(), 0);

        // The traced run with a noop tracer is the plain run.
        let mut sim2 = Ticker {
            remaining: 2,
            fired_at: vec![],
        };
        let mut engine2 = SimEngine::new();
        engine2.prime(SimTime::ZERO, TickEvent::Tick);
        engine2.run_until_traced(&mut sim2, SimTime::MAX, &mut NoopTracer);
        assert_eq!(sim.fired_at, sim2.fired_at);
    }
}
