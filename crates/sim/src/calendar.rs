//! A bucket/calendar event queue — the dense-path alternative to
//! [`crate::event::EventQueue`]'s binary heap.
//!
//! A calendar queue (Brown, CACM 1988) hashes events into fixed-width time
//! buckets and drains them by walking a circular "year" of buckets.  For
//! the worker simulations' access pattern — a handful of pending events,
//! scheduled a bounded distance into the future, popped in near-monotone
//! order — schedule and pop are O(1) amortized with no sift-up/sift-down,
//! and the bucket arrays are reused run after run, so a recycled queue
//! performs no steady-state allocation.
//!
//! Ordering is **identical** to `EventQueue`: events pop by `(when, seq)`
//! where `seq` is the monotone schedule order, so ties at one instant are
//! FIFO and a simulation driven off either queue executes the exact same
//! event sequence.  The randomized comparison test at the bottom pins that
//! bit-equality.

use crate::time::SimTime;

/// An entry: `(when, seq)` keys a payload, exactly as in `EventQueue`.
struct Entry<E> {
    when: SimTime,
    seq: u64,
    payload: E,
}

/// Number of buckets in the circular year (power of two).
const BUCKETS: usize = 64;
/// log2 of the bucket width in microseconds: 2^20 µs ≈ 1.05 s, sized so a
/// worker's typical event spacing (policy intervals of tens of seconds,
/// sub-second completion checks) lands within one year of `BUCKETS` buckets.
const WIDTH_SHIFT: u32 = 20;

/// A deterministic min-priority queue of timestamped events, backed by a
/// circular calendar of time buckets plus an overflow list for events
/// beyond the current year.
///
/// Mirrors the [`crate::event::EventQueue`] surface used by dispatch
/// loops (`schedule`, `pop_if_at_or_before`, `len`, `clear`, ...), with
/// one difference: finding the minimum advances an internal cursor, so
/// peeking requires `&mut self` and is folded into
/// [`CalendarQueue::pop_if_at_or_before`].
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Next bucket tick (`when >> WIDTH_SHIFT`) the cursor will drain.
    cur_tick: u64,
    /// First tick *not* covered by the current year window; the window is
    /// `[year_end - BUCKETS, year_end)`.
    year_end: u64,
    /// Number of events currently stored in `buckets`.
    in_year: usize,
    /// Events beyond the current year (or behind its base, after a
    /// past-scheduling rebase), redistributed when the year drains.
    overflow: Vec<Entry<E>>,
    /// Scratch buffer reused by [`CalendarQueue::rebase`].
    stash: Vec<Entry<E>>,
    /// Smallest tick present in `overflow` (`u64::MAX` when empty).
    overflow_min_tick: u64,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("pending", &self.len())
            .field("next_seq", &self.next_seq)
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
const fn tick_of(when: SimTime) -> u64 {
    when.as_micros() >> WIDTH_SHIFT
}

impl<E> CalendarQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            cur_tick: 0,
            year_end: BUCKETS as u64,
            in_year: 0,
            overflow: Vec::new(),
            stash: Vec::new(),
            overflow_min_tick: u64::MAX,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` to fire at `when`.
    pub fn schedule(&mut self, when: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.insert(Entry { when, seq, payload });
    }

    fn insert(&mut self, e: Entry<E>) {
        let tick = tick_of(e.when);
        let base = self.year_end - BUCKETS as u64;
        if tick >= base && tick < self.year_end {
            // In the current year: the cursor may have to rewind for an
            // event scheduled behind it (the engine never does this, but
            // the queue must not silently misorder if a caller does).
            self.cur_tick = self.cur_tick.min(tick);
            self.in_year += 1;
            self.buckets[(tick % BUCKETS as u64) as usize].push(e);
        } else {
            self.overflow_min_tick = self.overflow_min_tick.min(tick);
            self.overflow.push(e);
        }
    }

    /// Rebase the year window to start at `base` and redistribute the
    /// overflow list into it.  O(pending), but only runs when a year
    /// drains (or an event lands behind the window base), so the cost
    /// amortizes over the whole year of O(1) operations.
    fn rebase(&mut self, base: u64) {
        debug_assert!(self.stash.is_empty());
        std::mem::swap(&mut self.overflow, &mut self.stash);
        for bucket in &mut self.buckets {
            self.stash.append(bucket);
        }
        self.in_year = 0;
        self.overflow_min_tick = u64::MAX;
        self.cur_tick = base;
        self.year_end = base.saturating_add(BUCKETS as u64);
        while let Some(e) = self.stash.pop() {
            self.insert(e);
        }
    }

    /// Advance the cursor to the earliest pending event and return its
    /// bucket and in-bucket index, or `None` if the queue is empty.
    fn find_min(&mut self) -> Option<(usize, usize)> {
        loop {
            if self.in_year == 0 {
                if self.overflow.is_empty() {
                    return None;
                }
                self.rebase(self.overflow_min_tick);
                continue;
            }
            if self.overflow_min_tick < self.cur_tick {
                // Something was scheduled behind the window base; rebase
                // so it sorts first.
                self.rebase(self.overflow_min_tick);
                continue;
            }
            debug_assert!(self.cur_tick < self.year_end);
            let b = (self.cur_tick % BUCKETS as u64) as usize;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if tick_of(e.when) != self.cur_tick {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bw, bs)) => (e.when, e.seq) < (bw, bs),
                };
                if better {
                    best = Some((i, e.when, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some((b, i));
            }
            self.cur_tick += 1;
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, i) = self.find_min()?;
        let e = self.buckets[b].swap_remove(i);
        self.in_year -= 1;
        Some((e.when, e.payload))
    }

    /// Remove and return the earliest event **iff** it fires at or before
    /// `horizon` — the dispatch loop's fused peek/pop, mirroring
    /// `EventQueue::pop_if_at_or_before`.
    pub fn pop_if_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let (b, i) = self.find_min()?;
        if self.buckets[b][i].when > horizon {
            return None;
        }
        let e = self.buckets[b].swap_remove(i);
        self.in_year -= 1;
        Some((e.when, e.payload))
    }

    /// Timestamp of the next event without removing it (advances the
    /// internal cursor, hence `&mut`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (b, i) = self.find_min()?;
        Some(self.buckets[b][i].when)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.in_year + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run-away diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event, keeping bucket capacity and the sequence
    /// counter (like `EventQueue::clear`), so a recycled queue stays warm.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.stash.clear();
        self.overflow_min_tick = u64::MAX;
        self.in_year = 0;
        self.cur_tick = 0;
        self.year_end = BUCKETS as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(5), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = CalendarQueue::new();
        // Hours and days out — way beyond one 64-bucket year.
        q.schedule(SimTime::from_secs(86_400), "day");
        q.schedule(SimTime::from_secs(3_600), "hour");
        q.schedule(SimTime::from_secs(1), "second");
        q.schedule(SimTime::MAX, "horizon");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("hour"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("day"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("horizon"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_if_at_or_before_respects_horizon() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(4), "later");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "soon"))
        );
        assert_eq!(q.pop_if_at_or_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_if_at_or_before(SimTime::from_secs(4)),
            Some((SimTime::from_secs(4), "later"))
        );
        assert_eq!(q.pop_if_at_or_before(SimTime::MAX), None, "empty queue");
    }

    #[test]
    fn scheduling_behind_the_cursor_still_sorts_first() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(500), "far");
        // Draining toward the far event moves the cursor well past t=1.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(500)));
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
    }

    #[test]
    fn clear_keeps_seq_counter_and_capacity() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::from_secs(9_999), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        // FIFO ties keep working across a clear (seq not reset).
        let t = SimTime::from_secs(1);
        q.schedule(t, 10);
        q.schedule(t, 11);
        assert_eq!(q.pop().map(|(_, e)| e), Some(10));
        assert_eq!(q.pop().map(|(_, e)| e), Some(11));
    }

    /// The acceptance-criteria test: under a randomized schedule/pop
    /// workload, the calendar queue is **bit-identical** to the binary
    /// heap — same `(when, payload)` stream, same lengths, same totals.
    #[test]
    fn randomized_bit_identity_with_binary_heap() {
        for seed in 0..8u64 {
            let mut rng = SimRng::new(0xCA1E_0000 + seed);
            let mut heap = EventQueue::new();
            let mut cal = CalendarQueue::new();
            let mut now = 0u64;
            for _ in 0..2_000 {
                match rng.below(10) {
                    // Schedule: mostly near-future, sometimes same-instant
                    // (FIFO ties), sometimes far future (overflow), with
                    // microsecond-grain offsets to exercise intra-bucket
                    // ordering.
                    0..=5 => {
                        let offset = match rng.below(4) {
                            0 => 0,
                            1 => rng.below(2_000_000),
                            2 => rng.below(200_000_000),
                            _ => rng.below(100) * 86_400_000_000,
                        };
                        let when = SimTime::from_micros(now + offset);
                        let payload = rng.next_u64();
                        heap.schedule(when, payload);
                        cal.schedule(when, payload);
                    }
                    // Pop unconditionally.
                    6..=8 => {
                        let a = heap.pop();
                        let b = cal.pop();
                        assert_eq!(a, b, "seed {seed}");
                        if let Some((when, _)) = a {
                            now = now.max(when.as_micros());
                        }
                    }
                    // Pop against a horizon.
                    _ => {
                        let horizon = SimTime::from_micros(now + rng.below(50_000_000));
                        let a = heap.pop_if_at_or_before(horizon);
                        let b = cal.pop_if_at_or_before(horizon);
                        assert_eq!(a, b, "seed {seed}");
                        if let Some((when, _)) = a {
                            now = now.max(when.as_micros());
                        }
                    }
                }
                assert_eq!(heap.len(), cal.len(), "seed {seed}");
            }
            // Drain both completely: the tails must match too.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "seed {seed} drain");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.scheduled_total(), cal.scheduled_total());
        }
    }
}
