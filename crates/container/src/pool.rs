//! The per-worker Container Pool (Fig. 2).
//!
//! Stores every container the worker knows about and answers the queries the
//! FlowCon modules need: the running set (for the allocator and Algorithm 1)
//! and the total count (Algorithm 2's `T(i)`).
//!
//! Iteration order is always ascending container id, which makes every
//! downstream computation deterministic.

use std::collections::BTreeMap;

use crate::container::Container;
use crate::id::ContainerId;
use crate::workload::Workload;

/// An id-ordered collection of containers.
pub struct ContainerPool<W> {
    containers: BTreeMap<ContainerId, Container<W>>,
}

impl<W> Default for ContainerPool<W> {
    fn default() -> Self {
        ContainerPool {
            containers: BTreeMap::new(),
        }
    }
}

impl<W: Workload> ContainerPool<W> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a container (replaces any with the same id).
    pub fn insert(&mut self, container: Container<W>) {
        self.containers.insert(container.id(), container);
    }

    /// Remove a container, returning it.
    pub fn remove(&mut self, id: ContainerId) -> Option<Container<W>> {
        self.containers.remove(&id)
    }

    /// Borrow a container.
    pub fn get(&self, id: ContainerId) -> Option<&Container<W>> {
        self.containers.get(&id)
    }

    /// Mutably borrow a container.
    pub fn get_mut(&mut self, id: ContainerId) -> Option<&mut Container<W>> {
        self.containers.get_mut(&id)
    }

    /// True if the pool holds this id.
    pub fn contains(&self, id: ContainerId) -> bool {
        self.containers.contains_key(&id)
    }

    /// Total number of containers (running or not) — Algorithm 2's `T(i)`.
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// All containers in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Container<W>> {
        self.containers.values()
    }

    /// All containers in id order, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Container<W>> {
        self.containers.values_mut()
    }

    /// Ids of containers currently in the `Running` state, in id order.
    ///
    /// Allocates a fresh `Vec`; iteration-only callers should prefer
    /// [`ContainerPool::running_ids_iter`].
    pub fn running_ids(&self) -> Vec<ContainerId> {
        self.running_ids_iter().collect()
    }

    /// Iterate over running container ids in id order without allocating.
    pub fn running_ids_iter(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.containers
            .values()
            .filter(|c| c.state().is_runnable())
            .map(|c| c.id())
    }

    /// Number of running containers.
    pub fn running_count(&self) -> usize {
        self.containers
            .values()
            .filter(|c| c.state().is_runnable())
            .count()
    }

    /// All ids currently known, in id order.
    pub fn ids(&self) -> Vec<ContainerId> {
        self.containers.keys().copied().collect()
    }

    /// Allocation-free variant of [`ContainerPool::ids`]: clears `out` and
    /// refills it in place.
    pub fn ids_into(&self, out: &mut Vec<ContainerId>) {
        out.clear();
        out.extend(self.containers.keys().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::limits::ResourceLimits;
    use crate::state::ContainerState;
    use crate::workload::FixedWork;
    use flowcon_sim::time::SimTime;

    fn container(raw: u32) -> Container<FixedWork> {
        Container::new(
            ContainerId::from_raw(raw),
            Image::new("img", "latest"),
            FixedWork::new(format!("job-{raw}"), 10.0, 1.0),
            ResourceLimits::default(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut pool = ContainerPool::new();
        pool.insert(container(2));
        pool.insert(container(1));
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(ContainerId::from_raw(1)));
        let removed = pool.remove(ContainerId::from_raw(1)).unwrap();
        assert_eq!(removed.id().as_raw(), 1);
        assert_eq!(pool.len(), 1);
        assert!(pool.get(ContainerId::from_raw(1)).is_none());
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut pool = ContainerPool::new();
        for raw in [5, 1, 3, 2, 4] {
            pool.insert(container(raw));
        }
        let ids: Vec<u32> = pool.iter().map(|c| c.id().as_raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn running_ids_filters_by_state() {
        let mut pool = ContainerPool::new();
        pool.insert(container(1));
        pool.insert(container(2));
        pool.get_mut(ContainerId::from_raw(2))
            .unwrap()
            .transition(ContainerState::Running, SimTime::ZERO)
            .unwrap();
        assert_eq!(pool.running_count(), 1);
        assert_eq!(pool.running_ids(), vec![ContainerId::from_raw(2)]);
    }
}
