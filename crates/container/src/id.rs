//! Container identifiers.

use std::fmt;

/// A container id: a dense `u32` index rendered as a short Docker-style
/// hex hash.
///
/// Ids are allocated sequentially by the daemon, which keeps experiment
/// output stable across runs *and* makes the raw value usable as a direct
/// array index in the dense (headless) cluster path.  Four bytes cover
/// four billion containers per worker — far beyond any simulated session —
/// and halve the footprint of every id-bearing record, which matters at
/// one million workers.  Displayed as 12 hex digits so logs look like
/// `docker ps` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(u32);

impl ContainerId {
    /// Construct from a raw integer (used by the daemon's allocator).
    pub const fn from_raw(raw: u32) -> Self {
        ContainerId(raw)
    }

    /// The raw integer value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// The raw value widened to a `usize` array index (dense path).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Short hex rendering, like the 12-character ids `docker ps` shows.
    ///
    /// The raw id is mixed through a SplitMix64 finalizer so consecutive
    /// containers don't produce visually adjacent hashes.  The mix widens
    /// to 64 bits first, so renderings are identical to the old `u64` ids
    /// for every value a daemon actually allocates.
    pub fn short_hex(self) -> String {
        let mut z = (self.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        format!("{:012x}", z & 0xFFFF_FFFF_FFFF)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

/// Sequential id allocator owned by the daemon.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// A fresh allocator starting at id 0.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Allocate the next id.
    ///
    /// Panics on exhaustion of the 32-bit id space — over four billion
    /// containers on one worker means the simulation configuration is
    /// broken, not that wider ids are needed.
    pub fn allocate(&mut self) -> ContainerId {
        let id = ContainerId(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("container id space exhausted");
        id
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_sequential() {
        let mut a = IdAllocator::new();
        assert_eq!(a.allocate().as_raw(), 0);
        assert_eq!(a.allocate().as_raw(), 1);
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn short_hex_is_stable_and_distinct() {
        let a = ContainerId::from_raw(1).short_hex();
        let b = ContainerId::from_raw(2).short_hex();
        assert_eq!(a.len(), 12);
        assert_ne!(a, b);
        assert_eq!(a, ContainerId::from_raw(1).short_hex());
    }

    #[test]
    fn display_matches_short_hex() {
        let id = ContainerId::from_raw(77);
        assert_eq!(id.to_string(), id.short_hex());
    }

    #[test]
    fn id_is_four_bytes() {
        // The dense cluster path depends on compact ids: a fat id would
        // silently bloat every per-container record.
        assert_eq!(std::mem::size_of::<ContainerId>(), 4);
        assert_eq!(std::mem::size_of::<Option<ContainerId>>(), 8);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ContainerId::from_raw(41).index(), 41);
    }
}
