//! Container identifiers.

use std::fmt;

/// A container id: a dense `u64` rendered as a short Docker-style hex hash.
///
/// Ids are allocated sequentially by the daemon, which keeps experiment
/// output stable across runs, but displayed as 12 hex digits so logs look
/// like `docker ps` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(u64);

impl ContainerId {
    /// Construct from a raw integer (used by the daemon's allocator).
    pub const fn from_raw(raw: u64) -> Self {
        ContainerId(raw)
    }

    /// The raw integer value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Short hex rendering, like the 12-character ids `docker ps` shows.
    ///
    /// The raw id is mixed through a SplitMix64 finalizer so consecutive
    /// containers don't produce visually adjacent hashes.
    pub fn short_hex(self) -> String {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        format!("{:012x}", z & 0xFFFF_FFFF_FFFF)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

/// Sequential id allocator owned by the daemon.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// A fresh allocator starting at id 0.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Allocate the next id.
    pub fn allocate(&mut self) -> ContainerId {
        let id = ContainerId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_sequential() {
        let mut a = IdAllocator::new();
        assert_eq!(a.allocate().as_raw(), 0);
        assert_eq!(a.allocate().as_raw(), 1);
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn short_hex_is_stable_and_distinct() {
        let a = ContainerId::from_raw(1).short_hex();
        let b = ContainerId::from_raw(2).short_hex();
        assert_eq!(a.len(), 12);
        assert_ne!(a, b);
        assert_eq!(a, ContainerId::from_raw(1).short_hex());
    }

    #[test]
    fn display_matches_short_hex() {
        let id = ContainerId::from_raw(77);
        assert_eq!(id.to_string(), id.short_hex());
    }
}
