//! The container object.

use std::sync::Arc;

use flowcon_sim::time::SimTime;

use crate::error::ContainerError;
use crate::id::ContainerId;
use crate::image::Image;
use crate::limits::ResourceLimits;
use crate::state::ContainerState;
use crate::stats::ContainerStats;
use crate::workload::{Workload, WorkloadStatus};

/// A container: identity + lifecycle + limits + stats + payload.
///
/// Generic over the workload type so substrate tests can use toy payloads
/// while experiments attach `flowcon-dl` training jobs.
pub struct Container<W> {
    id: ContainerId,
    /// Shared with the registry the container was started from: launching a
    /// container never clones the image's name strings.
    image: Arc<Image>,
    state: ContainerState,
    limits: ResourceLimits,
    stats: ContainerStats,
    workload: W,
    created_at: SimTime,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
}

impl<W: Workload> Container<W> {
    /// Create a container in the `Created` state.
    ///
    /// Accepts an owned [`Image`] or a shared `Arc<Image>` (the daemon
    /// passes the registry's shared copy so no strings are cloned).
    pub fn new(
        id: ContainerId,
        image: impl Into<Arc<Image>>,
        workload: W,
        limits: ResourceLimits,
        created_at: SimTime,
    ) -> Self {
        Container {
            id,
            image: image.into(),
            state: ContainerState::Created,
            limits,
            stats: ContainerStats::default(),
            workload,
            created_at,
            started_at: None,
            finished_at: None,
        }
    }

    /// The container id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The image this container was started from.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Current resource limits.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Replace the limits (the `docker update` path).
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    /// Usage accounting.
    pub fn stats(&self) -> &ContainerStats {
        &self.stats
    }

    /// Mutable usage accounting (driven by the daemon's `advance`).
    pub(crate) fn stats_mut(&mut self) -> &mut ContainerStats {
        &mut self.stats
    }

    /// Configure the stats sample-window capacity (`0` disables sampling;
    /// see [`ContainerStats::set_window_cap`]).
    pub fn set_stats_window(&mut self, cap: usize) {
        self.stats.set_window_cap(cap);
    }

    /// The attached workload.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Mutable access to the workload (driven by the daemon's `advance`).
    pub(crate) fn workload_mut(&mut self) -> &mut W {
        &mut self.workload
    }

    /// Creation time.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// Start time, if started.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Exit time, if exited.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// Wall-clock completion time (exit − creation), the paper's per-job
    /// metric ("we compute completion time whenever the container is marked
    /// as exited", §5.5.1).
    pub fn completion_time(&self) -> Option<f64> {
        self.finished_at
            .map(|end| end.saturating_since(self.created_at).as_secs_f64())
    }

    /// Attempt a lifecycle transition, stamping start/finish times.
    pub fn transition(&mut self, to: ContainerState, at: SimTime) -> Result<(), ContainerError> {
        if !self.state.can_transition_to(to) {
            return Err(ContainerError::InvalidTransition {
                id: self.id,
                from: self.state,
                to,
            });
        }
        match to {
            ContainerState::Running if self.started_at.is_none() => {
                self.started_at = Some(at);
            }
            ContainerState::Exited(_) => self.finished_at = Some(at),
            _ => {}
        }
        self.state = to;
        Ok(())
    }

    /// Exit code the workload's status implies, if it is done.
    pub fn implied_exit(&self) -> Option<i32> {
        match self.workload.status() {
            WorkloadStatus::Running => None,
            WorkloadStatus::Finished => Some(0),
            WorkloadStatus::Failed(code) => Some(code),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FixedWork;

    fn make(total: f64) -> Container<FixedWork> {
        Container::new(
            ContainerId::from_raw(0),
            Image::new("pytorch/pytorch", "latest"),
            FixedWork::new("toy", total, 1.0),
            ResourceLimits::default(),
            SimTime::from_secs(10),
        )
    }

    #[test]
    fn lifecycle_with_timestamps() {
        let mut c = make(5.0);
        assert_eq!(c.state(), ContainerState::Created);
        c.transition(ContainerState::Running, SimTime::from_secs(11))
            .unwrap();
        assert_eq!(c.started_at(), Some(SimTime::from_secs(11)));
        c.transition(ContainerState::Exited(0), SimTime::from_secs(30))
            .unwrap();
        assert_eq!(c.finished_at(), Some(SimTime::from_secs(30)));
        assert!((c.completion_time().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn illegal_transition_is_error() {
        let mut c = make(5.0);
        let err = c
            .transition(ContainerState::Paused, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ContainerError::InvalidTransition { .. }));
    }

    #[test]
    fn pause_does_not_reset_start_time() {
        let mut c = make(5.0);
        c.transition(ContainerState::Running, SimTime::from_secs(1))
            .unwrap();
        c.transition(ContainerState::Paused, SimTime::from_secs(2))
            .unwrap();
        c.transition(ContainerState::Running, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(c.started_at(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn implied_exit_follows_workload() {
        let mut c = make(1.0);
        assert_eq!(c.implied_exit(), None);
        c.workload_mut().advance(SimTime::ZERO, 2.0);
        assert_eq!(c.implied_exit(), Some(0));
    }
}
