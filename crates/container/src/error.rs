//! Substrate error type.

use std::fmt;

use crate::id::ContainerId;
use crate::state::ContainerState;

/// Errors returned by the container daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainerError {
    /// The container id is unknown to this daemon.
    NoSuchContainer(ContainerId),
    /// The image reference is not present in the registry.
    NoSuchImage(String),
    /// A lifecycle transition was rejected.
    InvalidTransition {
        /// Container whose transition was rejected.
        id: ContainerId,
        /// State it is currently in.
        from: ContainerState,
        /// State that was requested.
        to: ContainerState,
    },
    /// An operation requires a running container.
    NotRunning(ContainerId),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::NoSuchContainer(id) => write!(f, "no such container: {id}"),
            ContainerError::NoSuchImage(r) => write!(f, "no such image: {r}"),
            ContainerError::InvalidTransition { id, from, to } => {
                write!(f, "container {id}: illegal transition {from} -> {to}")
            }
            ContainerError::NotRunning(id) => write!(f, "container {id} is not running"),
        }
    }
}

impl std::error::Error for ContainerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let id = ContainerId::from_raw(3);
        let e = ContainerError::InvalidTransition {
            id,
            from: ContainerState::Exited(0),
            to: ContainerState::Running,
        };
        let msg = e.to_string();
        assert!(msg.contains("illegal transition"));
        assert!(msg.contains("exited(0)"));
        assert!(ContainerError::NoSuchImage("x:y".into())
            .to_string()
            .contains("x:y"));
    }
}
