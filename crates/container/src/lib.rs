//! # flowcon-container
//!
//! A Docker-like container runtime substrate.
//!
//! The FlowCon paper implements its middleware against Docker CE 18.09: the
//! Executor issues `docker update` commands with fractional CPU limits, the
//! Container Monitor polls `docker stats`-style usage, and the Worker
//! Monitor's listeners watch the container pool for arrivals and exits.
//! This crate reproduces that surface:
//!
//! * [`id`] — 64-bit container ids rendered like short Docker hashes.
//! * [`image`] — an image catalog (`pytorch/pytorch`, `tensorflow/...`).
//! * [`state`] — the container lifecycle state machine
//!   (`Created → Running → Exited`, with `Paused` detours).
//! * [`limits`] — resource limits with Docker's *soft* semantics and an
//!   [`limits::UpdateOptions`] builder mirroring `docker update` flags.
//! * [`stats`] — per-container usage accounting for the four resources the
//!   paper's Container Monitor records (§3.2.1).
//! * [`container`] — the container object binding id, image, state, limits,
//!   stats and an attached [`workload::Workload`].
//! * [`pool`] — the per-worker Container Pool of Fig. 2.
//! * [`daemon`] — the daemon facade (`run` / `update` / `stop` / `ps` /
//!   `inspect` / `stats` / `events`).
//! * [`events`] — a drainable docker-events stream consumed by FlowCon's
//!   listeners (Algorithm 2).
//! * [`workload`] — the trait a payload implements so the node simulation
//!   can drive it with allocated CPU time (implemented by `flowcon-dl`).
//!
//! The daemon never advances time on its own: the simulation (or the
//! real-thread runtime) calls [`daemon::Daemon::advance`] with the CPU rates
//! chosen by the allocator, which keeps this crate independent of any
//! particular clock.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod container;
pub mod daemon;
pub mod error;
pub mod events;
pub mod id;
pub mod image;
pub mod limits;
pub mod pool;
pub mod state;
pub mod stats;
pub mod workload;

pub use container::Container;
pub use daemon::Daemon;
pub use error::ContainerError;
pub use events::{ContainerEvent, EventLog};
pub use id::ContainerId;
pub use image::{Image, ImageRegistry};
pub use limits::{ResourceLimits, UpdateOptions};
pub use pool::ContainerPool;
pub use state::ContainerState;
pub use stats::{ContainerStats, UsageSample};
pub use workload::{Workload, WorkloadStatus};
