//! Container images.
//!
//! The paper's jobs ship as framework images (`pytorch/pytorch`,
//! `tensorflow/tensorflow`, Keras, ...) started with `docker run -d
//! <DL_job>`.  The catalog here is a small name→image map used by workload
//! generators to label containers the way the paper labels jobs, e.g.
//! "MNIST (Tensorflow)".

use std::collections::BTreeMap;
use std::fmt;

/// An immutable image description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `pytorch/pytorch`.
    pub name: String,
    /// Tag, e.g. `latest` or `18.09-cpu`.
    pub tag: String,
}

impl Image {
    /// Build an image reference.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        Image {
            name: name.into(),
            tag: tag.into(),
        }
    }

    /// Parse a `name:tag` reference; a missing tag defaults to `latest`.
    pub fn parse(reference: &str) -> Self {
        match reference.split_once(':') {
            Some((name, tag)) if !tag.is_empty() => Image::new(name, tag),
            _ => Image::new(reference.trim_end_matches(':'), "latest"),
        }
    }

    /// Canonical `name:tag` reference string.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

/// A local image store, keyed by reference.
#[derive(Debug, Default, Clone)]
pub struct ImageRegistry {
    images: BTreeMap<String, Image>,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the framework images the paper uses.
    pub fn with_dl_defaults() -> Self {
        let mut r = Self::new();
        r.pull(Image::new("pytorch/pytorch", "latest"));
        r.pull(Image::new("tensorflow/tensorflow", "latest"));
        r.pull(Image::new("keras/keras", "latest"));
        r
    }

    /// Add (or replace) an image.
    pub fn pull(&mut self, image: Image) {
        self.images.insert(image.reference(), image);
    }

    /// Look up an image by `name:tag` reference.
    pub fn get(&self, reference: &str) -> Option<&Image> {
        self.images.get(reference)
    }

    /// True if the reference exists locally.
    pub fn contains(&self, reference: &str) -> bool {
        self.images.contains_key(reference)
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if the registry holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Iterate over images in reference order.
    pub fn iter(&self) -> impl Iterator<Item = &Image> {
        self.images.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_and_without_tag() {
        assert_eq!(
            Image::parse("pytorch/pytorch:1.0"),
            Image::new("pytorch/pytorch", "1.0")
        );
        assert_eq!(
            Image::parse("tensorflow/tensorflow"),
            Image::new("tensorflow/tensorflow", "latest")
        );
        assert_eq!(Image::parse("busybox:"), Image::new("busybox", "latest"));
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = ImageRegistry::new();
        assert!(r.is_empty());
        r.pull(Image::new("a/b", "v1"));
        assert!(r.contains("a/b:v1"));
        assert_eq!(r.get("a/b:v1").unwrap().tag, "v1");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn defaults_include_both_frameworks() {
        let r = ImageRegistry::with_dl_defaults();
        assert!(r.contains("pytorch/pytorch:latest"));
        assert!(r.contains("tensorflow/tensorflow:latest"));
    }

    #[test]
    fn display_is_reference() {
        assert_eq!(Image::new("x", "y").to_string(), "x:y");
    }
}
