//! Container images.
//!
//! The paper's jobs ship as framework images (`pytorch/pytorch`,
//! `tensorflow/tensorflow`, Keras, ...) started with `docker run -d
//! <DL_job>`.  The catalog here is a small name→image map used by workload
//! generators to label containers the way the paper labels jobs, e.g.
//! "MNIST (Tensorflow)".
//!
//! A registry is immutable once built, so one instance can back an entire
//! cluster: [`Daemon`](crate::daemon::Daemon)s hold an
//! `Arc<ImageRegistry>`, and [`shared_dl_defaults`] hands out one
//! process-wide copy of the paper's default catalog instead of
//! re-allocating it per worker (the PR-2 profile showed a fresh
//! `with_dl_defaults` per simulated worker dominating cluster fixed
//! overhead).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// An immutable image description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `pytorch/pytorch`.
    pub name: String,
    /// Tag, e.g. `latest` or `18.09-cpu`.
    pub tag: String,
}

impl Image {
    /// Build an image reference.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        Image {
            name: name.into(),
            tag: tag.into(),
        }
    }

    /// Parse a `name:tag` reference; a missing tag defaults to `latest`.
    pub fn parse(reference: &str) -> Self {
        match reference.split_once(':') {
            Some((name, tag)) if !tag.is_empty() => Image::new(name, tag),
            _ => Image::new(reference.trim_end_matches(':'), "latest"),
        }
    }

    /// Canonical `name:tag` reference string.
    ///
    /// Allocates a fresh `String` per call; hot paths that already own a
    /// buffer should prefer [`Image::write_reference`] (or the `Display`
    /// impl inside a larger `write!`).
    pub fn reference(&self) -> String {
        let mut out = String::with_capacity(self.name.len() + 1 + self.tag.len());
        self.write_reference(&mut out);
        out
    }

    /// Append the canonical `name:tag` reference to `out` without
    /// allocating a fresh `String` (beyond growing `out` if needed).
    pub fn write_reference(&self, out: &mut String) {
        write!(out, "{self}").expect("writing to a String never fails");
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

/// A local image store, keyed by reference.
///
/// Images are stored behind `Arc`s so a daemon can hand a started container
/// its image without cloning the name strings ([`ImageRegistry::get_shared`]).
#[derive(Debug, Default, Clone)]
pub struct ImageRegistry {
    images: BTreeMap<String, Arc<Image>>,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the framework images the paper uses.
    ///
    /// Allocates a fresh catalog; cluster-scale callers should prefer
    /// [`shared_dl_defaults`], which builds this once per process.
    pub fn with_dl_defaults() -> Self {
        let mut r = Self::new();
        r.pull(Image::new("pytorch/pytorch", "latest"));
        r.pull(Image::new("tensorflow/tensorflow", "latest"));
        r.pull(Image::new("keras/keras", "latest"));
        r
    }

    /// Add (or replace) an image.
    pub fn pull(&mut self, image: Image) {
        self.images.insert(image.reference(), Arc::new(image));
    }

    /// Look up an image by `name:tag` reference.
    pub fn get(&self, reference: &str) -> Option<&Image> {
        self.images.get(reference).map(|i| &**i)
    }

    /// Look up an image by reference, sharing ownership (no string clones).
    pub fn get_shared(&self, reference: &str) -> Option<Arc<Image>> {
        self.images.get(reference).cloned()
    }

    /// True if the reference exists locally.
    pub fn contains(&self, reference: &str) -> bool {
        self.images.contains_key(reference)
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if the registry holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Iterate over images in reference order.
    pub fn iter(&self) -> impl Iterator<Item = &Image> {
        self.images.values().map(|i| &**i)
    }
}

/// The process-wide shared copy of [`ImageRegistry::with_dl_defaults`].
///
/// Built on first use and reference-counted from then on: a 10k-worker
/// cluster pays for the default catalog once, not 10k times.  The registry
/// behind the `Arc` is immutable; callers that need a different catalog
/// build their own `Arc<ImageRegistry>` and pass it to
/// [`Daemon::with_shared_images`](crate::daemon::Daemon::with_shared_images).
pub fn shared_dl_defaults() -> Arc<ImageRegistry> {
    static SHARED: OnceLock<Arc<ImageRegistry>> = OnceLock::new();
    SHARED
        .get_or_init(|| Arc::new(ImageRegistry::with_dl_defaults()))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_and_without_tag() {
        assert_eq!(
            Image::parse("pytorch/pytorch:1.0"),
            Image::new("pytorch/pytorch", "1.0")
        );
        assert_eq!(
            Image::parse("tensorflow/tensorflow"),
            Image::new("tensorflow/tensorflow", "latest")
        );
        assert_eq!(Image::parse("busybox:"), Image::new("busybox", "latest"));
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = ImageRegistry::new();
        assert!(r.is_empty());
        r.pull(Image::new("a/b", "v1"));
        assert!(r.contains("a/b:v1"));
        assert_eq!(r.get("a/b:v1").unwrap().tag, "v1");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn defaults_include_both_frameworks() {
        let r = ImageRegistry::with_dl_defaults();
        assert!(r.contains("pytorch/pytorch:latest"));
        assert!(r.contains("tensorflow/tensorflow:latest"));
    }

    #[test]
    fn display_is_reference() {
        assert_eq!(Image::new("x", "y").to_string(), "x:y");
    }

    #[test]
    fn write_reference_appends_without_clobbering() {
        let img = Image::new("pytorch/pytorch", "latest");
        let mut buf = String::from("image=");
        img.write_reference(&mut buf);
        assert_eq!(buf, "image=pytorch/pytorch:latest");
        assert_eq!(img.reference(), "pytorch/pytorch:latest");
    }

    #[test]
    fn shared_defaults_is_one_instance() {
        let a = shared_dl_defaults();
        let b = shared_dl_defaults();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.contains("keras/keras:latest"));
    }

    #[test]
    fn get_shared_aliases_the_stored_image() {
        let r = ImageRegistry::with_dl_defaults();
        let a = r.get_shared("pytorch/pytorch:latest").unwrap();
        let b = r.get_shared("pytorch/pytorch:latest").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "no string clones on lookup");
        assert!(r.get_shared("missing:latest").is_none());
    }
}
