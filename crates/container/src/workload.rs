//! The workload contract between containers and the payloads they run.
//!
//! FlowCon is framework-agnostic: it only assumes each job exposes "its own
//! evaluation function" E(t) (§3.3).  The node simulation drives a workload
//! with the CPU time the allocator granted; the workload reports demand,
//! progress and the evaluation-function value FlowCon samples.
//! `flowcon-dl` provides the deep-learning implementations.

use flowcon_sim::resources::ResourceVec;
use flowcon_sim::time::SimTime;

/// Completion status of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadStatus {
    /// Still training.
    Running,
    /// Converged / finished; the container should exit with code 0.
    Finished,
    /// Crashed; the container should exit with the given nonzero code.
    Failed(i32),
}

/// A payload that consumes CPU and exposes an evaluation function.
pub trait Workload {
    /// Human-readable label, e.g. `MNIST (Tensorflow)`.
    fn label(&self) -> &str;

    /// The largest CPU fraction this workload can exploit right now.
    ///
    /// Real DL jobs rarely scale to a full node (paper Fig. 11, 0–50 s); the
    /// allocator treats this as a demand ceiling.
    fn demand(&self) -> f64;

    /// Consume `cpu_seconds` of effective CPU time ending at `now`.
    fn advance(&mut self, now: SimTime, cpu_seconds: f64);

    /// Current value of the job's evaluation function (loss, accuracy, ...).
    ///
    /// `None` models jobs that have not yet emitted a measurement (e.g.
    /// still importing data) — FlowCon must tolerate this.
    fn eval(&self, now: SimTime) -> Option<f64>;

    /// Completion status.
    fn status(&self) -> WorkloadStatus;

    /// Remaining effective CPU-seconds until completion, if predictable.
    ///
    /// The fluid simulation uses this to locate the next completion event
    /// exactly; workloads without a closed form may return `None` and the
    /// simulation will fall back to fixed-step integration.
    fn remaining_cpu_seconds(&self) -> Option<f64>;

    /// Steady non-CPU resource usage rates while running (memory fraction
    /// held, block-I/O and network-I/O bandwidth fractions).  The CPU
    /// component is ignored — the allocator decides CPU.
    ///
    /// Defaults to zero; `flowcon-dl` models override it so the Container
    /// Monitor's four-resource accounting (§3.2.1) has real data.
    fn footprint(&self) -> ResourceVec {
        ResourceVec::ZERO
    }
}

/// A trivial fixed-size workload used by substrate tests.
///
/// Consumes a fixed number of CPU-seconds and exposes a linearly decreasing
/// "loss" so monitor plumbing can be exercised without `flowcon-dl`.
#[derive(Debug, Clone)]
pub struct FixedWork {
    label: String,
    total: f64,
    done: f64,
    demand: f64,
}

impl FixedWork {
    /// A workload needing `total` effective CPU-seconds with demand ceiling.
    pub fn new(label: impl Into<String>, total: f64, demand: f64) -> Self {
        assert!(total > 0.0 && demand > 0.0);
        FixedWork {
            label: label.into(),
            total,
            done: 0.0,
            demand,
        }
    }

    /// Fraction of work completed in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.done / self.total).min(1.0)
    }
}

impl Workload for FixedWork {
    fn label(&self) -> &str {
        &self.label
    }

    fn demand(&self) -> f64 {
        self.demand
    }

    fn advance(&mut self, _now: SimTime, cpu_seconds: f64) {
        debug_assert!(cpu_seconds >= 0.0);
        self.done = (self.done + cpu_seconds).min(self.total);
    }

    fn eval(&self, _now: SimTime) -> Option<f64> {
        // A synthetic "loss" falling linearly from 1 to 0.
        Some(1.0 - self.progress())
    }

    fn status(&self) -> WorkloadStatus {
        if self.done >= self.total {
            WorkloadStatus::Finished
        } else {
            WorkloadStatus::Running
        }
    }

    fn remaining_cpu_seconds(&self) -> Option<f64> {
        Some((self.total - self.done).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_work_runs_to_completion() {
        let mut w = FixedWork::new("toy", 10.0, 0.8);
        assert_eq!(w.status(), WorkloadStatus::Running);
        assert_eq!(w.remaining_cpu_seconds(), Some(10.0));
        w.advance(SimTime::from_secs(1), 4.0);
        assert!((w.progress() - 0.4).abs() < 1e-12);
        assert_eq!(w.eval(SimTime::from_secs(1)), Some(0.6));
        w.advance(SimTime::from_secs(2), 7.0); // overshoot clamps
        assert_eq!(w.status(), WorkloadStatus::Finished);
        assert_eq!(w.remaining_cpu_seconds(), Some(0.0));
    }

    #[test]
    fn demand_is_reported() {
        let w = FixedWork::new("toy", 1.0, 0.65);
        assert_eq!(w.demand(), 0.65);
        assert_eq!(w.label(), "toy");
    }

    #[test]
    #[should_panic]
    fn zero_total_rejected() {
        FixedWork::new("bad", 0.0, 1.0);
    }
}
