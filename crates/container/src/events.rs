//! The docker-events stream.
//!
//! FlowCon's Worker Monitor runs two listeners — *New Cons* and *Finished
//! Cons* (§3.2.2) — that react to containers entering and leaving the pool.
//! The daemon records lifecycle events here; listeners drain them with a
//! cursor so multiple consumers can observe the same history independently.

use flowcon_sim::time::SimTime;

use crate::id::ContainerId;

/// A lifecycle event, analogous to one line of `docker events`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContainerEvent {
    /// Container created (not yet running).
    Created {
        /// Subject container.
        id: ContainerId,
        /// Event time.
        at: SimTime,
    },
    /// Container started running.
    Started {
        /// Subject container.
        id: ContainerId,
        /// Event time.
        at: SimTime,
    },
    /// Container exited.
    Died {
        /// Subject container.
        id: ContainerId,
        /// Event time.
        at: SimTime,
        /// Exit code (0 = converged).
        exit_code: i32,
    },
}

impl ContainerEvent {
    /// The container the event concerns.
    pub fn id(&self) -> ContainerId {
        match *self {
            ContainerEvent::Created { id, .. }
            | ContainerEvent::Started { id, .. }
            | ContainerEvent::Died { id, .. } => id,
        }
    }

    /// When the event happened.
    pub fn at(&self) -> SimTime {
        match *self {
            ContainerEvent::Created { at, .. }
            | ContainerEvent::Started { at, .. }
            | ContainerEvent::Died { at, .. } => at,
        }
    }
}

/// An append-only event log with cursor-based consumption.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<ContainerEvent>,
}

/// A consumer position in an [`EventLog`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCursor(usize);

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: ContainerEvent) {
        self.events.push(event);
    }

    /// Events appended since `cursor`, advancing the cursor.
    pub fn drain_since(&self, cursor: &mut EventCursor) -> &[ContainerEvent] {
        let start = cursor.0.min(self.events.len());
        cursor.0 = self.events.len();
        &self.events[start..]
    }

    /// Total number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Full history (newest last).
    pub fn all(&self) -> &[ContainerEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32, s: u64) -> ContainerEvent {
        ContainerEvent::Started {
            id: ContainerId::from_raw(i),
            at: SimTime::from_secs(s),
        }
    }

    #[test]
    fn cursors_are_independent() {
        let mut log = EventLog::new();
        log.push(ev(1, 1));
        log.push(ev(2, 2));

        let mut a = EventCursor::default();
        let mut b = EventCursor::default();
        assert_eq!(log.drain_since(&mut a).len(), 2);
        assert_eq!(log.drain_since(&mut a).len(), 0, "cursor advanced");
        log.push(ev(3, 3));
        assert_eq!(log.drain_since(&mut a).len(), 1);
        assert_eq!(log.drain_since(&mut b).len(), 3, "b sees full history");
    }

    #[test]
    fn accessors() {
        let e = ContainerEvent::Died {
            id: ContainerId::from_raw(9),
            at: SimTime::from_secs(4),
            exit_code: 137,
        };
        assert_eq!(e.id().as_raw(), 9);
        assert_eq!(e.at(), SimTime::from_secs(4));
    }

    #[test]
    fn stale_cursor_is_clamped() {
        let log = EventLog::new();
        let mut c = EventCursor(10);
        assert!(log.drain_since(&mut c).is_empty());
    }
}
