//! Resource limits and the `docker update` option surface.
//!
//! FlowCon's Executor applies Algorithm 1's decisions through commands like
//! `docker update --cpus 0.25 <cid>` (§4.1).  Limits here are *soft* in
//! exactly Docker's sense: they cap a container's entitled share, but the
//! water-filling allocator (in `flowcon-sim`) redistributes whatever a
//! container leaves unused.

use flowcon_sim::resources::{ResourceKind, ResourceVec};

/// Soft resource limits attached to a container.
///
/// All values are fractions of the node's capacity in `[0, 1]`; `1.0` means
/// unconstrained (the Docker default when no flag is passed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceLimits {
    limits: ResourceVec,
}

impl Default for ResourceLimits {
    /// Docker's default: no limits (free competition).
    fn default() -> Self {
        ResourceLimits {
            limits: ResourceVec::splat(1.0),
        }
    }
}

impl ResourceLimits {
    /// Unconstrained limits (the NA baseline).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limits with only the CPU fraction constrained.
    pub fn cpu(limit: f64) -> Self {
        let mut l = Self::default();
        l.set(ResourceKind::Cpu, limit);
        l
    }

    /// Read the limit for a resource kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.limits.get(kind)
    }

    /// Set the limit for a resource kind, clamped to `[0, 1]`.
    ///
    /// Clamping mirrors the daemon's validation of `docker update` values:
    /// out-of-range requests are coerced rather than crashing the middleware.
    pub fn set(&mut self, kind: ResourceKind, limit: f64) {
        let v = if limit.is_finite() {
            limit.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.limits.set(kind, v);
    }

    /// The CPU limit — the value FlowCon's evaluation focuses on.
    pub fn cpu_limit(&self) -> f64 {
        self.get(ResourceKind::Cpu)
    }

    /// The underlying vector (one fraction per resource kind).
    pub fn as_vec(&self) -> ResourceVec {
        self.limits
    }
}

/// A builder mirroring `docker update` command-line options.
///
/// ```
/// use flowcon_container::limits::UpdateOptions;
///
/// // docker update --cpus 0.25 --memory 512 <cid>
/// let opts = UpdateOptions::new().cpus(0.25).memory_fraction(0.5);
/// assert_eq!(opts.render(), "--cpus 0.25 --memory-fraction 0.5");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateOptions {
    /// `--cpus`: CPU fraction limit.
    pub cpus: Option<f64>,
    /// `--memory` expressed as a fraction of node memory.
    pub memory: Option<f64>,
    /// `--blkio-weight` mapped to a bandwidth fraction.
    pub blkio: Option<f64>,
    /// Network bandwidth fraction (via tc/--net shaping in practice).
    pub netio: Option<f64>,
}

impl UpdateOptions {
    /// An empty update (no flags).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the `--cpus` flag.
    pub fn cpus(mut self, v: f64) -> Self {
        self.cpus = Some(v);
        self
    }

    /// Set the memory fraction.
    pub fn memory_fraction(mut self, v: f64) -> Self {
        self.memory = Some(v);
        self
    }

    /// Set the block-I/O fraction.
    pub fn blkio_fraction(mut self, v: f64) -> Self {
        self.blkio = Some(v);
        self
    }

    /// Set the network-I/O fraction.
    pub fn netio_fraction(mut self, v: f64) -> Self {
        self.netio = Some(v);
        self
    }

    /// True if no flag is set (the update would be a no-op).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_none() && self.memory.is_none() && self.blkio.is_none() && self.netio.is_none()
    }

    /// Apply this update onto existing limits, returning the new limits.
    pub fn apply_to(&self, mut limits: ResourceLimits) -> ResourceLimits {
        if let Some(v) = self.cpus {
            limits.set(ResourceKind::Cpu, v);
        }
        if let Some(v) = self.memory {
            limits.set(ResourceKind::Memory, v);
        }
        if let Some(v) = self.blkio {
            limits.set(ResourceKind::BlkIo, v);
        }
        if let Some(v) = self.netio {
            limits.set(ResourceKind::NetIo, v);
        }
        limits
    }

    /// Render as a `docker update`-style flag string (for logs and tests).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = self.cpus {
            parts.push(format!("--cpus {v}"));
        }
        if let Some(v) = self.memory {
            parts.push(format!("--memory-fraction {v}"));
        }
        if let Some(v) = self.blkio {
            parts.push(format!("--blkio-fraction {v}"));
        }
        if let Some(v) = self.netio {
            parts.push(format!("--netio-fraction {v}"));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let l = ResourceLimits::default();
        for kind in flowcon_sim::RESOURCE_KINDS {
            assert_eq!(l.get(kind), 1.0);
        }
    }

    #[test]
    fn set_clamps_to_unit_interval() {
        let mut l = ResourceLimits::default();
        l.set(ResourceKind::Cpu, 1.7);
        assert_eq!(l.cpu_limit(), 1.0);
        l.set(ResourceKind::Cpu, -0.3);
        assert_eq!(l.cpu_limit(), 0.0);
        l.set(ResourceKind::Cpu, f64::NAN);
        assert_eq!(l.cpu_limit(), 1.0);
    }

    #[test]
    fn update_applies_only_set_flags() {
        let base = ResourceLimits::cpu(0.5);
        let updated = UpdateOptions::new().memory_fraction(0.25).apply_to(base);
        assert_eq!(updated.cpu_limit(), 0.5, "cpu untouched");
        assert_eq!(updated.get(ResourceKind::Memory), 0.25);
    }

    #[test]
    fn empty_update_is_identity() {
        let base = ResourceLimits::cpu(0.33);
        let opts = UpdateOptions::new();
        assert!(opts.is_empty());
        assert_eq!(opts.apply_to(base), base);
    }

    #[test]
    fn render_matches_docker_flag_style() {
        let opts = UpdateOptions::new().cpus(0.25);
        assert_eq!(opts.render(), "--cpus 0.25");
        assert_eq!(UpdateOptions::new().render(), "");
    }
}
