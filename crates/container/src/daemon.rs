//! The container daemon facade.
//!
//! Plays the role dockerd plays in the paper: the entry point through which
//! jobs are launched (`docker run -d <DL_job>`), reconfigured (`docker
//! update`), observed (`docker stats`) and reaped.  Clock-free by design:
//! the simulation or real-thread runtime calls [`Daemon::advance`] with the
//! per-container CPU rates chosen by the allocator, and the daemon updates
//! workload progress, usage accounting and lifecycle state, emitting events
//! the FlowCon listeners consume.

use std::sync::Arc;

use flowcon_sim::time::SimTime;

use crate::container::Container;
use crate::error::ContainerError;
use crate::events::{ContainerEvent, EventLog};
use crate::id::{ContainerId, IdAllocator};
use crate::image::ImageRegistry;
use crate::limits::{ResourceLimits, UpdateOptions};
use crate::pool::ContainerPool;
use crate::state::ContainerState;
use crate::stats::ContainerStats;
use crate::workload::{Workload, WorkloadStatus};

/// The daemon: image registry + container pool + event log.
///
/// The registry rides behind an `Arc` so one immutable image catalog can
/// back every daemon in a cluster (`Daemon::with_shared_images`) instead of
/// being rebuilt per worker.
pub struct Daemon<W> {
    images: Arc<ImageRegistry>,
    pool: ContainerPool<W>,
    ids: IdAllocator,
    events: EventLog,
    /// Sample-window capacity given to containers this daemon starts
    /// (`0` disables per-sample history; see [`ContainerStats::new`]).
    stats_window: usize,
    /// Containers that exited, retained for inspection (docker keeps stopped
    /// containers around until `rm`).
    graveyard: ContainerPool<W>,
}

impl<W: Workload> Default for Daemon<W> {
    fn default() -> Self {
        Self::with_shared_images(crate::image::shared_dl_defaults())
    }
}

impl<W: Workload> Daemon<W> {
    /// A daemon owning its own image registry.
    pub fn new(images: ImageRegistry) -> Self {
        Self::with_shared_images(Arc::new(images))
    }

    /// A daemon sharing an immutable image registry (one catalog per
    /// cluster, not one per worker).
    pub fn with_shared_images(images: Arc<ImageRegistry>) -> Self {
        Daemon {
            images,
            pool: ContainerPool::new(),
            ids: IdAllocator::new(),
            events: EventLog::new(),
            stats_window: 4096,
            graveyard: ContainerPool::new(),
        }
    }

    /// Set the per-container stats sample-window capacity for containers
    /// started after this call (`0` disables the window; cumulative
    /// accounting is unaffected).
    pub fn set_stats_window(&mut self, cap: usize) {
        self.stats_window = cap;
    }

    /// The image registry this daemon resolves `docker run` references in.
    pub fn images(&self) -> &ImageRegistry {
        &self.images
    }

    /// `docker run -d <image>`: create and immediately start a container.
    pub fn run(
        &mut self,
        image_ref: &str,
        workload: W,
        limits: ResourceLimits,
        now: SimTime,
    ) -> Result<ContainerId, ContainerError> {
        let image = self
            .images
            .get_shared(image_ref)
            .ok_or_else(|| ContainerError::NoSuchImage(image_ref.to_string()))?;
        let id = self.ids.allocate();
        let mut container = Container::new(id, image, workload, limits, now);
        container.set_stats_window(self.stats_window);
        self.events.push(ContainerEvent::Created { id, at: now });
        container
            .transition(ContainerState::Running, now)
            .expect("Created -> Running is always legal");
        self.events.push(ContainerEvent::Started { id, at: now });
        self.pool.insert(container);
        Ok(id)
    }

    /// `docker update <options> <cid>`: reconfigure soft limits in place.
    pub fn update(&mut self, id: ContainerId, opts: UpdateOptions) -> Result<(), ContainerError> {
        let c = self
            .pool
            .get_mut(id)
            .ok_or(ContainerError::NoSuchContainer(id))?;
        c.set_limits(opts.apply_to(c.limits()));
        Ok(())
    }

    /// `docker stop`: force-exit a running or paused container.
    pub fn stop(&mut self, id: ContainerId, now: SimTime) -> Result<(), ContainerError> {
        let c = self
            .pool
            .get_mut(id)
            .ok_or(ContainerError::NoSuchContainer(id))?;
        // 137 = SIGKILL, what docker stop reports after the grace period.
        c.transition(ContainerState::Exited(137), now)?;
        self.events.push(ContainerEvent::Died {
            id,
            at: now,
            exit_code: 137,
        });
        self.bury(id);
        Ok(())
    }

    /// `docker pause` / `docker unpause`.
    pub fn set_paused(
        &mut self,
        id: ContainerId,
        paused: bool,
        now: SimTime,
    ) -> Result<(), ContainerError> {
        let c = self
            .pool
            .get_mut(id)
            .ok_or(ContainerError::NoSuchContainer(id))?;
        let target = if paused {
            ContainerState::Paused
        } else {
            ContainerState::Running
        };
        c.transition(target, now)
    }

    /// `docker ps`: ids of running containers.
    ///
    /// Allocates a fresh `Vec`; iteration-only callers should prefer
    /// [`Daemon::ps_iter`].
    pub fn ps(&self) -> Vec<ContainerId> {
        self.ps_iter().collect()
    }

    /// `docker ps` without the allocation: iterate running container ids in
    /// id order.
    pub fn ps_iter(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.pool.running_ids_iter()
    }

    /// `docker exec`: run a closure against a live container's workload
    /// (fault injection, debugging probes).
    pub fn exec<F: FnOnce(&mut W)>(&mut self, id: ContainerId, f: F) -> Result<(), ContainerError> {
        let c = self
            .pool
            .get_mut(id)
            .ok_or(ContainerError::NoSuchContainer(id))?;
        if !c.state().is_runnable() {
            return Err(ContainerError::NotRunning(id));
        }
        f(c.workload_mut());
        Ok(())
    }

    /// Reap containers whose workloads have already terminated (e.g. after
    /// a fault was injected via [`Daemon::exec`]) without advancing time.
    pub fn reap(&mut self, now: SimTime) -> Vec<ContainerId> {
        let ready: Vec<(ContainerId, i32)> = self
            .pool
            .iter()
            .filter(|c| c.state().is_runnable())
            .filter_map(|c| c.implied_exit().map(|code| (c.id(), code)))
            .collect();
        let mut exited = Vec::with_capacity(ready.len());
        for (id, code) in ready {
            let c = self.pool.get_mut(id).expect("listed from pool");
            c.transition(ContainerState::Exited(code), now)
                .expect("Running -> Exited is always legal");
            self.events.push(ContainerEvent::Died {
                id,
                at: now,
                exit_code: code,
            });
            exited.push(id);
        }
        for id in &exited {
            self.bury(*id);
        }
        exited
    }

    /// `docker inspect`: borrow a live container.
    pub fn inspect(&self, id: ContainerId) -> Option<&Container<W>> {
        self.pool.get(id).or_else(|| self.graveyard.get(id))
    }

    /// `docker stats`: usage accounting for a live container.
    pub fn stats(&self, id: ContainerId) -> Option<&ContainerStats> {
        self.inspect(id).map(|c| c.stats())
    }

    /// The live container pool (FlowCon's managers "only interact with the
    /// container pools on the workers", §3.1).
    pub fn pool(&self) -> &ContainerPool<W> {
        &self.pool
    }

    /// The event log (the `docker events` stream).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Exited containers retained for inspection.
    pub fn graveyard(&self) -> &ContainerPool<W> {
        &self.graveyard
    }

    /// Demand ceilings and limits of running containers, in id order.
    ///
    /// This is the allocator's input: `(id, cpu_limit, demand)` per runnable
    /// container.
    pub fn alloc_inputs(&self) -> Vec<(ContainerId, f64, f64)> {
        let mut out = Vec::new();
        self.alloc_inputs_into(&mut out);
        out
    }

    /// Allocation-free variant of [`Daemon::alloc_inputs`]: clears `out` and
    /// refills it in place, so a per-tick caller reuses one buffer forever.
    pub fn alloc_inputs_into(&self, out: &mut Vec<(ContainerId, f64, f64)>) {
        out.clear();
        out.extend(
            self.pool
                .iter()
                .filter(|c| c.state().is_runnable())
                .map(|c| (c.id(), c.limits().cpu_limit(), c.workload().demand())),
        );
    }

    /// Advance every running container by `dt_secs` of simulated time.
    ///
    /// `rates` gives each running container's granted CPU rate (same order
    /// as [`Daemon::alloc_inputs`] / `ps()`), and `efficiencies` the
    /// per-container contention factors applied to useful progress
    /// (accounting still records the *raw* CPU occupancy, as `docker stats`
    /// would).  A single-element `efficiencies` slice is broadcast.
    ///
    /// Containers whose workloads finish are transitioned to `Exited` and
    /// a `Died` event is emitted.  Returns the ids that exited.
    pub fn advance(
        &mut self,
        now: SimTime,
        running: &[ContainerId],
        rates: &[f64],
        efficiencies: &[f64],
        dt_secs: f64,
    ) -> Vec<ContainerId> {
        debug_assert_eq!(running.len(), rates.len());
        debug_assert!(efficiencies.len() == 1 || efficiencies.len() == running.len());
        let mut exited = Vec::new();
        for (i, (&id, &rate)) in running.iter().zip(rates).enumerate() {
            let efficiency = if efficiencies.len() == 1 {
                efficiencies[0]
            } else {
                efficiencies[i]
            };
            let Some(c) = self.pool.get_mut(id) else {
                continue;
            };
            if !c.state().is_runnable() {
                continue;
            }
            let mut usage = c.workload().footprint();
            usage.set(flowcon_sim::ResourceKind::Cpu, rate);
            c.stats_mut().integrate(now, usage, dt_secs);
            c.workload_mut().advance(now, rate * efficiency * dt_secs);
            if let Some(code) = c.implied_exit() {
                c.transition(ContainerState::Exited(code), now)
                    .expect("Running -> Exited is always legal");
                self.events.push(ContainerEvent::Died {
                    id,
                    at: now,
                    exit_code: code,
                });
                exited.push(id);
            }
        }
        for id in &exited {
            self.bury(*id);
        }
        exited
    }

    /// Move an exited container from the live pool to the graveyard.
    fn bury(&mut self, id: ContainerId) {
        if let Some(c) = self.pool.remove(id) {
            debug_assert!(c.state().is_exited());
            self.graveyard.insert(c);
        }
    }

    /// Completion record of an exited container: `(label, completion secs)`.
    pub fn completion_record(&self, id: ContainerId) -> Option<(String, f64)> {
        let c = self.graveyard.get(id)?;
        Some((c.workload().label().to_string(), c.completion_time()?))
    }
}

/// Convenience: the exit status a workload's completion implies.
pub fn exit_code_for(status: WorkloadStatus) -> Option<i32> {
    match status {
        WorkloadStatus::Running => None,
        WorkloadStatus::Finished => Some(0),
        WorkloadStatus::Failed(code) => Some(code),
    }
}

/// Re-export used by tests and docs.
pub use crate::image::ImageRegistry as Registry;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FixedWork;

    fn daemon() -> Daemon<FixedWork> {
        Daemon::new(ImageRegistry::with_dl_defaults())
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn run_starts_container_and_emits_events() {
        let mut d = daemon();
        let id = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("vae", 10.0, 0.8),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        assert_eq!(d.ps(), vec![id]);
        assert_eq!(d.events().len(), 2); // Created + Started
        let c = d.inspect(id).unwrap();
        assert_eq!(c.state(), ContainerState::Running);
        assert_eq!(c.image().name, "pytorch/pytorch");
    }

    #[test]
    fn run_unknown_image_fails() {
        let mut d = daemon();
        let err = d
            .run(
                "nonexistent:latest",
                FixedWork::new("x", 1.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap_err();
        assert!(matches!(err, ContainerError::NoSuchImage(_)));
    }

    #[test]
    fn update_changes_cpu_limit() {
        let mut d = daemon();
        let id = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("vae", 10.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        d.update(id, UpdateOptions::new().cpus(0.25)).unwrap();
        assert_eq!(d.inspect(id).unwrap().limits().cpu_limit(), 0.25);
        let missing = ContainerId::from_raw(999);
        assert!(d.update(missing, UpdateOptions::new().cpus(0.5)).is_err());
    }

    #[test]
    fn advance_completes_workload_and_buries_container() {
        let mut d = daemon();
        let id = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("vae", 5.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        // 10 seconds at rate 0.5, full efficiency -> exactly 5 cpu-seconds.
        let exited = d.advance(t(10), &[id], &[0.5], &[1.0], 10.0);
        assert_eq!(exited, vec![id]);
        assert!(d.ps_iter().next().is_none());
        let (label, completion) = d.completion_record(id).unwrap();
        assert_eq!(label, "vae");
        assert!((completion - 10.0).abs() < 1e-9);
        // The Died event carries exit code 0.
        let died = d
            .events()
            .all()
            .iter()
            .rev()
            .find(|e| matches!(e, ContainerEvent::Died { .. }))
            .unwrap();
        assert!(matches!(died, ContainerEvent::Died { exit_code: 0, .. }));
    }

    #[test]
    fn efficiency_slows_progress_but_not_usage() {
        let mut d = daemon();
        let id = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("vae", 5.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        // Same rate/time as above but 50% efficiency: job not done.
        let exited = d.advance(t(10), &[id], &[0.5], &[0.5], 10.0);
        assert!(exited.is_empty());
        let stats = d.stats(id).unwrap();
        assert!((stats.cpu_seconds() - 5.0).abs() < 1e-9, "raw occupancy");
        assert_eq!(
            d.inspect(id).unwrap().workload().remaining_cpu_seconds(),
            Some(2.5)
        );
    }

    #[test]
    fn stop_kills_with_137() {
        let mut d = daemon();
        let id = d
            .run(
                "tensorflow/tensorflow:latest",
                FixedWork::new("gru", 100.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        d.stop(id, t(3)).unwrap();
        assert!(d.ps_iter().next().is_none());
        let c = d.inspect(id).unwrap();
        assert_eq!(c.state(), ContainerState::Exited(137));
        assert!(d.stop(id, t(4)).is_err(), "already gone from live pool");
    }

    #[test]
    fn pause_excludes_from_alloc_inputs() {
        let mut d = daemon();
        let a = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("a", 10.0, 0.7),
                ResourceLimits::cpu(0.5),
                t(0),
            )
            .unwrap();
        let b = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("b", 10.0, 0.9),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        d.set_paused(a, true, t(1)).unwrap();
        let inputs = d.alloc_inputs();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].0, b);
        assert_eq!(inputs[0].1, 1.0);
        assert_eq!(inputs[0].2, 0.9);
        d.set_paused(a, false, t(2)).unwrap();
        assert_eq!(d.alloc_inputs().len(), 2);
    }
}
