//! Per-container resource accounting.
//!
//! The paper's Container Monitor "records the consumption of four resources:
//! CPU, memory, block I/O, and network I/O" per container (§3.2.1), and the
//! Executor needs the *average usage over the measurement interval* for the
//! growth-efficiency denominator (Eq. 2).  `ContainerStats` therefore keeps
//! both cumulative usage and a bounded window of instantaneous samples.

use std::collections::VecDeque;

use flowcon_sim::resources::{ResourceKind, ResourceVec};
use flowcon_sim::time::SimTime;

/// One instantaneous usage observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Instantaneous usage rates (fractions of node capacity).
    pub rates: ResourceVec,
}

/// Cumulative + windowed usage accounting for one container.
#[derive(Debug, Clone)]
pub struct ContainerStats {
    /// Integrated resource-time (e.g. CPU-seconds) since start.
    cumulative: ResourceVec,
    /// Most recent instantaneous rates.
    current: ResourceVec,
    /// Bounded ring of recent samples for interval averaging.
    window: VecDeque<UsageSample>,
    /// Maximum samples retained.
    window_cap: usize,
    /// Total runnable time integrated so far (seconds).
    busy_seconds: f64,
}

impl Default for ContainerStats {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl ContainerStats {
    /// Stats with a given sample-window capacity.
    ///
    /// A capacity of `0` disables the sample window entirely: cumulative
    /// accounting still runs, but no per-sample history is retained and
    /// [`ContainerStats::average_over`] always returns `None`.  The worker
    /// simulation runs with the window disabled — its growth-efficiency
    /// math uses cumulative deltas, and its usage traces are recorded by
    /// the session's `Recorder` — so a simulated container costs no
    /// per-sample heap growth.
    pub fn new(window_cap: usize) -> Self {
        ContainerStats {
            cumulative: ResourceVec::ZERO,
            current: ResourceVec::ZERO,
            window: VecDeque::new(),
            window_cap,
            busy_seconds: 0.0,
        }
    }

    /// Change the sample-window capacity (`0` disables sampling).
    ///
    /// Shrinking drops the oldest retained samples.
    pub fn set_window_cap(&mut self, window_cap: usize) {
        self.window_cap = window_cap;
        while self.window.len() > window_cap {
            self.window.pop_front();
        }
    }

    /// Integrate `rates` held constant for `dt_secs` seconds ending at `now`.
    pub fn integrate(&mut self, now: SimTime, rates: ResourceVec, dt_secs: f64) {
        debug_assert!(dt_secs >= 0.0, "negative interval");
        debug_assert!(rates.is_valid(), "invalid rates {rates:?}");
        self.cumulative += rates.scale(dt_secs);
        self.current = rates;
        self.busy_seconds += dt_secs;
        if self.window_cap == 0 {
            return;
        }
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(UsageSample { at: now, rates });
    }

    /// Most recent instantaneous rates.
    pub fn current(&self) -> ResourceVec {
        self.current
    }

    /// Cumulative resource-time (CPU-seconds etc.).
    pub fn cumulative(&self) -> ResourceVec {
        self.cumulative
    }

    /// Cumulative CPU-seconds — the paper's headline usage figure.
    pub fn cpu_seconds(&self) -> f64 {
        self.cumulative.get(ResourceKind::Cpu)
    }

    /// Total seconds of integrated runnable time.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Average usage of `kind` over samples taken in `(since, until]`.
    ///
    /// This is `R_cid,ri(t_i)` from Eq. 2: the Executor passes the previous
    /// and current algorithm-tick times.  Returns `None` when no samples
    /// fall inside the interval (e.g. a container created an instant ago).
    pub fn average_over(&self, kind: ResourceKind, since: SimTime, until: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u32;
        for s in self.window.iter().rev() {
            if s.at <= since {
                break;
            }
            if s.at <= until {
                sum += s.rates.get(kind);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Number of samples currently retained.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn integration_accumulates_cpu_seconds() {
        let mut st = ContainerStats::default();
        st.integrate(t(1), ResourceVec::cpu(0.5), 1.0);
        st.integrate(t(2), ResourceVec::cpu(0.25), 1.0);
        assert!((st.cpu_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(st.current().get(ResourceKind::Cpu), 0.25);
        assert!((st.busy_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_over_interval_matches_samples() {
        let mut st = ContainerStats::default();
        st.integrate(t(1), ResourceVec::cpu(0.2), 1.0);
        st.integrate(t(2), ResourceVec::cpu(0.4), 1.0);
        st.integrate(t(3), ResourceVec::cpu(0.6), 1.0);
        // Interval (1, 3]: samples at t=2 (0.4) and t=3 (0.6).
        let avg = st.average_over(ResourceKind::Cpu, t(1), t(3)).unwrap();
        assert!((avg - 0.5).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn average_over_empty_interval_is_none() {
        let mut st = ContainerStats::default();
        st.integrate(t(5), ResourceVec::cpu(0.9), 1.0);
        assert_eq!(st.average_over(ResourceKind::Cpu, t(5), t(10)), None);
        assert_eq!(st.average_over(ResourceKind::Cpu, t(0), t(4)), None);
    }

    #[test]
    fn window_is_bounded() {
        let mut st = ContainerStats::new(4);
        for i in 0..10 {
            st.integrate(t(i), ResourceVec::cpu(0.1), 1.0);
        }
        assert_eq!(st.window_len(), 4);
        // Old samples evicted: interval covering only evicted samples is None.
        assert_eq!(st.average_over(ResourceKind::Cpu, t(0), t(5)), None);
    }

    #[test]
    fn zero_cap_disables_the_window_but_not_accounting() {
        let mut st = ContainerStats::new(0);
        for i in 0..10 {
            st.integrate(t(i), ResourceVec::cpu(0.5), 1.0);
        }
        assert_eq!(st.window_len(), 0, "no samples retained");
        assert_eq!(st.average_over(ResourceKind::Cpu, t(0), t(10)), None);
        assert!((st.cpu_seconds() - 5.0).abs() < 1e-12, "cumulative intact");
        // Re-enabling starts sampling from now on.
        st.set_window_cap(4);
        st.integrate(t(10), ResourceVec::cpu(0.5), 1.0);
        assert_eq!(st.window_len(), 1);
    }

    #[test]
    fn non_cpu_kinds_are_tracked() {
        let mut st = ContainerStats::default();
        st.integrate(t(1), ResourceVec::new(0.1, 0.3, 0.2, 0.05), 2.0);
        assert!((st.cumulative().get(ResourceKind::Memory) - 0.6).abs() < 1e-12);
        let avg = st.average_over(ResourceKind::BlkIo, t(0), t(1)).unwrap();
        assert!((avg - 0.2).abs() < 1e-12);
    }
}
