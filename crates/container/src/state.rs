//! Container lifecycle state machine.
//!
//! Mirrors the Docker states FlowCon's listeners care about: a container is
//! *created*, *running* while its job trains, possibly *paused*, and finally
//! *exited* — the paper computes completion time "whenever the container is
//! marked as exited" (§5.5.1).  Illegal transitions are rejected rather than
//! silently accepted so substrate bugs surface in tests.

use std::fmt;

/// Lifecycle states of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerState {
    /// Created but not yet started.
    Created,
    /// Actively runnable (its workload competes for resources).
    Running,
    /// Frozen by `docker pause`: consumes no CPU, retains memory.
    Paused,
    /// Terminated with an exit code (0 = the training job converged).
    Exited(i32),
}

impl ContainerState {
    /// True if the container can consume CPU.
    pub fn is_runnable(self) -> bool {
        matches!(self, ContainerState::Running)
    }

    /// True if the container has terminated.
    pub fn is_exited(self) -> bool {
        matches!(self, ContainerState::Exited(_))
    }

    /// Whether `self -> next` is a legal lifecycle transition.
    pub fn can_transition_to(self, next: ContainerState) -> bool {
        use ContainerState::*;
        match (self, next) {
            (Created, Running) => true,
            (Created, Exited(_)) => true, // failed to start
            (Running, Paused) => true,
            (Running, Exited(_)) => true,
            (Paused, Running) => true,
            (Paused, Exited(_)) => true, // killed while paused
            _ => false,
        }
    }
}

impl fmt::Display for ContainerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerState::Created => write!(f, "created"),
            ContainerState::Running => write!(f, "running"),
            ContainerState::Paused => write!(f, "paused"),
            ContainerState::Exited(code) => write!(f, "exited({code})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ContainerState::*;

    #[test]
    fn legal_paths() {
        assert!(Created.can_transition_to(Running));
        assert!(Running.can_transition_to(Paused));
        assert!(Paused.can_transition_to(Running));
        assert!(Running.can_transition_to(Exited(0)));
        assert!(Paused.can_transition_to(Exited(137)));
        assert!(Created.can_transition_to(Exited(1)));
    }

    #[test]
    fn illegal_paths() {
        assert!(!Exited(0).can_transition_to(Running));
        assert!(!Exited(0).can_transition_to(Exited(1)));
        assert!(!Created.can_transition_to(Paused));
        assert!(!Running.can_transition_to(Created));
        assert!(!Running.can_transition_to(Running));
    }

    #[test]
    fn predicates() {
        assert!(Running.is_runnable());
        assert!(!Paused.is_runnable());
        assert!(Exited(0).is_exited());
        assert!(!Created.is_exited());
    }

    #[test]
    fn display() {
        assert_eq!(Exited(137).to_string(), "exited(137)");
        assert_eq!(Running.to_string(), "running");
    }
}
