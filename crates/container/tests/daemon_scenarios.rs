//! Scenario tests for the container substrate: multi-container lifecycles
//! driven the way the worker simulation drives them.

use flowcon_container::workload::{FixedWork, Workload};
use flowcon_container::{
    ContainerEvent, ContainerId, ContainerState, Daemon, ImageRegistry, ResourceLimits,
    UpdateOptions,
};
use flowcon_sim::time::SimTime;
use proptest::prelude::*;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn daemon() -> Daemon<FixedWork> {
    Daemon::new(ImageRegistry::with_dl_defaults())
}

#[test]
fn three_container_lifecycle_with_updates() {
    let mut d = daemon();
    let a = d
        .run(
            "pytorch/pytorch:latest",
            FixedWork::new("a", 30.0, 0.9),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    let b = d
        .run(
            "tensorflow/tensorflow:latest",
            FixedWork::new("b", 10.0, 0.8),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    let c = d
        .run(
            "tensorflow/tensorflow:latest",
            FixedWork::new("c", 5.0, 0.7),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    assert_eq!(d.ps(), vec![a, b, c]);

    // Throttle a, give b and c free rein.
    d.update(a, UpdateOptions::new().cpus(0.2)).unwrap();

    // 10 seconds at (0.2, 0.4, 0.4): c (5 cpu-s of work) got 4 — still going.
    let exited = d.advance(t(10), &[a, b, c], &[0.2, 0.4, 0.4], &[1.0], 10.0);
    assert!(exited.is_empty());

    // 5 more seconds: c crosses its 5 cpu-s first, then b at 10 cpu-s.
    let exited = d.advance(t(15), &[a, b, c], &[0.2, 0.4, 0.4], &[1.0], 5.0);
    assert_eq!(exited, vec![c]);
    let exited = d.advance(t(25), &[a, b], &[0.2, 0.5], &[1.0], 10.0);
    assert_eq!(exited, vec![b]);

    // a is still running with its limit intact.
    assert_eq!(d.ps(), vec![a]);
    assert_eq!(d.inspect(a).unwrap().limits().cpu_limit(), 0.2);
    assert_eq!(d.alloc_inputs(), vec![(a, 0.2, 0.9)]);
}

#[test]
fn advance_exits_exactly_on_work_completion() {
    let mut d = daemon();
    let a = d
        .run(
            "pytorch/pytorch:latest",
            FixedWork::new("a", 5.0, 1.0),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    // 4 cpu-s: not done.
    assert!(d.advance(t(8), &[a], &[0.5], &[1.0], 8.0).is_empty());
    // 1 more cpu-s: done.
    let exited = d.advance(t(10), &[a], &[0.5], &[1.0], 2.0);
    assert_eq!(exited, vec![a]);
    assert_eq!(
        d.inspect(a).unwrap().state(),
        ContainerState::Exited(0),
        "clean convergence"
    );
    assert_eq!(d.completion_record(a).unwrap().1, 10.0);
}

#[test]
fn event_stream_orders_lifecycle_events() {
    let mut d = daemon();
    let a = d
        .run(
            "pytorch/pytorch:latest",
            FixedWork::new("a", 1.0, 1.0),
            ResourceLimits::default(),
            t(1),
        )
        .unwrap();
    d.advance(t(3), &[a], &[1.0], &[1.0], 2.0);
    let kinds: Vec<&str> = d
        .events()
        .all()
        .iter()
        .map(|e| match e {
            ContainerEvent::Created { .. } => "created",
            ContainerEvent::Started { .. } => "started",
            ContainerEvent::Died { .. } => "died",
        })
        .collect();
    assert_eq!(kinds, vec!["created", "started", "died"]);
    let times: Vec<u64> = d
        .events()
        .all()
        .iter()
        .map(|e| e.at().as_micros())
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn exec_injects_into_running_container_only() {
    let mut d = daemon();
    let a = d
        .run(
            "pytorch/pytorch:latest",
            FixedWork::new("a", 100.0, 1.0),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    d.exec(a, |w| w.advance(t(1), 50.0)).unwrap();
    assert_eq!(
        d.inspect(a).unwrap().workload().remaining_cpu_seconds(),
        Some(50.0)
    );
    d.stop(a, t(2)).unwrap();
    assert!(
        d.exec(a, |_| {}).is_err(),
        "exec on stopped container fails"
    );
    assert!(d.exec(ContainerId::from_raw(99), |_| {}).is_err());
}

#[test]
fn reap_collects_externally_finished_workloads() {
    let mut d = daemon();
    let a = d
        .run(
            "pytorch/pytorch:latest",
            FixedWork::new("a", 10.0, 1.0),
            ResourceLimits::default(),
            t(0),
        )
        .unwrap();
    // Finish the workload via exec without advancing the clock.
    d.exec(a, |w| w.advance(t(1), 10.0)).unwrap();
    assert_eq!(d.ps(), vec![a], "not yet reaped");
    let reaped = d.reap(t(5));
    assert_eq!(reaped, vec![a]);
    assert!(d.ps_iter().next().is_none());
    assert_eq!(d.inspect(a).unwrap().state(), ContainerState::Exited(0));
    assert!(d.reap(t(6)).is_empty(), "reap is idempotent");
}

#[test]
fn graveyard_retains_full_history() {
    let mut d = daemon();
    let mut ids = Vec::new();
    for i in 0..5 {
        let id = d
            .run(
                "tensorflow/tensorflow:latest",
                FixedWork::new(format!("job-{i}"), 1.0, 1.0),
                ResourceLimits::default(),
                t(i),
            )
            .unwrap();
        ids.push(id);
    }
    let rates = vec![0.2; 5];
    d.advance(t(10), &ids, &rates, &[1.0], 5.0);
    assert!(d.ps_iter().next().is_none());
    assert_eq!(d.graveyard().len(), 5);
    for id in ids {
        assert!(d.completion_record(id).is_some());
    }
}

proptest! {
    /// Usage accounting equals rate × time for any schedule of advances.
    #[test]
    fn cpu_seconds_integrate_exactly(
        steps in prop::collection::vec((0.0f64..=1.0, 0.1f64..=5.0), 1..40),
    ) {
        let mut d = daemon();
        let a = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("a", 1e12, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        let mut clock = 0.0;
        let mut expected = 0.0;
        for (rate, dt) in steps {
            clock += dt;
            expected += rate * dt;
            d.advance(SimTime::from_secs_f64(clock), &[a], &[rate], &[1.0], dt);
        }
        let got = d.stats(a).unwrap().cpu_seconds();
        prop_assert!((got - expected).abs() < 1e-6, "got {got}, expected {expected}");
    }

    /// Updates never corrupt limits: after any sequence of updates every
    /// limit stays in [0, 1].
    #[test]
    fn update_sequences_keep_limits_valid(
        updates in prop::collection::vec(-2.0f64..=3.0, 1..50),
    ) {
        let mut d = daemon();
        let a = d
            .run(
                "pytorch/pytorch:latest",
                FixedWork::new("a", 10.0, 1.0),
                ResourceLimits::default(),
                t(0),
            )
            .unwrap();
        for v in updates {
            d.update(a, UpdateOptions::new().cpus(v)).unwrap();
            let l = d.inspect(a).unwrap().limits().cpu_limit();
            prop_assert!((0.0..=1.0).contains(&l), "limit {l}");
        }
    }
}
