//! Duration-hint-aware binding, validated against the committed traces.
//!
//! The contract: under `TraceCatalog::with_duration_hints`, a hinted row
//! binds with its `total_work` scaled so the job's *nominal solo duration*
//! (`total_work / demand` on a capacity-1 node) equals the hint; unhinted
//! rows bind at the calibrated work; binding without the opt-in never
//! changes.  The property test pins monotonicity — a longer hint can never
//! produce less work.

use flowcon_dl::models::{ModelId, ModelSpec};
use flowcon_workload::catalog::{nominal_duration_secs, work_scale_for};
use flowcon_workload::{ArrivalTrace, TraceCatalog};
use proptest::prelude::*;

/// The committed paper trace (same bytes the bench suite embeds).
const PAPER_FIXED_CSV: &str = include_str!("../../../traces/paper_fixed.csv");

#[test]
fn committed_paper_trace_binds_its_stated_hints() {
    // traces/paper_fixed.csv hints the paper's §5.3 NA completion times:
    // VAE ≈ 394 s, MNIST-TF ≈ 84.7 s; MNIST-Torch carries no hint.
    let trace = ArrivalTrace::parse(PAPER_FIXED_CSV).unwrap();
    let bound = TraceCatalog::table1()
        .with_duration_hints()
        .bind(&trace)
        .unwrap();
    assert_eq!(bound.len(), 3);

    let vae = &bound.jobs[0];
    assert_eq!(vae.model, ModelId::Vae);
    assert!((nominal_duration_secs(vae) - 394.0).abs() < 1e-9);
    let spec = vae.scaled_spec();
    assert!((spec.total_work - 394.0 * spec.demand).abs() < 1e-9);

    let mnist_torch = &bound.jobs[1];
    assert_eq!(mnist_torch.work_scale, 1.0, "unhinted row stays calibrated");

    let mnist_tf = &bound.jobs[2];
    assert!((nominal_duration_secs(mnist_tf) - 84.7).abs() < 1e-9);

    // Without the opt-in the same trace binds bit-identically to the
    // paper's fixed_three plan (the PR-4 guarantee must survive).
    let plain = TraceCatalog::table1().bind(&trace).unwrap();
    assert!(plain.jobs.iter().all(|j| j.work_scale == 1.0));
}

#[test]
fn hinted_solo_job_completes_near_its_hint() {
    use flowcon_core::config::NodeConfig;
    use flowcon_core::session::Session;
    use flowcon_dl::workload::WorkloadPlan;

    // One hinted job alone on a node: completion time is the hint divided
    // by the (single-container) contention efficiency, ± the ±3% work
    // jitter — i.e. within ~20% of the hint, where the calibrated GRU
    // would take ~107 s.  This is the sim-level meaning of a hint.
    let trace = ArrivalTrace::parse("solo,gru,0,300\n").unwrap();
    let bound = TraceCatalog::table1()
        .with_duration_hints()
        .bind(&trace)
        .unwrap();
    let plan: WorkloadPlan = bound.into();
    let result = Session::builder()
        .node(NodeConfig::default().with_seed(7))
        .plan(plan)
        .build()
        .run();
    let secs = result.output.completions[0].completion_secs();
    assert!(
        (255.0..360.0).contains(&secs),
        "hinted 300 s solo job completed in {secs:.1} s"
    );

    // The unhinted control at calibrated work finishes far earlier.
    let control_trace = ArrivalTrace::parse("solo,gru,0\n").unwrap();
    let control: WorkloadPlan = TraceCatalog::table1().bind(&control_trace).unwrap().into();
    let control_secs = Session::builder()
        .node(NodeConfig::default().with_seed(7))
        .plan(control)
        .build()
        .run()
        .output
        .completions[0]
        .completion_secs();
    assert!(
        control_secs < 150.0,
        "calibrated GRU took {control_secs:.1} s"
    );
}

proptest! {
    /// Hint monotonicity: for any model and any pair of hints, the larger
    /// hint never binds to less work, and the bound nominal duration
    /// reproduces each hint exactly.
    #[test]
    fn longer_hints_bind_to_no_less_work(
        model_idx in 0usize..flowcon_dl::models::ALL_MODELS.len(),
        a in 1.0f64..5000.0,
        b in 1.0f64..5000.0,
    ) {
        let model = flowcon_dl::models::ALL_MODELS[model_idx];
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let scale_lo = work_scale_for(model, lo);
        let scale_hi = work_scale_for(model, hi);
        prop_assert!(scale_lo <= scale_hi, "monotone: {scale_lo} vs {scale_hi}");
        // work_scale_for is the exact inverse of the nominal duration.
        let spec = ModelSpec::of(model);
        let nominal_lo = scale_lo * spec.total_work / spec.demand;
        prop_assert!((nominal_lo - lo).abs() < 1e-6 * lo, "nominal {nominal_lo} vs hint {lo}");
        // And the same holds end to end through the bound job.
        let doc = format!("j,{},0,{hi}\n", flowcon_workload::catalog::class_name(model));
        let bound = TraceCatalog::table1().with_duration_hints().bind(
            &ArrivalTrace::parse(&doc).unwrap()
        ).unwrap();
        let nominal = nominal_duration_secs(&bound.jobs[0]);
        prop_assert!((nominal - hi).abs() < 1e-6 * hi, "nominal {nominal} vs hint {hi}");
    }
}
