//! Trace-parser contract tests: malformed input, out-of-order arrivals,
//! empty traces, and a property-based parse → serialize → parse
//! round-trip in both wire formats.

use flowcon_workload::{ArrivalTrace, TraceCatalog, TraceError};
use proptest::prelude::*;

#[test]
fn malformed_lines_fail_with_the_offending_line_number() {
    let cases = [
        ("j1,vae\n", 1, "missing field"),
        ("j1,vae,0\nj2,vae,zero\n", 2, "not a number"),
        ("# ok\nj1,vae,0\n\nj2,vae,-3\n", 4, "finite and >= 0"),
        ("{\"job_id\": \"j\"}\n", 1, "missing key"),
        (
            "{\"job_id\": \"j\", \"model\": \"vae\", \"submit_secs\": \"x\"}\n",
            1,
            "must be a number",
        ),
        ("j1,vae,0,nan\n", 1, "finite and > 0"),
    ];
    for (doc, line, needle) in cases {
        match ArrivalTrace::parse(doc) {
            Err(TraceError::Line { line: l, reason }) => {
                assert_eq!(l, line, "{doc:?}");
                assert!(reason.contains(needle), "{doc:?}: {reason}");
            }
            other => panic!("{doc:?}: expected a line error, got {other:?}"),
        }
    }
}

#[test]
fn out_of_order_arrivals_sort_stably_like_workload_plan() {
    // Shuffled submission times, with a tie (j3/j4 both at 10): parsing
    // sorts by time, keeping document order within the tie — the same
    // stability contract as `WorkloadPlan::new`.
    let doc = "j5,gru,90\nj3,gru,10\nj4,gru,10\nj1,gru,0\n";
    let trace = ArrivalTrace::parse(doc).unwrap();
    let ids: Vec<&str> = trace.rows().iter().map(|r| r.job_id).collect();
    assert_eq!(ids, ["j1", "j3", "j4", "j5"]);
    let times: Vec<f64> = trace.rows().iter().map(|r| r.submit_secs).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn empty_traces_parse_bind_and_plan_as_empty() {
    let trace = ArrivalTrace::parse("# nothing here\n").unwrap();
    assert!(trace.is_empty());
    assert_eq!(trace.len(), 0);
    let bound = TraceCatalog::table1().bind(&trace).unwrap();
    assert!(bound.is_empty());
    let plan: flowcon_dl::workload::WorkloadPlan = bound.into();
    assert!(plan.is_empty());
}

/// The class names the generator draws from (all resolvable by the default
/// catalog, exercising aliases and demand classes).
const CLASSES: [&str; 6] = ["vae", "mnist-tf", "gru", "lstm-cfc", "small", "large"];

proptest! {
    /// parse(serialize(parse(doc))) == parse(doc), for CSV and JSONL.
    #[test]
    fn parse_serialize_parse_round_trips(
        rows in prop::collection::vec(
            (0usize..1000, 0usize..CLASSES.len(), 0.0f64..5000.0, prop::option::weighted(0.4, 0.1f64..500.0)),
            0..40,
        ),
    ) {
        let doc: String = rows
            .iter()
            .map(|&(id, class, submit, hint)| {
                let hint = hint.map(|h| h.to_string()).unwrap_or_default();
                format!("job-{id},{},{submit},{hint}\n", CLASSES[class])
            })
            .collect();
        let first = ArrivalTrace::parse(&doc).expect("generated docs are valid");

        let csv = first.to_csv();
        let via_csv = ArrivalTrace::parse(&csv).expect("own CSV reparses");
        prop_assert_eq!(&via_csv, &first, "CSV round-trip");

        let jsonl = first.to_jsonl();
        let via_jsonl = ArrivalTrace::parse(&jsonl).expect("own JSONL reparses");
        prop_assert_eq!(&via_jsonl, &first, "JSONL round-trip");

        // Binding is insensitive to the wire format.
        let catalog = TraceCatalog::table1();
        prop_assert_eq!(
            catalog.bind(&via_csv).expect("all classes resolvable"),
            catalog.bind(&via_jsonl).expect("all classes resolvable")
        );
    }
}
