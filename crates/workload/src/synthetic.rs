//! Synthetic arrival processes: Poisson, bursty on/off (MMPP-style), and
//! diurnal-rate generators.
//!
//! All randomness flows through `flowcon_sim::rng::SimRng`, so a process +
//! seed is a complete, bit-reproducible description of a workload — the
//! same contract the rest of the workspace keeps for simulations.

use flowcon_dl::models::{ModelId, TABLE1_MODELS};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimTime;

/// A stochastic arrival process generating job submission times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps
    /// at `rate` jobs per second.
    Poisson {
        /// Mean arrival rate in jobs per second (`> 0`).
        rate: f64,
    },
    /// Bursty on/off arrivals (a two-state Markov-modulated Poisson
    /// process): the process alternates between an *on* state emitting at
    /// `rate_on` and an *off* state emitting at `rate_off` (often 0), with
    /// exponentially distributed dwell times.
    Bursty {
        /// Arrival rate during bursts, jobs per second (`> 0`).
        rate_on: f64,
        /// Arrival rate between bursts, jobs per second (`>= 0`).
        rate_off: f64,
        /// Mean burst length in seconds (`> 0`).
        mean_on_secs: f64,
        /// Mean quiet-period length in seconds (`> 0`).
        mean_off_secs: f64,
    },
    /// Diurnal arrivals: an inhomogeneous Poisson process whose rate
    /// follows `mean_rate · (1 + amplitude · sin(2πt/period))`, sampled by
    /// thinning against the peak rate.
    Diurnal {
        /// Mean arrival rate over a full period, jobs per second (`> 0`).
        mean_rate: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
        /// Period of the rate cycle in seconds (`> 0`).
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` jobs/second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "poisson rate must be > 0, got {rate}");
        ArrivalProcess::Poisson { rate }
    }

    /// Bursty on/off arrivals (see [`ArrivalProcess::Bursty`]).
    pub fn bursty(rate_on: f64, rate_off: f64, mean_on_secs: f64, mean_off_secs: f64) -> Self {
        assert!(rate_on > 0.0, "burst rate must be > 0, got {rate_on}");
        assert!(rate_off >= 0.0, "off rate must be >= 0, got {rate_off}");
        assert!(
            mean_on_secs > 0.0 && mean_off_secs > 0.0,
            "dwell means must be > 0, got on {mean_on_secs} / off {mean_off_secs}"
        );
        ArrivalProcess::Bursty {
            rate_on,
            rate_off,
            mean_on_secs,
            mean_off_secs,
        }
    }

    /// Diurnal arrivals (see [`ArrivalProcess::Diurnal`]).
    pub fn diurnal(mean_rate: f64, amplitude: f64, period_secs: f64) -> Self {
        assert!(mean_rate > 0.0, "mean rate must be > 0, got {mean_rate}");
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0, 1], got {amplitude}"
        );
        assert!(period_secs > 0.0, "period must be > 0, got {period_secs}");
        ArrivalProcess::Diurnal {
            mean_rate,
            amplitude,
            period_secs,
        }
    }

    /// Short process name (`poisson`/`bursty`/`diurnal`) for CLIs and
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// An incremental sampler of this process: arrivals one at a time,
    /// without deciding up front how many will be drawn.
    ///
    /// This is the open-loop primitive — a
    /// [`JobStream`](crate::stream::JobStream) pulls one arrival per job
    /// admission, unboundedly.  [`ArrivalProcess::sample_arrivals`] is the
    /// batch wrapper over the same state machine, so a sampler and a batch
    /// draw produce bit-identical sequences from the same RNG stream.
    pub fn sampler(&self) -> ArrivalSampler {
        ArrivalSampler {
            process: *self,
            t: 0.0,
            on: true,
            dwell_left: 0.0,
            primed: false,
        }
    }

    /// Sample the first `n` arrival times of the process, in order.
    pub fn sample_arrivals(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut sampler = self.sampler();
        (0..n).map(|_| sampler.next_arrival(rng)).collect()
    }
}

/// Incremental arrival-sampling state for one [`ArrivalProcess`].
///
/// Created by [`ArrivalProcess::sampler`]; each
/// [`ArrivalSampler::next_arrival`] call draws exactly the randomness the
/// next arrival needs, so the sequence is identical whether arrivals are
/// drawn in one batch or pulled one at a time over the life of an
/// open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    /// Current process time in seconds.
    t: f64,
    /// Bursty: whether the MMPP is in its *on* state.
    on: bool,
    /// Bursty: seconds left in the current dwell.
    dwell_left: f64,
    /// Bursty: whether the initial dwell has been drawn yet (the draw
    /// needs the RNG, which the sampler does not own).
    primed: bool,
}

impl ArrivalSampler {
    /// The next arrival time, strictly advancing the process clock.
    pub fn next_arrival(&mut self, rng: &mut SimRng) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                self.t += rng.exponential(rate);
                SimTime::from_secs_f64(self.t)
            }
            ArrivalProcess::Bursty {
                rate_on,
                rate_off,
                mean_on_secs,
                mean_off_secs,
            } => {
                // Start inside a burst; alternate exponential dwells.
                if !self.primed {
                    self.dwell_left = rng.exponential(1.0 / mean_on_secs);
                    self.primed = true;
                }
                loop {
                    let rate = if self.on { rate_on } else { rate_off };
                    // A zero-rate state emits nothing: skip to the switch.
                    let gap = if rate > 0.0 {
                        rng.exponential(rate)
                    } else {
                        f64::INFINITY
                    };
                    if gap < self.dwell_left {
                        self.dwell_left -= gap;
                        self.t += gap;
                        return SimTime::from_secs_f64(self.t);
                    }
                    self.t += self.dwell_left;
                    self.on = !self.on;
                    let mean = if self.on { mean_on_secs } else { mean_off_secs };
                    self.dwell_left = rng.exponential(1.0 / mean);
                }
            }
            ArrivalProcess::Diurnal {
                mean_rate,
                amplitude,
                period_secs,
            } => {
                // Thinning (Lewis & Shedler): propose at the peak rate,
                // accept with probability rate(t)/peak.
                let peak = mean_rate * (1.0 + amplitude);
                loop {
                    self.t += rng.exponential(peak);
                    let phase = 2.0 * std::f64::consts::PI * self.t / period_secs;
                    let rate = mean_rate * (1.0 + amplitude * phase.sin());
                    if rng.f64() * peak < rate {
                        return SimTime::from_secs_f64(self.t);
                    }
                }
            }
        }
    }
}

/// A complete synthetic workload description: process + model mix + size +
/// seed.  Convertible straight into a `WorkloadPlan`
/// (`Session::builder().plan(synthetic)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Synthetic {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Models assigned to arrivals round-robin (defaults to Table 1).
    pub models: Vec<ModelId>,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// RNG seed; same seed ⇒ same plan, bit for bit.
    pub seed: u64,
}

impl Synthetic {
    /// A synthetic workload over the Table-1 model mix.
    pub fn new(process: ArrivalProcess, jobs: usize, seed: u64) -> Self {
        Synthetic {
            process,
            models: TABLE1_MODELS.to_vec(),
            jobs,
            seed,
        }
    }

    /// Use an explicit model mix (assigned to arrivals round-robin).
    pub fn with_models(mut self, models: Vec<ModelId>) -> Self {
        assert!(!models.is_empty(), "the model mix cannot be empty");
        self.models = models;
        self
    }

    /// Generate the plan: arrivals from the process, models round-robin,
    /// labels `Job-<k>` in arrival order (the workspace convention).
    pub fn plan(&self) -> WorkloadPlan {
        self.plan_with(&mut SimRng::new(self.seed), true)
    }

    /// Generate with a caller-provided RNG stream and optional labels
    /// (unlabeled plans allocate no label strings — the headless path).
    pub(crate) fn plan_with(&self, rng: &mut SimRng, labeled: bool) -> WorkloadPlan {
        let arrivals = self.process.sample_arrivals(self.jobs, rng);
        let jobs: Vec<JobRequest> = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                JobRequest::new(
                    if labeled {
                        format!("Job-{}", i + 1)
                    } else {
                        String::new()
                    },
                    self.models[i % self.models.len()],
                    arrival,
                )
            })
            .collect();
        // Arrivals are generated in order; the constructor sort is a no-op
        // pass that keeps the invariant explicit.
        WorkloadPlan::new(jobs)
    }
}

impl From<Synthetic> for WorkloadPlan {
    fn from(synthetic: Synthetic) -> Self {
        synthetic.plan()
    }
}

impl From<&Synthetic> for WorkloadPlan {
    fn from(synthetic: &Synthetic) -> Self {
        synthetic.plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(times: &[SimTime]) -> f64 {
        times.last().unwrap().as_secs_f64() / times.len() as f64
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut rng = SimRng::new(1);
        let times = ArrivalProcess::poisson(0.5).sample_arrivals(4000, &mut rng);
        assert_eq!(times.len(), 4000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let gap = mean_gap(&times);
        assert!((1.7..2.3).contains(&gap), "mean gap {gap} for rate 0.5");
    }

    #[test]
    fn bursty_is_burstier_than_poisson_at_equal_mean_rate() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for an on/off MMPP with a silent off state.
        let cv2 = |times: &[SimTime]| {
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let mut rng = SimRng::new(5);
        // On half the time at rate 2 ⇒ long-run mean rate 1.
        let bursty = ArrivalProcess::bursty(2.0, 0.0, 10.0, 10.0).sample_arrivals(4000, &mut rng);
        let mut rng = SimRng::new(5);
        let poisson = ArrivalProcess::poisson(1.0).sample_arrivals(4000, &mut rng);
        assert!(
            cv2(&bursty) > 1.5 * cv2(&poisson),
            "bursty CV² {:.2} vs poisson {:.2}",
            cv2(&bursty),
            cv2(&poisson)
        );
    }

    #[test]
    fn diurnal_peaks_and_troughs_follow_the_cycle() {
        let mut rng = SimRng::new(9);
        let period = 100.0;
        let times = ArrivalProcess::diurnal(1.0, 0.9, period).sample_arrivals(8000, &mut rng);
        // Bucket arrivals by phase quarter: the first quarter (rising sine)
        // must see far more arrivals than the third (trough).
        let mut quarters = [0u32; 4];
        for t in &times {
            let phase = (t.as_secs_f64() % period) / period;
            quarters[(phase * 4.0) as usize % 4] += 1;
        }
        assert!(
            quarters[0] as f64 > 2.0 * quarters[2] as f64,
            "quarters {quarters:?}"
        );
    }

    #[test]
    fn synthetic_plans_are_seed_deterministic() {
        let s = Synthetic::new(ArrivalProcess::poisson(0.1), 20, 42);
        assert_eq!(s.plan(), s.plan());
        let other = Synthetic::new(ArrivalProcess::poisson(0.1), 20, 43);
        assert_ne!(s.plan(), other.plan());
    }

    #[test]
    fn synthetic_plan_follows_workspace_conventions() {
        let plan = Synthetic::new(ArrivalProcess::poisson(0.2), 10, 3).plan();
        assert_eq!(plan.len(), 10);
        for (i, job) in plan.jobs.iter().enumerate() {
            assert_eq!(job.label, format!("Job-{}", i + 1));
            assert_eq!(job.model, TABLE1_MODELS[i % TABLE1_MODELS.len()]);
        }
        assert!(plan.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn zero_rate_poisson_is_rejected() {
        ArrivalProcess::poisson(0.0);
    }

    #[test]
    fn incremental_sampler_matches_batch_sampling_bit_for_bit() {
        // The open-loop stream pulls arrivals one at a time; the plan path
        // draws them in a batch.  Both must walk the same RNG stream.
        for process in [
            ArrivalProcess::poisson(0.3),
            ArrivalProcess::bursty(1.5, 0.1, 12.0, 30.0),
            ArrivalProcess::diurnal(0.8, 0.6, 150.0),
        ] {
            let mut rng = SimRng::new(77);
            let batch = process.sample_arrivals(500, &mut rng);
            let mut rng = SimRng::new(77);
            let mut sampler = process.sampler();
            let incremental: Vec<SimTime> =
                (0..500).map(|_| sampler.next_arrival(&mut rng)).collect();
            assert_eq!(batch, incremental, "{process:?}");
            assert!(incremental.windows(2).all(|w| w[0] <= w[1]), "monotone");
        }
    }
}
