//! Streaming plan sources: one workload description feeding a whole
//! cluster, one worker at a time.
//!
//! A 10k-worker cluster must not materialize 10k `WorkloadPlan`s up front —
//! that is O(jobs) labels and vectors held live at once, and it puts plan
//! construction on the manager's critical path.  A [`PlanSource`] instead
//! answers `next_plan(worker_id)` on demand: each executor shard pulls the
//! plan for the worker it is about to simulate, the plan lives only for
//! that simulation, and the per-worker slice is a **pure function of
//! `worker_id`** — so results are identical whether workers run
//! sequentially, sharded, or in any interleaving.

use flowcon_dl::models::ModelId;
use flowcon_dl::workload::WorkloadPlan;
use flowcon_sim::rng::SimRng;

use crate::catalog::BoundTrace;
use crate::synthetic::{ArrivalProcess, Synthetic};

/// A deterministic, concurrently-pollable source of per-worker plans.
///
/// Implementations must derive the plan from `worker_id` alone (plus
/// immutable configuration): `next_plan(w)` called twice, in any order,
/// from any thread, returns the same plan.  That is what lets the sharded
/// cluster executor drive workers in arbitrary interleavings while staying
/// bit-identical to a sequential loop.
pub trait PlanSource: Sync {
    /// The plan for worker `worker_id` (0-based).
    fn next_plan(&self, worker_id: usize) -> WorkloadPlan;
}

/// Closures work as one-off sources (handy in tests).
impl<F: Fn(usize) -> WorkloadPlan + Sync> PlanSource for F {
    fn next_plan(&self, worker_id: usize) -> WorkloadPlan {
        self(worker_id)
    }
}

/// Slices one bound trace across `workers` workers, round-robin by row
/// index: worker `w` replays rows `w, w+workers, w+2·workers, …` of the
/// arrival-ordered trace.
///
/// The slice preserves arrival order (the trace is sorted and the stride
/// is monotone), so each per-worker plan's constructor sort is a near
/// no-op pass (it only reorders equal-arrival ties by label).  With an
/// unlabeled bound trace
/// ([`TraceCatalog::unlabeled`](crate::TraceCatalog::unlabeled)), a
/// `next_plan` call allocates exactly one `Vec` — the ≤ 20 allocs/worker
/// headless budget survives trace-driven runs.
#[derive(Debug, Clone)]
pub struct TraceSource {
    bound: BoundTrace,
    workers: usize,
}

impl TraceSource {
    /// Slice `bound` across `workers` workers.
    pub fn new(bound: BoundTrace, workers: usize) -> Self {
        assert!(workers > 0, "a trace source needs at least one worker");
        TraceSource { bound, workers }
    }

    /// The cluster size this source slices for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total jobs across all workers.
    pub fn total_jobs(&self) -> usize {
        self.bound.len()
    }
}

impl PlanSource for TraceSource {
    fn next_plan(&self, worker_id: usize) -> WorkloadPlan {
        assert!(
            worker_id < self.workers,
            "worker {worker_id} out of range for {} workers",
            self.workers
        );
        let rows = &self.bound.jobs;
        // Exact slice size: rows w, w+k, w+2k, ... below len.
        let count = rows.len().saturating_sub(worker_id).div_ceil(self.workers);
        let mut jobs = Vec::with_capacity(count);
        let mut i = worker_id;
        while i < rows.len() {
            jobs.push(rows[i].clone());
            i += self.workers;
        }
        WorkloadPlan::new(jobs)
    }
}

/// Generates an independent synthetic plan per worker from one base seed:
/// worker `w` draws from `SimRng::new(seed ⊕ mix(w))`, so plans are
/// deterministic per worker and uncorrelated across workers.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    template: Synthetic,
    labeled: bool,
}

impl SyntheticSource {
    /// `jobs_per_worker` jobs per worker from `process`, Table-1 model
    /// mix, seeded by `seed`.
    pub fn new(process: ArrivalProcess, jobs_per_worker: usize, seed: u64) -> Self {
        SyntheticSource {
            template: Synthetic::new(process, jobs_per_worker, seed),
            labeled: true,
        }
    }

    /// Use an explicit model mix (round-robin over arrivals).
    pub fn with_models(mut self, models: Vec<ModelId>) -> Self {
        self.template = self.template.with_models(models);
        self
    }

    /// Generate label-free plans (no label `String` allocations — the
    /// headless-cluster configuration).
    pub fn unlabeled(mut self) -> Self {
        self.labeled = false;
        self
    }

    /// The per-worker RNG: the base seed mixed with the worker id by the
    /// same golden-ratio stride the cluster manager uses for node seeds.
    fn rng_for(&self, worker_id: usize) -> SimRng {
        SimRng::new(
            self.template
                .seed
                .wrapping_add((worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

impl PlanSource for SyntheticSource {
    fn next_plan(&self, worker_id: usize) -> WorkloadPlan {
        self.template
            .plan_with(&mut self.rng_for(worker_id), self.labeled)
    }
}

/// Builds every per-worker plan of a source up front (what a source
/// replaces; kept for tests and for small clusters where materializing is
/// harmless).
pub fn materialize<S: PlanSource + ?Sized>(source: &S, workers: usize) -> Vec<WorkloadPlan> {
    (0..workers).map(|w| source.next_plan(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TraceCatalog;
    use crate::trace::ArrivalTrace;
    use flowcon_dl::workload::JobRequest;
    use flowcon_sim::time::SimTime;

    fn bound_of(n: usize) -> BoundTrace {
        let doc: String = (0..n).map(|i| format!("j{i},gru,{i}\n")).collect();
        TraceCatalog::table1()
            .bind(&ArrivalTrace::parse(&doc).unwrap())
            .unwrap()
    }

    #[test]
    fn trace_slices_partition_the_trace() {
        let source = TraceSource::new(bound_of(23), 4);
        let plans = materialize(&source, 4);
        let total: usize = plans.iter().map(WorkloadPlan::len).sum();
        assert_eq!(total, 23, "every row lands on exactly one worker");
        let mut labels: Vec<String> = plans
            .iter()
            .flat_map(|p| p.jobs.iter().map(|j| j.label.clone()))
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 23, "no row is duplicated");
        // Worker 1 gets rows 1, 5, 9, ... in arrival order.
        let w1: Vec<&str> = plans[1].jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(w1, ["j1", "j5", "j9", "j13", "j17", "j21"]);
    }

    #[test]
    fn next_plan_is_a_pure_function_of_worker_id() {
        let source = TraceSource::new(bound_of(40), 7);
        for w in [0usize, 3, 6] {
            assert_eq!(source.next_plan(w), source.next_plan(w));
        }
        let synth = SyntheticSource::new(ArrivalProcess::poisson(0.1), 5, 11);
        for w in [0usize, 1, 9] {
            assert_eq!(synth.next_plan(w), synth.next_plan(w));
        }
    }

    #[test]
    fn synthetic_workers_draw_uncorrelated_streams() {
        let synth = SyntheticSource::new(ArrivalProcess::poisson(0.1), 5, 11);
        assert_ne!(synth.next_plan(0), synth.next_plan(1));
    }

    #[test]
    fn unlabeled_synthetic_plans_have_empty_labels() {
        let synth = SyntheticSource::new(ArrivalProcess::poisson(0.5), 3, 2).unlabeled();
        let plan = synth.next_plan(4);
        assert_eq!(plan.len(), 3);
        assert!(plan.jobs.iter().all(|j| j.label.is_empty()));
    }

    #[test]
    fn closure_sources_work() {
        let source = |w: usize| {
            WorkloadPlan::new(vec![JobRequest::new(
                format!("w{w}"),
                ModelId::Gru,
                SimTime::ZERO,
            )])
        };
        assert_eq!(PlanSource::next_plan(&source, 3).jobs[0].label, "w3");
    }

    #[test]
    fn empty_and_undersized_traces_yield_empty_tail_plans() {
        let source = TraceSource::new(bound_of(2), 5);
        assert_eq!(source.next_plan(0).len(), 1);
        assert_eq!(source.next_plan(1).len(), 1);
        assert!(source.next_plan(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_worker_is_rejected() {
        TraceSource::new(bound_of(2), 2).next_plan(2);
    }
}
