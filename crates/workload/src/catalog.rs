//! Binding trace rows onto the model catalog.
//!
//! A trace speaks in **classes** — model names (`vae`, `mnist-tf`, ...) or
//! resource-demand classes (`small`/`medium`/`large`) — while the simulator
//! runs calibrated [`ModelId`]s.  A [`TraceCatalog`] owns that mapping plus
//! the replay knobs real traces need:
//!
//! * **thinning** — keep each row with probability `p`, decided by a
//!   seeded `SimRng` so the same trace + seed always keeps the same rows
//!   (replaying a week of arrivals at 10% load);
//! * **time compression** — divide submission times by a factor
//!   (replaying a day-long trace inside the paper's 200 s window);
//! * **labeling** — off for headless 10k-worker replays, where a label
//!   `String` per job would be the single largest allocation source;
//! * **duration-hint-aware binding** — opt-in
//!   ([`TraceCatalog::with_duration_hints`]): a row carrying a
//!   `duration_hint_secs` binds with its `total_work` scaled so the job's
//!   *nominal solo duration* (`total_work / demand` on a capacity-1 node)
//!   matches the hint, instead of the catalog's calibrated length.  Real
//!   cluster traces record how long each job ran; this is what makes a
//!   replay honor those lengths while keeping every other calibrated model
//!   property (demand ceiling, convergence shape, noise).

use flowcon_dl::models::{ModelId, ModelSpec};
use flowcon_dl::workload::{JobRequest, WorkloadPlan};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::SimTime;

use crate::trace::{ArrivalTrace, TraceError};

/// Maps trace classes onto calibrated models and applies replay transforms.
#[derive(Debug, Clone)]
pub struct TraceCatalog {
    /// Lower-cased class name → model.
    classes: Vec<(String, ModelId)>,
    /// Model used for classes with no mapping; `None` makes them an error.
    fallback: Option<ModelId>,
    /// Keep probability in `(0, 1]` and the seed deciding which rows stay.
    keep: f64,
    thin_seed: u64,
    /// Submission times are divided by this factor (`> 0`).
    compression: f64,
    /// Whether bound jobs carry the trace's `job_id` as their label.
    labeled: bool,
    /// Whether `duration_hint_secs` scales the bound job's `total_work`.
    honor_hints: bool,
}

impl TraceCatalog {
    /// A catalog with no class mappings (add them with
    /// [`TraceCatalog::map_class`] / [`TraceCatalog::fallback`]).
    pub fn empty() -> Self {
        TraceCatalog {
            classes: Vec::new(),
            fallback: None,
            keep: 1.0,
            thin_seed: 0,
            compression: 1.0,
            labeled: true,
            honor_hints: false,
        }
    }

    /// The default catalog: every Table-1 model under its canonical name
    /// and common aliases, plus the `small`/`medium`/`large`
    /// resource-demand classes (mapped to the short MNIST-TF, the medium
    /// GRU, and the long VAE respectively).
    pub fn table1() -> Self {
        use ModelId::*;
        let mut cat = TraceCatalog::empty();
        for (name, model) in [
            ("vae", Vae),
            ("vae-tf", VaeTf),
            ("vaet", VaeTf),
            ("mnist", MnistTorch),
            ("mnist-torch", MnistTorch),
            ("mnist-tf", MnistTf),
            ("lstm-cfc", LstmCfc),
            ("cfc", LstmCfc),
            ("lstm-crf", LstmCrf),
            ("bi-rnn", BiRnn),
            ("birnn", BiRnn),
            ("gru", Gru),
            ("rnn-gru", Gru),
            ("logreg", LogReg),
            ("logistic-regression", LogReg),
            // Resource-demand classes for traces that only record job size.
            ("small", MnistTf),
            ("medium", Gru),
            ("large", Vae),
        ] {
            cat = cat.map_class(name, model);
        }
        cat
    }

    /// Map `class` (case-insensitive) onto `model`, replacing any earlier
    /// mapping of the same class.
    pub fn map_class(mut self, class: impl Into<String>, model: ModelId) -> Self {
        let mut key = class.into();
        key.make_ascii_lowercase();
        self.classes.retain(|(c, _)| *c != key);
        self.classes.push((key, model));
        self
    }

    /// Bind unmapped classes to `model` instead of failing.
    pub fn fallback(mut self, model: ModelId) -> Self {
        self.fallback = Some(model);
        self
    }

    /// Keep each row with probability `keep` (in `(0, 1]`), decided by a
    /// `SimRng` stream from `seed` — deterministic per trace + seed.
    pub fn thin(mut self, keep: f64, seed: u64) -> Self {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "thinning keep probability must be in (0, 1], got {keep}"
        );
        self.keep = keep;
        self.thin_seed = seed;
        self
    }

    /// Divide every submission time by `factor` (`> 0`): `compress(60.0)`
    /// replays an hour-long trace in one simulated minute.
    pub fn compress(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be finite and > 0, got {factor}"
        );
        self.compression = factor;
        self
    }

    /// Drop job labels from bound rows (headless replays: no label
    /// `String` is ever allocated; completions are label-free anyway).
    pub fn unlabeled(mut self) -> Self {
        self.labeled = false;
        self
    }

    /// Honor `duration_hint_secs`: a hinted row binds with its
    /// `total_work` scaled so the job's nominal solo duration —
    /// `total_work / demand` on an uncontended capacity-1 node — equals
    /// the hint.  Unhinted rows keep the calibrated work.
    ///
    /// The hint is divided by the [`TraceCatalog::compress`] factor along
    /// with the submission times, so a compressed replay shortens its jobs
    /// by the same ratio it squeezes their arrivals.  (Contention and the
    /// per-instance ±3% work jitter still apply at simulation time: the
    /// hint pins the *nominal* length, not the realized completion.)
    pub fn with_duration_hints(mut self) -> Self {
        self.honor_hints = true;
        self
    }

    /// Resolve a class name to its model.
    pub fn resolve(&self, class: &str) -> Option<ModelId> {
        self.classes
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(class))
            .map(|&(_, m)| m)
            .or(self.fallback)
    }

    /// Bind a parsed trace: resolve every class, apply thinning and time
    /// compression, and return the replayable [`BoundTrace`].
    pub fn bind(&self, trace: &ArrivalTrace<'_>) -> Result<BoundTrace, TraceError> {
        let mut out = BoundTrace {
            jobs: Vec::with_capacity(trace.len()),
        };
        self.bind_into(trace, &mut out)?;
        Ok(out)
    }

    /// [`TraceCatalog::bind`] into a caller-owned buffer.
    ///
    /// Jobs already in `out` are recycled in place — in particular their
    /// label `String`s keep their capacity, so rebinding a same-shape
    /// trace into a warm buffer allocates nothing per row (this is what
    /// holds the `trace/parse_bind/bursty600` bench row near zero
    /// allocs/op).  On success `out` holds exactly the bound jobs (stale
    /// tail entries are truncated); on error its contents are unspecified.
    pub fn bind_into(
        &self,
        trace: &ArrivalTrace<'_>,
        out: &mut BoundTrace,
    ) -> Result<(), TraceError> {
        let mut rng = SimRng::new(self.thin_seed);
        let jobs = &mut out.jobs;
        let mut kept = 0usize;
        for (i, row) in trace.rows().iter().enumerate() {
            // Draw per row *before* resolving so the kept subset for a
            // given seed does not depend on the mapping.
            let keep = self.keep >= 1.0 || rng.f64() < self.keep;
            if !keep {
                continue;
            }
            let model = self
                .resolve(row.class)
                .ok_or_else(|| TraceError::UnknownClass {
                    class: row.class.to_string(),
                    row: i + 1,
                })?;
            let arrival = SimTime::from_secs_f64(row.submit_secs / self.compression);
            let work_scale = match row.duration_hint_secs {
                Some(hint) if self.honor_hints => work_scale_for(model, hint / self.compression),
                _ => 1.0,
            };
            match jobs.get_mut(kept) {
                Some(job) => {
                    job.label.clear();
                    if self.labeled {
                        job.label.push_str(row.job_id);
                    }
                    job.model = model;
                    job.arrival = arrival;
                    job.work_scale = work_scale;
                }
                None => {
                    let job = JobRequest::new(
                        if self.labeled {
                            row.job_id.to_string()
                        } else {
                            String::new()
                        },
                        model,
                        arrival,
                    )
                    .with_work_scale(work_scale);
                    jobs.push(job);
                }
            }
            kept += 1;
        }
        jobs.truncate(kept);
        Ok(())
    }
}

/// The work multiplier that makes `model`'s nominal solo duration equal
/// `hint_secs`.
///
/// On an uncontended capacity-1 node a job at its demand ceiling finishes
/// in `total_work / demand` seconds, so the scale is
/// `hint · demand / total_work`.  [`nominal_duration_secs`] is the exact
/// inverse: scaling by this factor and asking for the nominal duration
/// returns the hint.
pub fn work_scale_for(model: ModelId, hint_secs: f64) -> f64 {
    assert!(
        hint_secs.is_finite() && hint_secs > 0.0,
        "duration hint must be finite and > 0, got {hint_secs}"
    );
    let spec = ModelSpec::of(model);
    hint_secs * spec.demand / spec.total_work
}

/// The nominal solo duration of a bound job in seconds: scaled
/// `total_work / demand` on an uncontended capacity-1 node (the quantity
/// duration-hint-aware binding pins to the trace's hint).
pub fn nominal_duration_secs(job: &JobRequest) -> f64 {
    let spec = job.scaled_spec();
    spec.total_work / spec.demand
}

/// The canonical trace-file class name of a model (every name resolves
/// back through [`TraceCatalog::table1`], so emission and parsing are
/// inverse).
pub fn class_name(model: ModelId) -> &'static str {
    match model {
        ModelId::Vae => "vae",
        ModelId::VaeTf => "vae-tf",
        ModelId::MnistTorch => "mnist-torch",
        ModelId::MnistTf => "mnist-tf",
        ModelId::LstmCfc => "lstm-cfc",
        ModelId::LstmCrf => "lstm-crf",
        ModelId::BiRnn => "bi-rnn",
        ModelId::Gru => "gru",
        ModelId::LogReg => "logreg",
    }
}

impl Default for TraceCatalog {
    /// Same as [`TraceCatalog::table1`].
    fn default() -> Self {
        TraceCatalog::table1()
    }
}

/// A trace bound onto the model catalog: concrete jobs in arrival order,
/// ready to replay (convert into a `WorkloadPlan` or slice across a
/// cluster through a [`TraceSource`](crate::TraceSource)).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundTrace {
    /// Bound jobs, sorted by arrival (binding preserves the parsed trace's
    /// stable submission order; compression is monotone).
    pub jobs: Vec<JobRequest>,
}

impl BoundTrace {
    /// Wrap an existing plan as a bound trace (the plan is already sorted).
    pub fn from_plan(plan: WorkloadPlan) -> Self {
        BoundTrace { jobs: plan.jobs }
    }

    /// Number of bound jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing survived binding.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Drop every job label in place (labels become empty, so cloning a
    /// slice of this trace — e.g. through a
    /// [`TraceSource`](crate::TraceSource) — allocates no label strings).
    /// The post-bind counterpart of [`TraceCatalog::unlabeled`], for
    /// traces bound or built elsewhere.
    pub fn unlabeled(mut self) -> Self {
        for job in &mut self.jobs {
            job.label = String::new();
        }
        self
    }

    /// Emit the bound jobs as a JSONL arrival trace (canonical class
    /// names; unlabeled jobs get synthesized `job-<k>` ids).  The output
    /// parses back through [`ArrivalTrace::parse`] and rebinds through
    /// [`TraceCatalog::table1`] to the same jobs — this is how the
    /// committed example traces were generated.
    ///
    /// Jobs whose work was scaled away from the calibrated value emit a
    /// `duration_hint_secs` equal to their nominal solo duration, so a
    /// hint-aware rebind ([`TraceCatalog::with_duration_hints`])
    /// reconstructs the same `work_scale`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let fallback;
            let id = if job.label.is_empty() {
                fallback = format!("job-{}", i + 1);
                &fallback
            } else {
                &job.label
            };
            out.push_str(&format!(
                "{{\"job_id\": \"{}\", \"model\": \"{}\", \"submit_secs\": {}",
                id,
                class_name(job.model),
                job.arrival.as_secs_f64()
            ));
            if job.work_scale != 1.0 {
                out.push_str(&format!(
                    ", \"duration_hint_secs\": {}",
                    nominal_duration_secs(job)
                ));
            }
            out.push_str("}\n");
        }
        out
    }
}

impl From<BoundTrace> for WorkloadPlan {
    /// A bound trace is already in arrival order, so the plan's sort only
    /// breaks equal-arrival ties by label (a near-no-op pass).
    fn from(bound: BoundTrace) -> Self {
        WorkloadPlan::new(bound.jobs)
    }
}

impl From<&BoundTrace> for WorkloadPlan {
    fn from(bound: &BoundTrace) -> Self {
        WorkloadPlan::new(bound.jobs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ArrivalTrace;

    #[test]
    fn binds_the_paper_fixed_schedule() {
        let doc =
            "VAE (Pytorch),vae,0\nMNIST (Pytorch),mnist-torch,40\nMNIST (Tensorflow),mnist-tf,80\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let plan: WorkloadPlan = TraceCatalog::table1().bind(&trace).unwrap().into();
        let reference = WorkloadPlan::fixed_three();
        assert_eq!(plan.jobs.len(), 3);
        for (a, b) in plan.jobs.iter().zip(&reference.jobs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.model, b.model);
            assert_eq!(a.arrival, b.arrival);
        }
    }

    #[test]
    fn unknown_class_is_an_error_without_fallback() {
        let trace = ArrivalTrace::parse("j1,resnet-50,0\n").unwrap();
        let err = TraceCatalog::table1().bind(&trace).unwrap_err();
        assert_eq!(
            err,
            TraceError::UnknownClass {
                class: "resnet-50".into(),
                row: 1
            }
        );
        let bound = TraceCatalog::table1()
            .fallback(ModelId::Gru)
            .bind(&trace)
            .unwrap();
        assert_eq!(bound.jobs[0].model, ModelId::Gru);
    }

    #[test]
    fn class_resolution_is_case_insensitive() {
        let cat = TraceCatalog::table1();
        assert_eq!(cat.resolve("VAE"), Some(ModelId::Vae));
        assert_eq!(cat.resolve("Mnist-TF"), Some(ModelId::MnistTf));
        assert_eq!(cat.resolve("nope"), None);
    }

    #[test]
    fn thinning_is_deterministic_and_roughly_proportional() {
        let doc: String = (0..1000).map(|i| format!("j{i},gru,{i}\n")).collect();
        let trace = ArrivalTrace::parse(&doc).unwrap();
        let a = TraceCatalog::table1().thin(0.3, 7).bind(&trace).unwrap();
        let b = TraceCatalog::table1().thin(0.3, 7).bind(&trace).unwrap();
        assert_eq!(a, b, "same seed keeps the same rows");
        let c = TraceCatalog::table1().thin(0.3, 8).bind(&trace).unwrap();
        assert_ne!(a, c, "different seed keeps different rows");
        assert!((200..400).contains(&a.len()), "kept {} of 1000", a.len());
    }

    #[test]
    fn compression_divides_submission_times() {
        let trace = ArrivalTrace::parse("j1,gru,120\n").unwrap();
        let bound = TraceCatalog::table1().compress(60.0).bind(&trace).unwrap();
        assert_eq!(bound.jobs[0].arrival, SimTime::from_secs(2));
    }

    #[test]
    fn unlabeled_binding_drops_job_ids() {
        let trace = ArrivalTrace::parse("j1,gru,0\n").unwrap();
        let bound = TraceCatalog::table1().unlabeled().bind(&trace).unwrap();
        assert_eq!(bound.jobs[0].label, "");
    }

    #[test]
    fn emission_rebinds_to_the_same_jobs() {
        use flowcon_dl::models::ALL_MODELS;
        let bound = BoundTrace {
            jobs: ALL_MODELS
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    JobRequest::new(
                        format!("Job-{}", i + 1),
                        m,
                        SimTime::from_secs_f64(i as f64 * 2.5),
                    )
                })
                .collect(),
        };
        let jsonl = bound.to_jsonl();
        let reparsed = ArrivalTrace::parse(&jsonl).unwrap();
        let rebound = TraceCatalog::table1().bind(&reparsed).unwrap();
        assert_eq!(rebound, bound);
    }

    #[test]
    fn duration_hints_scale_total_work_only_when_honored() {
        let doc = "hinted,gru,0,160\nplain,gru,5\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        // Default binding ignores hints: both jobs at calibrated work.
        let plain = TraceCatalog::table1().bind(&trace).unwrap();
        assert!(plain.jobs.iter().all(|j| j.work_scale == 1.0));
        // Hint-aware binding pins the hinted job's nominal solo duration.
        let bound = TraceCatalog::table1()
            .with_duration_hints()
            .bind(&trace)
            .unwrap();
        let hinted = &bound.jobs[0];
        let spec = ModelSpec::of(ModelId::Gru);
        let expect = 160.0 * spec.demand / spec.total_work;
        assert!((hinted.work_scale - expect).abs() < 1e-12);
        assert!((nominal_duration_secs(hinted) - 160.0).abs() < 1e-9);
        assert_eq!(bound.jobs[1].work_scale, 1.0, "unhinted row untouched");
    }

    #[test]
    fn compression_shortens_hinted_durations_with_the_clock() {
        let doc = "j1,gru,120,160\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let bound = TraceCatalog::table1()
            .with_duration_hints()
            .compress(4.0)
            .bind(&trace)
            .unwrap();
        assert_eq!(bound.jobs[0].arrival, SimTime::from_secs(30));
        assert!((nominal_duration_secs(&bound.jobs[0]) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn hinted_emission_rebinds_to_the_same_scales() {
        let doc = "a,vae,0,394\nb,mnist-tf,80,84.7\nc,gru,90\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let bound = TraceCatalog::table1()
            .with_duration_hints()
            .bind(&trace)
            .unwrap();
        let rebound = TraceCatalog::table1()
            .with_duration_hints()
            .bind(&ArrivalTrace::parse(&bound.to_jsonl()).unwrap())
            .unwrap();
        assert_eq!(rebound, bound);
    }

    #[test]
    fn bind_into_recycles_buffers_and_matches_bind() {
        let doc = "a,vae,0,394\nb,mnist-tf,80,84.7\nc,gru,90\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let cat = TraceCatalog::table1().with_duration_hints();
        let fresh = cat.bind(&trace).unwrap();

        let mut out = BoundTrace { jobs: Vec::new() };
        cat.bind_into(&trace, &mut out).unwrap();
        assert_eq!(out, fresh, "cold bind_into matches bind");

        // Warm rebind of the same trace: recycled in place, same result.
        cat.bind_into(&trace, &mut out).unwrap();
        assert_eq!(out, fresh, "warm rebind matches");

        // A smaller trace truncates the stale tail...
        let small = ArrivalTrace::parse("x,gru,1\n").unwrap();
        cat.bind_into(&small, &mut out).unwrap();
        assert_eq!(out, cat.bind(&small).unwrap());

        // ...and an unlabeled catalog clears recycled labels.
        let plain = TraceCatalog::table1().unlabeled();
        plain.bind_into(&trace, &mut out).unwrap();
        assert_eq!(out, plain.bind(&trace).unwrap());
        assert!(out.jobs.iter().all(|j| j.label.is_empty()));
    }

    #[test]
    fn empty_trace_binds_to_an_empty_plan() {
        let trace = ArrivalTrace::parse("").unwrap();
        let plan: WorkloadPlan = TraceCatalog::table1().bind(&trace).unwrap().into();
        assert!(plan.is_empty());
    }
}
