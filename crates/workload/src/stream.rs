//! Open-loop job streams: pull-based, unbounded arrival sequences.
//!
//! # The open-loop model
//!
//! Every workload up to PR 4 was **closed**: a [`WorkloadPlan`] (or a
//! per-worker plan pulled off a [`PlanSource`](crate::PlanSource)) fixes
//! the complete set of jobs before the simulation starts, and the run ends
//! when that set drains.  The paper's elastic flow-configuration scheme is
//! only stressed realistically under **open-loop** load, where jobs keep
//! arriving *while* FlowCon reconfigures and the question becomes whether
//! the node keeps up (completion rate ≥ arrival rate) rather than how fast
//! a fixed batch finishes.
//!
//! A [`JobStream`] is the open-loop primitive: a pull-based iterator over
//! [`StreamedJob`]s with **monotone non-decreasing arrival times**, either
//! finite (one pass over a trace) or unbounded (a synthetic
//! [`ArrivalProcess`] sampled incrementally, or a cyclic trace replay).
//! The worker simulation pulls exactly one job ahead: when the pending
//! arrival fires it admits the job mid-run, pulls the next, and schedules
//! it — at no point does a materialized plan exist.
//!
//! # Termination: the [`Horizon`]
//!
//! An unbounded stream never drains, so every open-loop run carries a
//! [`Horizon`] with at least one bound:
//!
//! * [`Horizon::until`]`(t)` — stop *admitting* jobs whose arrival lies
//!   after simulated time `t` (`repro stream --until <secs>`);
//! * [`Horizon::jobs`]`(n)` — admit at most `n` jobs per worker
//!   (`repro stream --jobs <n>`);
//! * both, via [`Horizon::and_until`] / [`Horizon::and_jobs`] — whichever
//!   bound trips first wins.
//!
//! Jobs admitted before the horizon always run to completion (the run
//! *drains* after the last admission); steady-state metrics — arrival
//! vs. completion rate, time-weighted mean queue depth, utilization — are
//! reported as `StreamStats` by the session layer.
//!
//! # Clusters: the [`StreamSource`]
//!
//! One description drives a whole cluster through a [`StreamSource`]: each
//! executor shard asks for the stream of the worker it is about to
//! simulate, and `stream_for(worker_id)` is a **pure function of
//! `worker_id`** (the same contract as
//! [`PlanSource::next_plan`](crate::PlanSource::next_plan)), so open-loop
//! cluster runs are bit-identical whether workers execute sequentially,
//! sharded, or in any interleaving.  Two sources ship:
//!
//! * [`SyntheticStreamSource`] — per-worker independent [`ArrivalProcess`]
//!   streams; worker `w` samples from `SimRng::new(seed ⊕ mix(w))`, the
//!   same golden-ratio derivation as
//!   [`SyntheticSource`](crate::SyntheticSource).
//! * [`TraceStreamSource`] — a bound trace sliced round-robin across
//!   workers (row `w, w+k, w+2k, …` like
//!   [`TraceSource`](crate::TraceSource)), optionally **cyclic**: when a
//!   worker exhausts its slice the replay wraps, shifted by the trace's
//!   period, turning a finite trace into an unbounded arrival stream.
//!
//! Headless budget: with an unlabeled source, pulling a job allocates
//! nothing beyond the admission itself (labels are empty `String`s, the
//! sampler state is inline), so open-loop cluster runs stay within the
//! ≤ 20 allocs/worker headless budget pinned by
//! `crates/cluster/tests/headless_allocs.rs` and the `stream/open_loop/*`
//! bench rows.
//!
//! [`WorkloadPlan`]: flowcon_dl::workload::WorkloadPlan

use flowcon_dl::models::{ModelId, TABLE1_MODELS};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::{SimDuration, SimTime};

use crate::catalog::BoundTrace;
use crate::synthetic::{ArrivalProcess, ArrivalSampler};

/// One job pulled from a [`JobStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedJob {
    /// Instance label; empty in headless streams (no allocation).
    pub label: String,
    /// The model to train.
    pub model: ModelId,
    /// Submission time (non-decreasing along the stream).
    pub arrival: SimTime,
    /// Multiplier on the model's calibrated `total_work` (1.0 =
    /// calibrated; set by duration-hint-aware trace binding).
    pub work_scale: f64,
}

impl StreamedJob {
    /// The model spec this job runs: the catalog entry with `total_work`
    /// multiplied by [`StreamedJob::work_scale`] — the same canonical
    /// [`ModelSpec::scaled_by`](flowcon_dl::models::ModelSpec::scaled_by)
    /// the plan path uses, so the two admission paths cannot diverge.
    pub fn scaled_spec(&self) -> flowcon_dl::models::ModelSpec {
        flowcon_dl::models::ModelSpec::of(self.model).scaled_by(self.work_scale)
    }
}

/// A pull-based, possibly unbounded sequence of job arrivals for **one**
/// worker.
///
/// Contract: arrival times are monotone non-decreasing, and `next_job` has
/// no side effects outside the stream's own state — the worker simulation
/// pulls exactly one job ahead of the simulated clock, so a stream is
/// consumed strictly in order.
pub trait JobStream {
    /// The next arrival, or `None` when the stream is exhausted
    /// (unbounded streams never return `None`).
    fn next_job(&mut self) -> Option<StreamedJob>;
}

/// Closures yield one-off streams (handy in tests).
impl<F: FnMut() -> Option<StreamedJob>> JobStream for F {
    fn next_job(&mut self) -> Option<StreamedJob> {
        self()
    }
}

/// When an open-loop run stops admitting jobs.
///
/// At least one bound must be set (an unbounded stream with no horizon
/// would never terminate); when both are set, whichever trips first wins.
/// Jobs admitted before the horizon always run to completion — the run
/// drains rather than guillotines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Horizon {
    /// Last admissible arrival time: jobs arriving after this instant are
    /// not admitted.
    pub until: Option<SimTime>,
    /// Maximum number of admitted jobs (per worker, in a cluster run).
    pub max_jobs: Option<usize>,
}

impl Horizon {
    /// Admit arrivals up to and including simulated time `t`.
    pub fn until(t: SimTime) -> Self {
        Horizon {
            until: Some(t),
            max_jobs: None,
        }
    }

    /// Admit at most `n` jobs (per worker).
    pub fn jobs(n: usize) -> Self {
        Horizon {
            until: None,
            max_jobs: Some(n),
        }
    }

    /// Additionally bound the admission window at `t`.
    pub fn and_until(mut self, t: SimTime) -> Self {
        self.until = Some(t);
        self
    }

    /// Additionally bound the admitted job count at `n`.
    pub fn and_jobs(mut self, n: usize) -> Self {
        self.max_jobs = Some(n);
        self
    }

    /// True when the horizon has at least one bound (required to run).
    pub fn is_bounded(&self) -> bool {
        self.until.is_some() || self.max_jobs.is_some()
    }

    /// Would a job arriving at `arrival` be admitted as admission number
    /// `admitted + 1`?
    pub fn admits(&self, admitted: usize, arrival: SimTime) -> bool {
        self.max_jobs.map_or(true, |m| admitted < m) && self.until.map_or(true, |t| arrival <= t)
    }
}

/// A deterministic, concurrently-pollable source of per-worker
/// [`JobStream`]s — the open-loop counterpart of
/// [`PlanSource`](crate::PlanSource).
///
/// `stream_for(w)` must be a pure function of `worker_id` (plus immutable
/// configuration): called twice, in any order, from any thread, it returns
/// streams that yield identical job sequences.  That is what keeps sharded
/// open-loop cluster runs bit-identical to a sequential loop.
pub trait StreamSource: Sync {
    /// The stream type handed to one worker (may borrow the source).
    type Stream<'a>: JobStream
    where
        Self: 'a;

    /// The arrival stream for worker `worker_id` (0-based).
    fn stream_for(&self, worker_id: usize) -> Self::Stream<'_>;
}

/// Per-worker independent synthetic arrival streams: worker `w` samples
/// its [`ArrivalProcess`] from `SimRng::new(seed ⊕ mix(w))`, so streams
/// are deterministic per worker and uncorrelated across workers — the
/// unbounded counterpart of [`SyntheticSource`](crate::SyntheticSource).
#[derive(Debug, Clone)]
pub struct SyntheticStreamSource {
    process: ArrivalProcess,
    models: Vec<ModelId>,
    seed: u64,
    labeled: bool,
}

impl SyntheticStreamSource {
    /// Unbounded arrivals from `process` over the Table-1 model mix.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        SyntheticStreamSource {
            process,
            models: TABLE1_MODELS.to_vec(),
            seed,
            labeled: true,
        }
    }

    /// Use an explicit model mix (assigned to arrivals round-robin).
    pub fn with_models(mut self, models: Vec<ModelId>) -> Self {
        assert!(!models.is_empty(), "the model mix cannot be empty");
        self.models = models;
        self
    }

    /// Yield label-free jobs (no label `String` allocations — the
    /// headless-cluster configuration).
    pub fn unlabeled(mut self) -> Self {
        self.labeled = false;
        self
    }

    /// The arrival process driving every worker's stream.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }
}

impl StreamSource for SyntheticStreamSource {
    type Stream<'a> = SyntheticStream<'a>;

    fn stream_for(&self, worker_id: usize) -> SyntheticStream<'_> {
        SyntheticStream {
            sampler: self.process.sampler(),
            // The same golden-ratio seed stride SyntheticSource::rng_for
            // uses, so plan-based and stream-based runs of one seed relate.
            rng: SimRng::new(
                self.seed
                    .wrapping_add((worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            models: &self.models,
            labeled: self.labeled,
            count: 0,
        }
    }
}

/// One worker's unbounded synthetic arrival stream (created by
/// [`SyntheticStreamSource::stream_for`]).
#[derive(Debug, Clone)]
pub struct SyntheticStream<'a> {
    sampler: ArrivalSampler,
    rng: SimRng,
    models: &'a [ModelId],
    labeled: bool,
    count: usize,
}

impl JobStream for SyntheticStream<'_> {
    fn next_job(&mut self) -> Option<StreamedJob> {
        let arrival = self.sampler.next_arrival(&mut self.rng);
        let model = self.models[self.count % self.models.len()];
        self.count += 1;
        Some(StreamedJob {
            label: if self.labeled {
                format!("Job-{}", self.count)
            } else {
                String::new()
            },
            model,
            arrival,
            work_scale: 1.0,
        })
    }
}

/// Streams a bound trace across `workers` workers, row `w, w+k, w+2k, …`
/// (the same round-robin slicing as [`TraceSource`](crate::TraceSource)) —
/// optionally **cyclically**, shifting each replay by the trace's period
/// so a finite trace drives an unbounded open-loop run.
#[derive(Debug, Clone)]
pub struct TraceStreamSource {
    bound: BoundTrace,
    workers: usize,
    /// `Some(period)`: wrap to the start after the last row, adding
    /// `period` to every subsequent arrival.  `None`: one pass.
    cycle: Option<SimDuration>,
}

impl TraceStreamSource {
    /// One pass over `bound`, sliced round-robin across `workers` workers.
    pub fn new(bound: BoundTrace, workers: usize) -> Self {
        assert!(
            workers > 0,
            "a trace stream source needs at least one worker"
        );
        TraceStreamSource {
            bound,
            workers,
            cycle: None,
        }
    }

    /// Replay the trace cyclically with its natural period (the last
    /// arrival time), turning it into an unbounded stream.
    ///
    /// Panics if the trace is empty or spans zero time — a zero-period
    /// cycle would emit unboundedly many arrivals at one instant.
    pub fn cyclic(self) -> Self {
        let span = self
            .bound
            .jobs
            .last()
            .expect("cannot cycle an empty trace")
            .arrival;
        self.cyclic_every(SimDuration::from_secs_f64(span.as_secs_f64()))
    }

    /// Replay cyclically with an explicit `period` between replays.
    ///
    /// The period must be positive and at least the trace's span, so each
    /// worker's arrival sequence stays monotone.
    pub fn cyclic_every(mut self, period: SimDuration) -> Self {
        let span = self
            .bound
            .jobs
            .last()
            .map_or(0.0, |j| j.arrival.as_secs_f64());
        assert!(
            period.as_secs_f64() > 0.0,
            "cycle period must be positive (a zero-span trace cannot cycle)"
        );
        assert!(
            period.as_secs_f64() >= span,
            "cycle period {period} is shorter than the trace span {span} s — \
             arrivals would go backwards"
        );
        self.cycle = Some(period);
        self
    }

    /// The cluster size this source slices for.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl StreamSource for TraceStreamSource {
    type Stream<'a> = TraceStream<'a>;

    fn stream_for(&self, worker_id: usize) -> TraceStream<'_> {
        assert!(
            worker_id < self.workers,
            "worker {worker_id} out of range for {} workers",
            self.workers
        );
        TraceStream {
            bound: &self.bound,
            stride: self.workers,
            next: worker_id,
            start: worker_id,
            cycle: self.cycle,
            offset: SimDuration::ZERO,
        }
    }
}

/// One worker's (optionally cyclic) trace-replay stream (created by
/// [`TraceStreamSource::stream_for`]).
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    bound: &'a BoundTrace,
    stride: usize,
    next: usize,
    start: usize,
    cycle: Option<SimDuration>,
    offset: SimDuration,
}

impl JobStream for TraceStream<'_> {
    fn next_job(&mut self) -> Option<StreamedJob> {
        if self.next >= self.bound.jobs.len() {
            let period = self.cycle?;
            // An empty slice (more workers than rows and no row for this
            // worker) stays empty even cyclically.
            if self.start >= self.bound.jobs.len() {
                return None;
            }
            self.next = self.start;
            self.offset += period;
        }
        let row = &self.bound.jobs[self.next];
        self.next += self.stride;
        Some(StreamedJob {
            label: row.label.clone(),
            model: row.model,
            arrival: row.arrival + self.offset,
            work_scale: row.work_scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TraceCatalog;
    use crate::trace::ArrivalTrace;

    fn drain<S: JobStream>(stream: &mut S, n: usize) -> Vec<StreamedJob> {
        (0..n).map(|_| stream.next_job().unwrap()).collect()
    }

    #[test]
    fn horizon_bounds_compose() {
        let h = Horizon::until(SimTime::from_secs(100));
        assert!(h.is_bounded());
        assert!(h.admits(1_000_000, SimTime::from_secs(100)));
        assert!(!h.admits(0, SimTime::from_secs_f64(100.001)));
        let h = Horizon::jobs(3);
        assert!(h.admits(2, SimTime::MAX));
        assert!(!h.admits(3, SimTime::ZERO));
        let both = Horizon::jobs(5).and_until(SimTime::from_secs(10));
        assert!(!both.admits(5, SimTime::from_secs(1)), "count trips first");
        assert!(!both.admits(0, SimTime::from_secs(11)), "time trips first");
        assert!(!Horizon {
            until: None,
            max_jobs: None
        }
        .is_bounded());
    }

    #[test]
    fn synthetic_streams_are_pure_per_worker_and_uncorrelated() {
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.2), 11);
        let a = drain(&mut source.stream_for(3), 50);
        let b = drain(&mut source.stream_for(3), 50);
        assert_eq!(a, b, "stream_for is a pure function of worker_id");
        let other = drain(&mut source.stream_for(4), 50);
        assert_ne!(a, other, "workers draw uncorrelated streams");
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a[0].label, "Job-1");
        assert_eq!(a[0].model, TABLE1_MODELS[0]);
    }

    #[test]
    fn unlabeled_synthetic_streams_carry_empty_labels() {
        let source = SyntheticStreamSource::new(ArrivalProcess::poisson(0.5), 2).unlabeled();
        let jobs = drain(&mut source.stream_for(0), 5);
        assert!(jobs.iter().all(|j| j.label.is_empty()));
    }

    fn bound_of(n: usize) -> BoundTrace {
        let doc: String = (0..n).map(|i| format!("j{i},gru,{}\n", i * 10)).collect();
        TraceCatalog::table1()
            .bind(&ArrivalTrace::parse(&doc).unwrap())
            .unwrap()
    }

    #[test]
    fn one_pass_trace_stream_matches_the_round_robin_slice() {
        let source = TraceStreamSource::new(bound_of(10), 3);
        let mut stream = source.stream_for(1);
        let mut labels = Vec::new();
        while let Some(job) = stream.next_job() {
            labels.push(job.label);
        }
        assert_eq!(labels, ["j1", "j4", "j7"]);
    }

    #[test]
    fn cyclic_trace_stream_wraps_with_monotone_arrivals() {
        // 10 rows at 0, 10, ..., 90 s; natural period 90 s.
        let source = TraceStreamSource::new(bound_of(10), 3).cyclic();
        let jobs = drain(&mut source.stream_for(1), 9); // three full passes
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Second pass replays the same rows shifted by the period.
        assert_eq!(jobs[3].label, jobs[0].label);
        let shift = jobs[3].arrival.as_secs_f64() - jobs[0].arrival.as_secs_f64();
        assert!((shift - 90.0).abs() < 1e-9, "shift {shift}");
        // And per-worker purity holds across cycles too.
        assert_eq!(jobs, drain(&mut source.stream_for(1), 9));
    }

    #[test]
    fn cyclic_stream_preserves_work_scales() {
        let doc = "a,gru,0,320\nb,gru,50\n";
        let bound = TraceCatalog::table1()
            .with_duration_hints()
            .bind(&ArrivalTrace::parse(doc).unwrap())
            .unwrap();
        let scale = bound.jobs[0].work_scale;
        assert!(scale != 1.0);
        let source = TraceStreamSource::new(bound, 1).cyclic();
        let jobs = drain(&mut source.stream_for(0), 4);
        assert_eq!(jobs[2].work_scale, scale, "hint survives the wrap");
        assert_eq!(jobs[3].work_scale, 1.0);
    }

    #[test]
    fn empty_slices_stay_empty_even_cyclically() {
        let source = TraceStreamSource::new(bound_of(2), 5).cyclic();
        assert!(source.stream_for(4).next_job().is_none());
        assert_eq!(source.stream_for(0).next_job().unwrap().label, "j0");
    }

    #[test]
    #[should_panic(expected = "shorter than the trace span")]
    fn too_short_cycle_periods_are_rejected() {
        let _ = TraceStreamSource::new(bound_of(10), 1).cyclic_every(SimDuration::from_secs(5));
    }

    #[test]
    fn closure_streams_work() {
        let mut remaining = 2;
        let mut stream = move || {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            Some(StreamedJob {
                label: String::new(),
                model: ModelId::Gru,
                arrival: SimTime::ZERO,
                work_scale: 1.0,
            })
        };
        assert!(JobStream::next_job(&mut stream).is_some());
        assert!(stream.next_job().is_some());
        assert!(stream.next_job().is_none());
    }
}
