//! The arrival-trace format: zero-copy line parser, validation, and
//! round-trip serialization.
//!
//! See the crate-level docs for the file-format specification.  The parser
//! borrows every string field from the input document ([`TraceRow`] is
//! `TraceRow<'a>`), so parsing a trace allocates only the row vector —
//! binding onto the model catalog ([`crate::catalog`]) is where owned data
//! first appears.

use std::fmt;

/// One parsed trace line, borrowing its string fields from the document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow<'a> {
    /// The job's identifier/label (non-empty).
    pub job_id: &'a str,
    /// Model or resource-demand class, resolved later by a
    /// [`TraceCatalog`](crate::TraceCatalog).
    pub class: &'a str,
    /// Submission time in seconds (finite, `>= 0`).
    pub submit_secs: f64,
    /// Optional expected-duration hint in seconds (finite, `> 0`).
    pub duration_hint_secs: Option<f64>,
}

/// What went wrong parsing or binding a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line could not be parsed; `line` is 1-based in the document.
    Line {
        /// 1-based line number in the source document.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A class name no catalog mapping (and no fallback) covers.
    UnknownClass {
        /// The offending class name as written in the trace.
        class: String,
        /// 1-based position of the row in the parsed (sorted) trace.
        row: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Line { line, reason } => write!(f, "trace line {line}: {reason}"),
            TraceError::UnknownClass { class, row } => write!(
                f,
                "trace row {row}: class {class:?} is not in the catalog and no fallback is set"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

fn line_err(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError::Line {
        line,
        reason: reason.into(),
    }
}

/// Parse one data line (CSV or JSONL, detected by a leading `{`).
///
/// `line_no` is the 1-based position used in errors.  Comment/blank lines
/// must be filtered by the caller ([`ArrivalTrace::parse`] does).
pub fn parse_line(line: &str, line_no: usize) -> Result<TraceRow<'_>, TraceError> {
    if line.trim_start().starts_with('{') {
        parse_jsonl_line(line, line_no)
    } else {
        parse_csv_line(line, line_no)
    }
}

fn validate(row: TraceRow<'_>, line_no: usize) -> Result<TraceRow<'_>, TraceError> {
    if row.job_id.is_empty() {
        return Err(line_err(line_no, "job_id must be non-empty"));
    }
    // The two wire formats share one row type, so string fields must stay
    // representable in *both*: no CSV delimiter, no JSON quote, and no
    // leading byte that would re-dispatch a serialized CSV row as JSONL or
    // a comment.  Rejecting them here (with a line number) is what makes
    // the documented serialize-round-trip guarantee hold.
    for (field, name) in [(row.job_id, "job_id"), (row.class, "model")] {
        if field.contains(',') || field.contains('"') {
            return Err(line_err(
                line_no,
                format!("{name} must not contain ',' or '\"', got {field:?}"),
            ));
        }
    }
    if row.job_id.starts_with('{') || row.job_id.starts_with('#') {
        return Err(line_err(
            line_no,
            format!(
                "job_id must not start with '{{' or '#', got {:?}",
                row.job_id
            ),
        ));
    }
    if !row.submit_secs.is_finite() || row.submit_secs < 0.0 {
        return Err(line_err(
            line_no,
            format!(
                "submit_secs must be finite and >= 0, got {}",
                row.submit_secs
            ),
        ));
    }
    if let Some(hint) = row.duration_hint_secs {
        if !hint.is_finite() || hint <= 0.0 {
            return Err(line_err(
                line_no,
                format!("duration_hint_secs must be finite and > 0, got {hint}"),
            ));
        }
    }
    Ok(row)
}

fn parse_csv_line(line: &str, line_no: usize) -> Result<TraceRow<'_>, TraceError> {
    let mut fields = line.split(',');
    let job_id = fields.next().unwrap_or("").trim();
    let class = fields
        .next()
        .ok_or_else(|| line_err(line_no, "missing field: model"))?
        .trim();
    let submit = fields
        .next()
        .ok_or_else(|| line_err(line_no, "missing field: submit_secs"))?
        .trim();
    let hint = fields.next().map(str::trim);
    if let Some(extra) = fields.next() {
        return Err(line_err(
            line_no,
            format!("too many fields (unexpected {extra:?})"),
        ));
    }
    if class.is_empty() {
        return Err(line_err(line_no, "model class must be non-empty"));
    }
    let submit_secs: f64 = submit
        .parse()
        .map_err(|_| line_err(line_no, format!("submit_secs is not a number: {submit:?}")))?;
    let duration_hint_secs = match hint {
        None | Some("") => None,
        Some(h) => Some(h.parse::<f64>().map_err(|_| {
            line_err(
                line_no,
                format!("duration_hint_secs is not a number: {h:?}"),
            )
        })?),
    };
    validate(
        TraceRow {
            job_id,
            class,
            submit_secs,
            duration_hint_secs,
        },
        line_no,
    )
}

/// Minimal flat-object JSONL parser: string and number values, no escape
/// sequences, unknown keys ignored.  Covers exactly the trace schema
/// without pulling a JSON dependency into the workspace.
fn parse_jsonl_line(line: &str, line_no: usize) -> Result<TraceRow<'_>, TraceError> {
    let body = line.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| line_err(line_no, "JSONL line must be a single {...} object"))?;

    let mut job_id: Option<&str> = None;
    let mut class: Option<&str> = None;
    let mut submit_secs: Option<f64> = None;
    let mut duration_hint_secs: Option<f64> = None;

    let mut rest = body.trim();
    while !rest.is_empty() {
        // "key"
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| line_err(line_no, "expected a \"key\""))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| line_err(line_no, "unterminated key string"))?;
        let key = &after_quote[..key_end];
        // :
        let after_key = after_quote[key_end + 1..].trim_start();
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or_else(|| line_err(line_no, format!("expected ':' after key {key:?}")))?
            .trim_start();
        // value: string or number/null token
        let (value, tail) = if let Some(s) = after_colon.strip_prefix('"') {
            let end = s
                .find('"')
                .ok_or_else(|| line_err(line_no, "unterminated string value"))?;
            if s[..end].contains('\\') {
                return Err(line_err(line_no, "escape sequences are not supported"));
            }
            (JsonValue::Str(&s[..end]), &s[end + 1..])
        } else {
            let end = after_colon.find([',', '}']).unwrap_or(after_colon.len());
            (
                JsonValue::Token(after_colon[..end].trim()),
                &after_colon[end..],
            )
        };

        match key {
            "job_id" => match value {
                JsonValue::Str(s) => job_id = Some(s),
                JsonValue::Token(t) => {
                    return Err(line_err(
                        line_no,
                        format!("job_id must be a string, got {t}"),
                    ))
                }
            },
            "model" => match value {
                JsonValue::Str(s) => class = Some(s),
                JsonValue::Token(t) => {
                    return Err(line_err(
                        line_no,
                        format!("model must be a string, got {t}"),
                    ))
                }
            },
            "submit_secs" => submit_secs = Some(value.number(line_no, "submit_secs")?),
            "duration_hint_secs" => match value {
                JsonValue::Token("null") => duration_hint_secs = None,
                v => duration_hint_secs = Some(v.number(line_no, "duration_hint_secs")?),
            },
            _ => {} // unknown keys are ignored for forward compatibility
        }

        rest = tail.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None => break,
        }
    }

    let row = TraceRow {
        job_id: job_id.ok_or_else(|| line_err(line_no, "missing key: job_id"))?,
        class: class.ok_or_else(|| line_err(line_no, "missing key: model"))?,
        submit_secs: submit_secs.ok_or_else(|| line_err(line_no, "missing key: submit_secs"))?,
        duration_hint_secs,
    };
    validate(row, line_no)
}

enum JsonValue<'a> {
    Str(&'a str),
    Token(&'a str),
}

impl JsonValue<'_> {
    fn number(&self, line_no: usize, field: &str) -> Result<f64, TraceError> {
        match self {
            JsonValue::Token(t) => t
                .parse()
                .map_err(|_| line_err(line_no, format!("{field} is not a number: {t:?}"))),
            JsonValue::Str(s) => Err(line_err(
                line_no,
                format!("{field} must be a number, got string {s:?}"),
            )),
        }
    }
}

/// A parsed arrival trace: validated rows sorted stably by submission time
/// (ties keep document order, mirroring `WorkloadPlan::new`).
///
/// Borrows the source document — parsing allocates only the row vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace<'a> {
    rows: Vec<TraceRow<'a>>,
}

impl<'a> ArrivalTrace<'a> {
    /// Parse a whole trace document (CSV, JSONL, or a mix; see the crate
    /// docs for the format spec).
    pub fn parse(doc: &'a str) -> Result<Self, TraceError> {
        // One counting pass up front sizes the row vector exactly once;
        // comment/blank lines overcount slightly, which only wastes a few
        // row slots — never a realloc.
        let mut rows = Vec::with_capacity(doc.lines().count());
        let mut saw_data = false;
        for (i, raw) in doc.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // An initial CSV header line is skipped.
            if !saw_data && line.split(',').next() == Some("job_id") {
                saw_data = true;
                continue;
            }
            saw_data = true;
            rows.push(parse_line(raw, i + 1)?);
        }
        // Stable: equal submit times keep their document order.
        rows.sort_by(|a, b| a.submit_secs.total_cmp(&b.submit_secs));
        Ok(ArrivalTrace { rows })
    }

    /// The validated rows, sorted by submission time.
    pub fn rows(&self) -> &[TraceRow<'a>] {
        &self.rows
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the trace holds no arrivals (a valid, empty workload).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize as CSV (with header), parseable back by
    /// [`ArrivalTrace::parse`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("job_id,model,submit_secs,duration_hint_secs\n");
        for r in &self.rows {
            out.push_str(r.job_id);
            out.push(',');
            out.push_str(r.class);
            out.push(',');
            out.push_str(&r.submit_secs.to_string());
            out.push(',');
            if let Some(h) = r.duration_hint_secs {
                out.push_str(&h.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Serialize as JSONL, parseable back by [`ArrivalTrace::parse`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"job_id\": \"{}\", \"model\": \"{}\", \"submit_secs\": {}",
                r.job_id, r.class, r.submit_secs
            ));
            if let Some(h) = r.duration_hint_secs {
                out.push_str(&format!(", \"duration_hint_secs\": {h}"));
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_jsonl_lines_parse_identically() {
        let csv = parse_line("j1,vae,12.5,30", 1).unwrap();
        let jsonl = parse_line(
            "{\"job_id\": \"j1\", \"model\": \"vae\", \"submit_secs\": 12.5, \"duration_hint_secs\": 30}",
            1,
        )
        .unwrap();
        assert_eq!(csv, jsonl);
        assert_eq!(csv.job_id, "j1");
        assert_eq!(csv.duration_hint_secs, Some(30.0));
    }

    #[test]
    fn optional_hint_may_be_absent_empty_or_null() {
        for line in [
            "j1,vae,0",
            "j1,vae,0,",
            "{\"job_id\": \"j1\", \"model\": \"vae\", \"submit_secs\": 0}",
            "{\"job_id\": \"j1\", \"model\": \"vae\", \"submit_secs\": 0, \"duration_hint_secs\": null}",
        ] {
            let row = parse_line(line, 1).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(row.duration_hint_secs, None, "{line}");
        }
    }

    #[test]
    fn header_comments_and_blank_lines_are_skipped() {
        let doc = "# a comment\n\njob_id,model,submit_secs,duration_hint_secs\nj1,vae,5\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.rows()[0].job_id, "j1");
    }

    #[test]
    fn unknown_jsonl_keys_are_ignored() {
        let row = parse_line(
            "{\"cluster\": \"prod-7\", \"job_id\": \"j\", \"model\": \"gru\", \"submit_secs\": 1, \"gpus\": 8}",
            1,
        )
        .unwrap();
        assert_eq!(row.class, "gru");
    }

    #[test]
    fn errors_carry_the_line_number() {
        let doc = "j1,vae,0\nj2,vae,not-a-number\n";
        let err = ArrivalTrace::parse(doc).unwrap_err();
        assert_eq!(
            err,
            TraceError::Line {
                line: 2,
                reason: "submit_secs is not a number: \"not-a-number\"".into()
            }
        );
    }

    #[test]
    fn validation_rejects_bad_rows() {
        for (line, what) in [
            (",vae,0", "empty job id"),
            ("j1,,0", "empty class"),
            ("j1,vae,-1", "negative submit"),
            ("j1,vae,inf", "non-finite submit"),
            ("j1,vae,0,0", "non-positive hint"),
            ("j1,vae,0,1,extra", "too many fields"),
            ("j1,vae", "missing submit"),
            (
                "{\"job_id\": \"a,b\", \"model\": \"vae\", \"submit_secs\": 0}",
                "comma in job id",
            ),
            (
                "{\"job_id\": \"{x\", \"model\": \"vae\", \"submit_secs\": 0}",
                "leading brace in job id",
            ),
            ("#x,vae,0", "leading hash in job id"),
            ("j\"1,vae,0", "quote in job id"),
            ("{\"model\": \"vae\", \"submit_secs\": 0}", "missing job_id"),
            (
                "{\"job_id\": \"j\", \"model\": 3, \"submit_secs\": 0}",
                "non-string model",
            ),
            (
                "{\"job_id\": \"j\", \"model\": \"vae\"",
                "unterminated object",
            ),
        ] {
            assert!(parse_line(line, 7).is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn out_of_order_rows_sort_stably() {
        let doc = "late,vae,100\nb,gru,5\na,gru,5\nfirst,vae,0\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let ids: Vec<&str> = trace.rows().iter().map(|r| r.job_id).collect();
        // Equal submit times (b, a) keep document order: the sort is stable.
        assert_eq!(ids, ["first", "b", "a", "late"]);
    }

    #[test]
    fn empty_documents_are_valid_empty_traces() {
        for doc in ["", "# only comments\n\n", "job_id,model,submit_secs\n"] {
            let trace = ArrivalTrace::parse(doc).unwrap();
            assert!(trace.is_empty(), "{doc:?}");
        }
    }

    #[test]
    fn serialization_round_trips() {
        let doc = "j2,mnist-tf,80,84.7\nj1,vae,0\n";
        let trace = ArrivalTrace::parse(doc).unwrap();
        let csv = trace.to_csv();
        let jsonl = trace.to_jsonl();
        assert_eq!(ArrivalTrace::parse(&csv).unwrap(), trace);
        assert_eq!(ArrivalTrace::parse(&jsonl).unwrap(), trace);
    }
}
