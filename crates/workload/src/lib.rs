//! # flowcon-workload
//!
//! Job **arrivals** as a first-class subsystem.  The paper's evaluation
//! (§5.3–§5.5) drives every experiment from three hand-written workload
//! families (fixed, random-five, scalability) materialized as
//! `WorkloadPlan::new(Vec<JobRequest>)`.  This crate opens that up:
//!
//! * [`trace`] — an **arrival-trace file format** (CSV or JSONL, see the
//!   spec below) with a zero-copy line parser, precise validation errors,
//!   and round-trip serialization.
//! * [`catalog`] — [`TraceCatalog`]: binds trace rows onto the Table-1
//!   model catalog via a configurable class mapping, deterministic
//!   thinning, and time compression, yielding a [`BoundTrace`] convertible
//!   into a `WorkloadPlan`.
//! * [`synthetic`] — synthetic **arrival processes**: Poisson, bursty
//!   on/off (MMPP-style), and diurnal-rate generators, all seeded through
//!   `flowcon_sim::rng::SimRng` so runs stay bit-for-bit reproducible.
//! * [`source`] — the streaming [`PlanSource`] trait
//!   (`next_plan(worker_id) -> WorkloadPlan`): one trace or process drives
//!   a 10k-worker cluster with per-worker deterministic slices, without
//!   materializing 10k plans up front.
//! * [`stream`] — **open-loop** job streams: the pull-based, possibly
//!   unbounded [`JobStream`] (synthetic processes sampled incrementally,
//!   cyclic trace replay), the per-worker [`StreamSource`] factory, and
//!   the [`Horizon`] that bounds an open-loop run (`--until` / `--jobs`).
//!   Where a [`PlanSource`] still fixes each worker's job set up front, a
//!   stream feeds arrivals into a *live* simulation — jobs are admitted
//!   mid-run while FlowCon reconfigures.  See the [`stream`] module docs
//!   for the full open-loop specification.
//!
//! # Arrival-trace file format
//!
//! A trace is a line-oriented text file.  Blank lines and lines starting
//! with `#` are ignored.  Each remaining line is one job arrival, in
//! either of two shapes (detected per line, so the formats may mix):
//!
//! **CSV** — `job_id,model,submit_secs[,duration_hint_secs]`:
//!
//! ```text
//! # FlowCon §5.3 fixed schedule
//! job_id,model,submit_secs,duration_hint_secs
//! VAE (Pytorch),vae,0,394
//! MNIST (Pytorch),mnist-torch,40,
//! MNIST (Tensorflow),mnist-tf,80,84.7
//! ```
//!
//! **JSONL** — one flat JSON object per line (unknown keys are ignored;
//! a line is treated as JSONL when it starts with `{`):
//!
//! ```text
//! {"job_id": "j1", "model": "gru", "submit_secs": 12.5}
//! {"job_id": "j2", "model": "large", "submit_secs": 13.0, "duration_hint_secs": 220.0}
//! ```
//!
//! Fields:
//!
//! | field | required | meaning |
//! |---|---|---|
//! | `job_id` | yes | non-empty label for the job; must not contain `,` or `"` and must not start with `{` or `#` (so every row stays representable in both wire formats — serialization round-trips by construction) |
//! | `model` | yes | model or resource-demand **class**, resolved by the [`TraceCatalog`] (case-insensitive; e.g. `vae`, `mnist-tf`, or demand classes `small`/`medium`/`large`; same character restrictions as `job_id`) |
//! | `submit_secs` | yes | submission time in seconds, finite and `>= 0` |
//! | `duration_hint_secs` | no | expected duration in seconds, finite and `> 0` when present.  Ignored by default; under [`TraceCatalog::with_duration_hints`] a hinted row binds with its `total_work` scaled so the job's nominal solo duration matches the hint |
//!
//! A first CSV line whose `job_id` field is literally `job_id` is treated
//! as a header and skipped.  Rows may appear **out of submission order**;
//! parsing sorts them stably by `submit_secs`, ties keeping file order.
//! (Converting a bound trace into a `WorkloadPlan` additionally orders
//! equal-arrival ties by label — `WorkloadPlan::new`'s contract.)  An
//! empty trace (no data rows) is valid and binds to an empty plan.
//!
//! ```
//! use flowcon_workload::{ArrivalTrace, TraceCatalog};
//! use flowcon_dl::workload::WorkloadPlan;
//!
//! let doc = "j1,mnist-tf,80\nj0,vae,0\n";
//! let trace = ArrivalTrace::parse(doc).unwrap();
//! let plan: WorkloadPlan = TraceCatalog::table1().bind(&trace).unwrap().into();
//! assert_eq!(plan.jobs[0].label, "j0"); // sorted by submit time
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod source;
pub mod stream;
pub mod synthetic;
pub mod trace;

pub use catalog::{BoundTrace, TraceCatalog};
pub use source::{PlanSource, SyntheticSource, TraceSource};
pub use stream::{
    Horizon, JobStream, StreamSource, StreamedJob, SyntheticStreamSource, TraceStreamSource,
};
pub use synthetic::{ArrivalProcess, ArrivalSampler, Synthetic};
pub use trace::{ArrivalTrace, TraceError, TraceRow};
