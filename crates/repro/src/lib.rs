//! Umbrella crate for the FlowCon (ICPP 2019) reproduction workspace.
//!
//! Re-exports every sub-crate so the repository-root `examples/` and
//! `tests/` targets (and downstream users) can reach the whole system
//! through one dependency.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use flowcon_bench as bench;
pub use flowcon_cluster as cluster;
pub use flowcon_container as container;
pub use flowcon_core as core;
pub use flowcon_dl as dl;
pub use flowcon_metrics as metrics;
pub use flowcon_rt as rt;
pub use flowcon_sim as sim;
pub use flowcon_workload as workload;
