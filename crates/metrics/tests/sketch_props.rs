//! Property tests for the quantile sketch: the determinism and accuracy
//! contracts in `flowcon_metrics::sketch` must hold for arbitrary finite
//! sample sets, not just the hand-picked ones in the unit tests.

use flowcon_metrics::sketch::QuantileSketch;
use proptest::prelude::*;

/// Build a sketch from a slice of samples.
fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.insert(v);
    }
    s
}

/// The exact order statistic the sketch approximates: the value at rank
/// `⌊q·(n−1)⌋` of the sorted samples (same rank rule as
/// `QuantileSketch::quantile`).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64) as usize;
    sorted[rank]
}

proptest! {
    /// Merge is commutative: a ∪ b and b ∪ a are bit-identical sketches.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(0.0f64..1e6, 0..120),
        ys in prop::collection::vec(0.0f64..1e6, 0..120),
    ) {
        let (a, b) = (sketch_of(&xs), sketch_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ∪ b) ∪ c equals a ∪ (b ∪ c) bit-for-bit.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(0.0f64..1e6, 0..80),
        ys in prop::collection::vec(0.0f64..1e6, 0..80),
        zs in prop::collection::vec(0.0f64..1e6, 0..80),
    ) {
        let (a, b, c) = (sketch_of(&xs), sketch_of(&ys), sketch_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Sharding at arbitrary chunk boundaries and folding the shards is
    /// bit-identical to inserting every sample sequentially — the property
    /// the sharded executor's per-worker tail merge relies on.
    #[test]
    fn sharded_merge_equals_sequential_insert(
        values in prop::collection::vec(0.0f64..1e6, 1..300),
        chunk in 1usize..64,
    ) {
        let sequential = sketch_of(&values);
        let mut merged = QuantileSketch::new();
        for shard in values.chunks(chunk) {
            merged.merge(&sketch_of(shard));
        }
        prop_assert_eq!(&sequential, &merged);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(
                sequential.quantile(q).unwrap().to_bits(),
                merged.quantile(q).unwrap().to_bits()
            );
        }
    }

    /// Every reported quantile is within the configured relative accuracy
    /// of the exact order statistic at the same rank (for values far above
    /// the zero-bucket threshold).
    #[test]
    fn rank_error_is_bounded_by_alpha(
        values in prop::collection::vec(1e-3f64..1e6, 1..250),
        q in 0.0f64..=1.0,
    ) {
        let s = sketch_of(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_quantile(&sorted, q);
        let got = s.quantile(q).unwrap();
        let alpha = s.relative_accuracy();
        let rel = (got - exact).abs() / exact;
        // Tiny additive slack for ln/exp rounding in the bucket midpoint.
        prop_assert!(
            rel <= alpha * 1.000001 + 1e-9,
            "q={}: got {}, exact {}, rel {} > alpha {}", q, got, exact, rel, alpha
        );
    }

    /// Quantiles are monotone in q and clamped to the observed [min, max].
    #[test]
    fn quantiles_are_monotone_and_clamped(
        values in prop::collection::vec(0.0f64..1e6, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let s = sketch_of(&values);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = s.quantile(lo).unwrap();
        let b = s.quantile(hi).unwrap();
        prop_assert!(a <= b);
        prop_assert!(a >= s.min().unwrap());
        prop_assert!(b <= s.max().unwrap());
    }

    /// Merging an empty sketch is the identity, in both directions.
    #[test]
    fn merging_empty_is_identity(values in prop::collection::vec(0.0f64..1e6, 0..150)) {
        let s = sketch_of(&values);
        let empty = QuantileSketch::new();
        let mut a = s.clone();
        a.merge(&empty);
        prop_assert_eq!(&a, &s);
        let mut b = empty.clone();
        b.merge(&s);
        prop_assert_eq!(&b, &s);
    }

    /// A single-sample sketch reports that sample exactly at every
    /// quantile, and counts exactly one.
    #[test]
    fn single_sample_round_trips(v in 0.0f64..1e9, q in 0.0f64..=1.0) {
        let mut s = QuantileSketch::new();
        s.insert(v);
        prop_assert_eq!(s.count(), 1);
        prop_assert_eq!(s.min(), Some(v));
        prop_assert_eq!(s.max(), Some(v));
        prop_assert_eq!(s.quantile(q), Some(v));
    }
}
