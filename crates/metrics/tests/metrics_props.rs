//! Property tests for the metrics layer: statistics and time-series
//! operations must be robust to arbitrary (finite) data.

use flowcon_metrics::stats;
use flowcon_metrics::summary::{CompletionRecord, RunSummary};
use flowcon_metrics::timeseries::TimeSeries;
use flowcon_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= stats::min(&xs).unwrap() - 1e-9);
        prop_assert!(b <= stats::max(&xs).unwrap() + 1e-9);
    }

    /// Mean lies within [min, max]; std-dev is non-negative.
    #[test]
    fn mean_and_std_sanity(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let m = stats::mean(&xs).unwrap();
        prop_assert!(m >= stats::min(&xs).unwrap() - 1e-6);
        prop_assert!(m <= stats::max(&xs).unwrap() + 1e-6);
        prop_assert!(stats::std_dev(&xs).unwrap() >= 0.0);
    }

    /// The piecewise-constant integral of a non-negative series is
    /// non-negative and bounded by max·span.
    #[test]
    fn integral_bounds(values in prop::collection::vec(0.0f64..10.0, 2..100)) {
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        let integral = s.integral();
        let span = (values.len() - 1) as f64;
        let max = stats::max(&values).unwrap();
        prop_assert!(integral >= 0.0);
        prop_assert!(integral <= max * span + 1e-9);
    }

    /// Resampling preserves first/last values and never invents values
    /// outside the observed range.
    #[test]
    fn resample_stays_in_range(
        values in prop::collection::vec(0.0f64..1.0, 2..60),
        step in 1u64..5,
    ) {
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64 * 2), *v);
        }
        let r = s.resample(step as f64);
        prop_assert!(!r.is_empty());
        let lo = stats::min(&values).unwrap();
        let hi = stats::max(&values).unwrap();
        for &(_, v) in r.points() {
            prop_assert!((lo..=hi).contains(&v));
        }
        prop_assert_eq!(r.points()[0].1, values[0]);
    }

    /// Overlap accounting: overlap(k) is non-increasing in k, and
    /// overlap(1) equals the union span of job lifetimes.
    #[test]
    fn overlap_is_monotone_in_k(
        jobs in prop::collection::vec((0u64..100, 1u64..200), 1..12),
    ) {
        let mut summary = RunSummary::new("x");
        for (i, (arrival, len)) in jobs.iter().enumerate() {
            summary.completions.push(CompletionRecord {
                label: format!("j{i}"),
                arrival: SimTime::from_secs(*arrival),
                finished: SimTime::from_secs(arrival + len),
                exit_code: 0,
            });
        }
        let mut last = f64::INFINITY;
        for k in 1..=jobs.len() {
            let o = summary.overlap_secs(k);
            prop_assert!(o >= 0.0);
            prop_assert!(o <= last + 1e-9, "overlap increased with k");
            last = o;
        }
    }

    /// Makespan is the max finish time and reductions are antisymmetric-ish:
    /// if A is faster than B for a job, B is slower than A.
    #[test]
    fn reduction_signs_are_consistent(a in 1.0f64..1000.0, b in 1.0f64..1000.0) {
        let mk = |secs: f64| {
            let mut s = RunSummary::new("p");
            s.completions.push(CompletionRecord {
                label: "job".into(),
                arrival: SimTime::ZERO,
                finished: SimTime::from_secs_f64(secs),
                exit_code: 0,
            });
            s
        };
        let sa = mk(a);
        let sb = mk(b);
        let ra = sa.reduction_vs(&sb, "job").unwrap();
        let rb = sb.reduction_vs(&sa, "job").unwrap();
        prop_assert_eq!(ra > 0.0, rb < 0.0);
        prop_assert_eq!(ra == 0.0, rb == 0.0);
    }
}
