//! Pure-logic fixtures for the sim↔rt fidelity comparator.
//!
//! No threads, no clocks: each fixture is a synthetic pair of completion
//! record streams exercising one divergence mode, pinning the exact
//! report fields and the CLI exit-code decision.  (Quantile values go
//! through the 1%-relative-error sketch, so those assertions use a 2%
//! band; everything else is exact.)

use flowcon_metrics::fidelity::{compare, FidelityTolerance};
use flowcon_metrics::summary::CompletionRecord;
use flowcon_sim::time::SimTime;

fn rec(label: &str, arrival: f64, finished: f64) -> CompletionRecord {
    CompletionRecord {
        label: label.into(),
        arrival: SimTime::from_secs_f64(arrival),
        finished: SimTime::from_secs_f64(finished),
        exit_code: 0,
    }
}

fn close(actual: f64, expected: f64) -> bool {
    (actual / expected - 1.0).abs() < 0.02
}

/// Three jobs, byte-identical streams: zero divergence everywhere.
#[test]
fn identical_runs_report_zero_divergence() {
    let run = vec![
        rec("Job-1", 0.0, 50.0),
        rec("Job-2", 10.0, 80.0),
        rec("Job-3", 20.0, 120.0),
    ];
    let report = compare(&run, &run);

    assert_eq!(report.reference_jobs, 3);
    assert_eq!(report.candidate_jobs, 3);
    assert!(report.completion_set_equal);
    assert!(report.missing_labels.is_empty());
    assert!(report.extra_labels.is_empty());
    assert_eq!(report.order_edit_distance, 0);
    assert_eq!(report.matched, 3);
    assert_eq!(report.makespan_ratio(), 1.0);
    let p = report.sojourn_ratio_percentiles().expect("3 matched jobs");
    assert!(close(p.p50, 1.0), "p50 {}", p.p50);
    assert!(close(p.p99, 1.0), "p99 {}", p.p99);
    assert!(!report.divergent());
    assert!(report.violations(&FidelityTolerance::default()).is_empty());
    assert_eq!(report.exit_code(&FidelityTolerance::default(), false), 0);
}

/// Same set, permuted exit order: edit distance counts it, set equality
/// holds, and the default tolerance (order-agnostic) still passes.
#[test]
fn permuted_completion_order_is_visible_but_tolerated() {
    let reference = vec![
        rec("Job-1", 0.0, 50.0),
        rec("Job-2", 10.0, 80.0),
        rec("Job-3", 20.0, 120.0),
    ];
    let candidate = vec![
        rec("Job-2", 10.0, 80.0),
        rec("Job-1", 0.0, 50.0),
        rec("Job-3", 20.0, 120.0),
    ];
    let report = compare(&reference, &candidate);

    assert!(report.completion_set_equal);
    assert_eq!(report.order_edit_distance, 2, "one adjacent transposition");
    assert!(report.divergent(), "order permutation is divergence");
    let tol = FidelityTolerance::default();
    assert!(report.violations(&tol).is_empty(), "order-agnostic default");
    assert_eq!(report.exit_code(&tol, false), 0);

    let strict = FidelityTolerance {
        max_order_edit_distance: 1,
        ..FidelityTolerance::default()
    };
    let v = report.violations(&strict);
    assert_eq!(v.len(), 1);
    assert!(v[0].contains("edit distance 2"), "{v:?}");
    assert_eq!(report.exit_code(&strict, false), 2);
}

/// Candidate drops a job: set inequality, always a breach — even under
/// chaos, where timing tolerances are waived but the set must hold.
#[test]
fn dropped_job_breaches_even_under_chaos() {
    let reference = vec![rec("Job-1", 0.0, 50.0), rec("Job-2", 10.0, 80.0)];
    let candidate = vec![rec("Job-1", 0.0, 52.0)];
    let report = compare(&reference, &candidate);

    assert!(!report.completion_set_equal);
    assert_eq!(report.missing_labels, vec!["Job-2".to_string()]);
    assert!(report.extra_labels.is_empty());
    assert_eq!(report.matched, 1);
    assert_eq!(report.order_edit_distance, 1, "one deletion");
    assert!(report.divergent());
    let tol = FidelityTolerance::default();
    let v = report.violations(&tol);
    assert!(
        v.iter().any(|m| m.contains("completion sets differ")),
        "{v:?}"
    );
    assert_eq!(report.exit_code(&tol, false), 2);
    assert_eq!(
        report.exit_code(&tol, true),
        2,
        "chaos never excuses a lost job"
    );
}

/// Candidate completes a job the reference never saw (a phantom record):
/// the asymmetric twin of the dropped-job fixture.
#[test]
fn extra_job_breaks_set_equality() {
    let reference = vec![rec("Job-1", 0.0, 50.0)];
    let candidate = vec![rec("Job-1", 0.0, 50.0), rec("Job-9", 0.0, 60.0)];
    let report = compare(&reference, &candidate);

    assert!(!report.completion_set_equal);
    assert!(report.missing_labels.is_empty());
    assert_eq!(report.extra_labels, vec!["Job-9".to_string()]);
    assert_eq!(report.exit_code(&FidelityTolerance::default(), false), 2);
}

/// Candidate sojourns uniformly inflated 5×: set and order agree, but the
/// ratio distribution and makespan blow the default bands.
#[test]
fn inflated_sojourns_breach_the_ratio_bands() {
    let reference = vec![
        rec("Job-1", 0.0, 40.0),
        rec("Job-2", 10.0, 60.0),
        rec("Job-3", 20.0, 100.0),
    ];
    let candidate: Vec<CompletionRecord> = reference
        .iter()
        .map(|r| {
            let sojourn = r.finished.as_secs_f64() - r.arrival.as_secs_f64();
            rec(
                &r.label,
                r.arrival.as_secs_f64(),
                r.arrival.as_secs_f64() + 5.0 * sojourn,
            )
        })
        .collect();
    let report = compare(&reference, &candidate);

    assert!(report.completion_set_equal);
    assert_eq!(report.order_edit_distance, 0);
    let p = report.sojourn_ratio_percentiles().unwrap();
    assert!(close(p.p50, 5.0), "p50 {}", p.p50);
    assert!(report.divergent());
    let tol = FidelityTolerance::default();
    let v = report.violations(&tol);
    assert!(v.iter().any(|m| m.contains("sojourn ratio p50")), "{v:?}");
    assert!(v.iter().any(|m| m.contains("makespan ratio")), "{v:?}");
    assert_eq!(report.exit_code(&tol, false), 2);
    // Chaos waives timing bands: a straggler run with an intact set passes.
    assert_eq!(report.exit_code(&tol, true), 0);
}

/// A mild straggler: within tolerance but nonzero divergence — the shape
/// the `--chaos straggler` CI smoke asserts (exit 0, divergent report).
#[test]
fn mild_divergence_is_reported_but_tolerated() {
    let reference = vec![rec("Job-1", 0.0, 40.0), rec("Job-2", 0.0, 60.0)];
    let candidate = vec![rec("Job-1", 0.0, 56.0), rec("Job-2", 0.0, 60.0)];
    let report = compare(&reference, &candidate);

    assert!(report.completion_set_equal);
    assert!(report.divergent(), "a 1.4x sojourn ratio must be visible");
    assert_eq!(report.exit_code(&FidelityTolerance::default(), true), 0);
}
