//! Descriptive statistics helpers used by reports and tests.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Linear-interpolated percentile (`p` in `[0, 100]`); `None` when empty.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Minimum of a slice; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc, x| Some(acc.map_or(x, |m: f64| m.min(x))))
}

/// Maximum of a slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .fold(None, |acc, x| Some(acc.map_or(x, |m: f64| m.max(x))))
}

/// Geometric mean of strictly positive values; `None` otherwise.
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&xs, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 4.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(4.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn geometric_mean() {
        let xs = [1.0, 4.0, 16.0];
        assert!((geo_mean(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
        assert_eq!(geo_mean(&[]), None);
    }
}
