//! # flowcon-metrics
//!
//! Measurement, summarization and reporting for FlowCon experiments.
//!
//! The paper evaluates three metrics (§5.2): **overall makespan**,
//! **individual job completion time** and **CPU usage** traces.  This crate
//! provides the containers those metrics live in, plus the reporting
//! machinery the experiment harness uses to regenerate every figure:
//!
//! * [`timeseries`] — append-only `(t, value)` series with resampling and
//!   window averaging (CPU usage and growth-efficiency traces).
//! * [`summary`] — per-run summaries: completion times, makespan, overlap
//!   accounting, and FlowCon-vs-NA comparisons (Table 2's reductions).
//! * [`stats`] — descriptive statistics helpers.
//! * [`stream`] — steady-state statistics of **open-loop** runs (arrival
//!   vs. completion rate, time-weighted queue depth, utilization).
//! * [`sketch`] — constant-memory, mergeable streaming quantile sketch
//!   (DDSketch-style relative-error buckets, deterministic merge).
//! * [`sojourn`] — per-job SLO tails: sojourn-time and queue-wait
//!   p50/p95/p99 recorded at exit, mergeable across workers/shards.
//! * [`fidelity`] — sim↔rt differential divergence reports: completion-set
//!   equality, order edit distance, per-job sojourn-ratio sketches,
//!   makespan ratio, and the tolerance/exit-code decision.
//! * [`chart`] — ASCII line/bar charts so `repro` output is readable in a
//!   terminal.
//! * [`export`] — CSV writing (hand-rolled; the format is trivial).
//! * [`tracelog`] — Chrome trace-event / Perfetto export of the
//!   deterministic structured timelines recorded by
//!   [`flowcon_sim::trace`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod export;
pub mod fidelity;
pub mod sketch;
pub mod sojourn;
pub mod stats;
pub mod stream;
pub mod summary;
pub mod timeseries;
pub mod tracelog;

pub use fidelity::{compare, FidelityReport, FidelityTolerance};
pub use sketch::QuantileSketch;
pub use sojourn::{Percentiles, SojournStats};
pub use stream::StreamStats;
pub use summary::{Completion, CompletionRecord, CompletionStats, RunSummary};
pub use timeseries::{MultiSeries, TimeSeries};
