//! CSV export of experiment results.
//!
//! Hand-rolled on purpose: the data is purely numeric with simple string
//! labels, so a dependency would buy nothing.  Fields containing commas,
//! quotes or newlines are quoted per RFC 4180.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::summary::RunSummary;
use crate::timeseries::MultiSeries;

/// Escape one CSV field.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render rows of fields as CSV text.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Completion-time table for a set of runs: one row per (policy, job).
pub fn completions_csv(summaries: &[&RunSummary]) -> String {
    let mut rows = Vec::new();
    for s in summaries {
        for c in &s.completions {
            rows.push(vec![
                s.policy.clone(),
                c.label.clone(),
                format!("{:.3}", c.arrival.as_secs_f64()),
                format!("{:.3}", c.finished.as_secs_f64()),
                format!("{:.3}", c.completion_secs()),
                c.exit_code.to_string(),
            ]);
        }
    }
    to_csv(
        &[
            "policy",
            "job",
            "arrival_s",
            "finished_s",
            "completion_s",
            "exit_code",
        ],
        &rows,
    )
}

/// Long-format CSV of a multi-series (one row per point).
pub fn series_csv(name: &str, series: &MultiSeries) -> String {
    let mut rows = Vec::new();
    for (label, s) in series.iter() {
        for &(t, v) in s.points() {
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{t:.3}"),
                format!("{v:.6}"),
            ]);
        }
    }
    to_csv(&["series", "label", "t_s", "value"], &rows)
}

/// Write `content` to `path`, creating parent directories.
pub fn write_file(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

/// Render a compact, aligned text table (for the repro binary's stdout).
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(ncols) {
            let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::CompletionRecord;
    use flowcon_sim::time::SimTime;

    #[test]
    fn csv_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_rendering() {
        let csv = to_csv(
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()], vec!["2".into(), "z".into()]],
        );
        assert_eq!(csv, "a,b\n1,\"x,y\"\n2,z\n");
    }

    #[test]
    fn completions_csv_has_one_row_per_job() {
        let mut s = RunSummary::new("NA");
        s.completions.push(CompletionRecord {
            label: "Job-1".into(),
            arrival: SimTime::from_secs(0),
            finished: SimTime::from_secs(100),
            exit_code: 0,
        });
        let csv = completions_csv(&[&s]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("NA,Job-1,0.000,100.000,100.000,0"));
    }

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["job", "secs"],
            &[
                vec!["Job-1".into(), "85.3".into()],
                vec!["Job-10".into(), "110.0".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("job"));
        assert!(lines[2].starts_with("Job-1 "));
        assert!(lines[3].starts_with("Job-10"));
    }

    #[test]
    fn write_file_creates_parents() {
        let dir = std::env::temp_dir().join("flowcon_metrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_file(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
