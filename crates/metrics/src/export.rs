//! CSV and JSONL export of experiment results.
//!
//! Hand-rolled on purpose: the data is purely numeric with simple string
//! labels, so a dependency would buy nothing.  CSV fields containing
//! commas, quotes or newlines are quoted per RFC 4180; JSONL records are
//! one flat object per line with fields emitted in caller order, so the
//! output is deterministic and diffable.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::summary::RunSummary;
use crate::timeseries::MultiSeries;

/// Escape one CSV field.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render rows of fields as CSV text.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Completion-time table for a set of runs: one row per (policy, job).
pub fn completions_csv(summaries: &[&RunSummary]) -> String {
    let mut rows = Vec::new();
    for s in summaries {
        for c in &s.completions {
            rows.push(vec![
                s.policy.clone(),
                c.label.clone(),
                format!("{:.3}", c.arrival.as_secs_f64()),
                format!("{:.3}", c.finished.as_secs_f64()),
                format!("{:.3}", c.completion_secs()),
                c.exit_code.to_string(),
            ]);
        }
    }
    to_csv(
        &[
            "policy",
            "job",
            "arrival_s",
            "finished_s",
            "completion_s",
            "exit_code",
        ],
        &rows,
    )
}

/// One JSON scalar for a [`to_jsonl`] record field.
///
/// Floats are rendered with Rust's shortest round-trip formatting (so the
/// emitted document is bit-deterministic for deterministic inputs);
/// non-finite floats become `null` because JSON has no NaN/Infinity.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string, escaped per RFC 8259.
    Str(String),
    /// A finite float (non-finite renders as `null`).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A nested object, fields in the given order (for structured
    /// documents such as Chrome trace-event `args`).
    Obj(Vec<(String, JsonValue)>),
}

/// Escape one JSON string body (without the surrounding quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render records as JSON Lines: one flat object per record, fields in
/// the given order.
///
/// The format is the machine-readable twin of [`text_table`] — e.g.
/// `repro frontier` emits its p50/p95/p99-sojourn-vs-load curves this way
/// so they can be plotted without re-running the sweep.
pub fn to_jsonl<'a>(records: impl IntoIterator<Item = &'a [(&'a str, JsonValue)]>) -> String {
    let mut out = String::new();
    for record in records {
        out.push('{');
        for (i, (key, value)) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape(key));
            write_value(&mut out, value);
        }
        out.push_str("}\n");
    }
    out
}

/// Append one [`JsonValue`] (recursing into [`JsonValue::Obj`]) to `out`.
pub(crate) fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Str(s) => {
            let _ = write!(out, "\"{}\"", json_escape(s));
        }
        JsonValue::Num(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Num(_) => out.push_str("null"),
        JsonValue::Int(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", json_escape(key));
                write_value(out, value);
            }
            out.push('}');
        }
    }
}

/// Long-format CSV of a multi-series (one row per point).
pub fn series_csv(name: &str, series: &MultiSeries) -> String {
    let mut rows = Vec::new();
    for (label, s) in series.iter() {
        for &(t, v) in s.points() {
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{t:.3}"),
                format!("{v:.6}"),
            ]);
        }
    }
    to_csv(&["series", "label", "t_s", "value"], &rows)
}

/// Write `content` to `path`, creating parent directories.
pub fn write_file(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

/// Write a user-requested artifact (`--emit` / `--out` / `--trace-out`)
/// without touching the filesystem beyond the named file: a missing
/// parent directory or an unwritable path comes back as an actionable
/// message naming the path, for the CLI to print and exit with, instead
/// of a panic or a silently created directory tree.
pub fn write_artifact(path: &str, content: &str) -> Result<(), String> {
    fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Render a compact, aligned text table (for the repro binary's stdout).
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(ncols) {
            let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::CompletionRecord;
    use flowcon_sim::time::SimTime;

    #[test]
    fn csv_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_rendering() {
        let csv = to_csv(
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()], vec!["2".into(), "z".into()]],
        );
        assert_eq!(csv, "a,b\n1,\"x,y\"\n2,z\n");
    }

    #[test]
    fn completions_csv_has_one_row_per_job() {
        let mut s = RunSummary::new("NA");
        s.completions.push(CompletionRecord {
            label: "Job-1".into(),
            arrival: SimTime::from_secs(0),
            finished: SimTime::from_secs(100),
            exit_code: 0,
        });
        let csv = completions_csv(&[&s]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("NA,Job-1,0.000,100.000,100.000,0"));
    }

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["job", "secs"],
            &[
                vec!["Job-1".into(), "85.3".into()],
                vec!["Job-10".into(), "110.0".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("job"));
        assert!(lines[2].starts_with("Job-1 "));
        assert!(lines[3].starts_with("Job-10"));
    }

    #[test]
    fn jsonl_renders_one_object_per_record_in_field_order() {
        let records: Vec<Vec<(&str, JsonValue)>> = vec![
            vec![
                ("policy", JsonValue::Str("fifo".into())),
                ("rate", JsonValue::Num(0.25)),
                ("saturated", JsonValue::Bool(false)),
            ],
            vec![
                ("policy", JsonValue::Str("fifo".into())),
                ("completed", JsonValue::Int(1024)),
            ],
        ];
        let doc = to_jsonl(records.iter().map(Vec::as_slice));
        assert_eq!(
            doc,
            "{\"policy\":\"fifo\",\"rate\":0.25,\"saturated\":false}\n\
             {\"policy\":\"fifo\",\"completed\":1024}\n"
        );
    }

    #[test]
    fn jsonl_escapes_strings_and_nulls_non_finite_floats() {
        let record: Vec<(&str, JsonValue)> = vec![
            ("label", JsonValue::Str("say \"hi\"\nback\\".into())),
            ("p99", JsonValue::Num(f64::NAN)),
        ];
        let doc = to_jsonl([record.as_slice()]);
        assert_eq!(
            doc,
            "{\"label\":\"say \\\"hi\\\"\\nback\\\\\",\"p99\":null}\n"
        );
    }

    #[test]
    fn jsonl_renders_nested_objects_recursively() {
        let record: Vec<(&str, JsonValue)> = vec![(
            "args",
            JsonValue::Obj(vec![
                ("a".to_string(), JsonValue::Int(7)),
                (
                    "inner".to_string(),
                    JsonValue::Obj(vec![("ok".to_string(), JsonValue::Bool(true))]),
                ),
            ]),
        )];
        let doc = to_jsonl([record.as_slice()]);
        assert_eq!(doc, "{\"args\":{\"a\":7,\"inner\":{\"ok\":true}}}\n");
    }

    #[test]
    fn write_artifact_reports_the_failing_path() {
        let dir = std::env::temp_dir().join("flowcon_artifact_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Parent directory does not exist: actionable error, no panic,
        // and nothing is created behind the caller's back.
        let missing = dir.join("nested/out.json");
        let missing = missing.to_str().unwrap();
        let err = write_artifact(missing, "{}").unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
        assert!(err.contains(missing), "{err}");
        assert!(!dir.exists(), "write_artifact must not create directories");
        // A writable path succeeds.
        std::fs::create_dir_all(&dir).unwrap();
        let ok = dir.join("out.json");
        write_artifact(ok.to_str().unwrap(), "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&ok).unwrap(), "{}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_file_creates_parents() {
        let dir = std::env::temp_dir().join("flowcon_metrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_file(&path, "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
