//! Per-job SLO aggregates: sojourn time and queue-wait tails.
//!
//! [`StreamStats`](crate::stream::StreamStats) reports *means* — arrival
//! rate, utilization, time-weighted queue depth.  Production SLOs live in
//! the tails: p95/p99 job completion time and queueing delay are how the
//! Tiresias/Gandiva line of work scores schedulers.  [`SojournStats`]
//! carries two [`QuantileSketch`]es — one over **sojourn time** (exit −
//! admission) and one over **queue wait** (first allocation − admission) —
//! recorded once per job at exit, merged across workers and shards in
//! deterministic order.
//!
//! The aggregate is deliberately *not* part of `StreamStats` (which is
//! `Copy` and must stay so for the sharded executor's result plumbing);
//! it rides alongside as the sketch-backed tail view.

#![deny(missing_docs)]

use crate::sketch::QuantileSketch;

/// The standard three-point tail summary: p50 / p95 / p99.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Read p50/p95/p99 out of a sketch (zeros when the sketch is empty).
    pub fn of(sketch: &QuantileSketch) -> Percentiles {
        Percentiles {
            p50: sketch.quantile(0.50).unwrap_or(0.0),
            p95: sketch.quantile(0.95).unwrap_or(0.0),
            p99: sketch.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// Tail-latency aggregate for one run (or one worker's shard of a run):
/// sojourn-time and queue-wait quantile sketches plus the exit count.
///
/// Recorded once per job **at exit** — a job contributes nothing until it
/// leaves, so partial runs under overload under-report by construction
/// (the frontier sweep accounts for this via the completion-rate
/// saturation check, not by guessing at in-flight jobs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SojournStats {
    /// Sojourn time (exit − admission) in seconds, one sample per exit.
    pub sojourn: QuantileSketch,
    /// Queue wait (first allocation − admission) in seconds, one sample
    /// per exit.
    pub queue_wait: QuantileSketch,
}

impl SojournStats {
    /// An empty aggregate at the default sketch accuracy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one job's exit: its sojourn and queue-wait in seconds.
    pub fn record_exit(&mut self, sojourn_secs: f64, queue_wait_secs: f64) {
        self.sojourn.insert(sojourn_secs);
        self.queue_wait.insert(queue_wait_secs);
    }

    /// Number of exits recorded.
    pub fn exits(&self) -> u64 {
        self.sojourn.count()
    }

    /// Whether any exits were recorded.
    pub fn is_empty(&self) -> bool {
        self.sojourn.is_empty()
    }

    /// Merge another aggregate into this one (bucket-wise, deterministic:
    /// folding per-worker aggregates in worker-index order is bit-identical
    /// to recording every exit sequentially).
    pub fn merge(&mut self, other: &SojournStats) {
        self.sojourn.merge(&other.sojourn);
        self.queue_wait.merge(&other.queue_wait);
    }

    /// p50/p95/p99 of sojourn time in seconds (zeros when empty).
    pub fn sojourn_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.sojourn)
    }

    /// p50/p95/p99 of queue wait in seconds (zeros when empty).
    pub fn queue_wait_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.queue_wait)
    }

    /// Clear both sketches, keeping their bucket allocations for reuse.
    pub fn reset(&mut self) {
        self.sojourn.reset();
        self.queue_wait.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero_percentiles() {
        let s = SojournStats::new();
        assert!(s.is_empty());
        assert_eq!(s.exits(), 0);
        assert_eq!(s.sojourn_percentiles(), Percentiles::default());
        assert_eq!(s.queue_wait_percentiles(), Percentiles::default());
    }

    #[test]
    fn record_exit_feeds_both_sketches() {
        let mut s = SojournStats::new();
        s.record_exit(120.0, 5.0);
        s.record_exit(240.0, 0.0);
        assert_eq!(s.exits(), 2);
        assert_eq!(s.sojourn.count(), 2);
        assert_eq!(s.queue_wait.count(), 2);
        let max = s.sojourn.quantile(1.0).unwrap();
        assert!((max - 240.0).abs() / 240.0 < 0.01, "got {max}");
        let p50 = s.sojourn_percentiles().p50;
        assert!((p50 - 120.0).abs() / 120.0 < 0.01, "got {p50}");
        assert_eq!(s.queue_wait_percentiles().p50, 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let exits: Vec<(f64, f64)> = (0..200)
            .map(|i| (((i * 13) % 47) as f64 + 1.0, ((i * 7) % 11) as f64))
            .collect();
        let mut sequential = SojournStats::new();
        for &(s, w) in &exits {
            sequential.record_exit(s, w);
        }
        let mut merged = SojournStats::new();
        for chunk in exits.chunks(23) {
            let mut shard = SojournStats::new();
            for &(s, w) in chunk {
                shard.record_exit(s, w);
            }
            merged.merge(&shard);
        }
        assert_eq!(sequential, merged);
    }

    #[test]
    fn reset_recycles() {
        let mut s = SojournStats::new();
        s.record_exit(10.0, 1.0);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.sojourn_percentiles(), Percentiles::default());
    }
}
