//! Time series of scalar measurements.

use flowcon_sim::time::SimTime;

/// An append-only series of `(time, value)` points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; time must be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        let t = at.as_secs_f64();
        debug_assert!(
            self.points.last().map_or(true, |&(lt, _)| t >= lt),
            "time went backwards: {t} after {:?}",
            self.points.last()
        );
        self.points.push((t, value));
    }

    /// Append a point with a raw seconds timestamp.
    pub fn push_secs(&mut self, t: f64, value: f64) {
        self.points.push((t, value));
    }

    /// All points as `(seconds, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Maximum value over the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of values with `since < t <= until`.
    pub fn mean_over(&self, since: f64, until: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u32;
        for &(t, v) in &self.points {
            if t > since && t <= until {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Piecewise-constant integral (left-continuous) over the full span.
    pub fn integral(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].1 * (w[1].0 - w[0].0))
            .sum()
    }

    /// Resample onto a fixed `step`-second grid by last-observation-carried-
    /// forward; used when rendering CPU traces at uniform resolution.
    pub fn resample(&self, step: f64) -> TimeSeries {
        assert!(step > 0.0);
        let mut out = TimeSeries::new();
        let Some(&(t0, _)) = self.points.first() else {
            return out;
        };
        let (tn, _) = *self.points.last().expect("non-empty");
        let mut idx = 0;
        let mut t = t0;
        while t <= tn + 1e-9 {
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= t {
                idx += 1;
            }
            out.push_secs(t, self.points[idx].1);
            t += step;
        }
        out
    }
}

/// A set of labelled series sharing a time axis (one per job, typically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiSeries {
    series: Vec<(String, TimeSeries)>,
}

impl MultiSeries {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the series with `label`.
    pub fn series_mut(&mut self, label: &str) -> &mut TimeSeries {
        if let Some(pos) = self.series.iter().position(|(l, _)| l == label) {
            return &mut self.series[pos].1;
        }
        self.series.push((label.to_string(), TimeSeries::new()));
        &mut self.series.last_mut().expect("just pushed").1
    }

    /// Borrow a series by label.
    pub fn get(&self, label: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|(l, _)| l == label).map(|(_, s)| s)
    }

    /// Iterate `(label, series)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(l, s)| (l.as_str(), s))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_accessors() {
        let mut s = TimeSeries::new();
        s.push(t(1), 0.5);
        s.push(t(2), 0.7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((2.0, 0.7)));
        assert_eq!(s.max_value(), Some(0.7));
    }

    #[test]
    fn mean_over_window() {
        let mut s = TimeSeries::new();
        for i in 1..=5 {
            s.push(t(i), i as f64);
        }
        // (1, 4]: values at t=2,3,4 -> mean 3.
        assert_eq!(s.mean_over(1.0, 4.0), Some(3.0));
        assert_eq!(s.mean_over(10.0, 20.0), None);
    }

    #[test]
    fn integral_is_piecewise_constant() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(2), 0.5);
        s.push(t(4), 0.0);
        // 1.0 for 2s + 0.5 for 2s = 3.0.
        assert!((s.integral() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn resample_carries_last_observation_forward() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(3), 2.0);
        let r = s.resample(1.0);
        let vals: Vec<f64> = r.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn multiseries_round_trip() {
        let mut m = MultiSeries::new();
        m.series_mut("a").push(t(1), 0.1);
        m.series_mut("b").push(t(1), 0.2);
        m.series_mut("a").push(t(2), 0.3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a").unwrap().len(), 2);
        assert!(m.get("missing").is_none());
        let labels: Vec<&str> = m.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }
}
