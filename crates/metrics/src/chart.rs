//! ASCII charts for terminal experiment reports.
//!
//! The `repro` binary prints every figure as text: bar charts for
//! completion-time figures (Figs. 3–6, 9, 12, 17) and line charts for the
//! CPU-usage and growth-efficiency traces (Figs. 7–8, 10–11, 13–16).

use crate::timeseries::TimeSeries;

/// Render a horizontal bar chart. `rows` are `(label, value)`.
pub fn bar_chart(title: &str, rows: &[(String, f64)], unit: &str, width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} |{bar:<width$}| {value:8.1} {unit}\n",
            bar = "#".repeat(bar_len.min(width)),
        ));
    }
    out
}

/// Render several time series as one ASCII line chart.
///
/// Each series is drawn with its own glyph; the y-axis is scaled to the
/// maximum observed value (or `y_max` when given, e.g. 1.0 for CPU shares).
pub fn line_chart(
    title: &str,
    series: &[(&str, &TimeSeries)],
    y_max: Option<f64>,
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 10] = ['*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let t_max = series
        .iter()
        .filter_map(|(_, s)| s.last().map(|(t, _)| t))
        .fold(0.0, f64::max);
    let v_max = y_max.unwrap_or_else(|| {
        series
            .iter()
            .filter_map(|(_, s)| s.max_value())
            .fold(0.0, f64::max)
    });
    if t_max <= 0.0 || v_max <= 0.0 {
        out.push_str("  (no data)\n");
        return out;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(t, v) in s.points() {
            let col = ((t / t_max) * (width - 1) as f64).round() as usize;
            let row_from_bottom =
                ((v / v_max).clamp(0.0, 1.0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row_from_bottom;
            grid[row][col.min(width - 1)] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{v_max:6.2}")
        } else if i == height - 1 {
            format!("{:6.2}", 0.0)
        } else {
            "      ".to_string()
        };
        out.push_str(&format!("{y_label} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "       +{}\n        0{:>w$.0}s\n",
        "-".repeat(width),
        t_max,
        w = width - 1
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("        {} {label}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_sim::time::SimTime;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("short".to_string(), 50.0), ("long".to_string(), 100.0)];
        let chart = bar_chart("Completion", &rows, "s", 20);
        assert!(chart.contains("Completion"));
        let lines: Vec<&str> = chart.lines().collect();
        let short_hashes = lines[1].matches('#').count();
        let long_hashes = lines[2].matches('#').count();
        assert_eq!(long_hashes, 20);
        assert_eq!(short_hashes, 10);
    }

    #[test]
    fn bar_chart_handles_zero_max() {
        let rows = vec![("a".to_string(), 0.0)];
        let chart = bar_chart("Zeros", &rows, "s", 10);
        assert!(chart.contains("0.0"));
    }

    #[test]
    fn line_chart_renders_series_glyphs() {
        let mut s = TimeSeries::new();
        for i in 0..=10 {
            s.push(SimTime::from_secs(i), i as f64 / 10.0);
        }
        let chart = line_chart("CPU", &[("job-1", &s)], Some(1.0), 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("job-1"));
        assert!(chart.contains("1.00"));
    }

    #[test]
    fn line_chart_empty_series_is_graceful() {
        let s = TimeSeries::new();
        let chart = line_chart("Empty", &[("none", &s)], None, 40, 8);
        assert!(chart.contains("(no data)"));
    }
}
