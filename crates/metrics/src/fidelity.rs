//! Differential fidelity: does the fluid simulation predict what real
//! threads do?
//!
//! [`compare`] aligns the per-job [`CompletionRecord`]s of a *reference*
//! run (the simulation) and a *candidate* run (the `flowcon-rt` wall-clock
//! backend executing the identical seeded workload) and distills the
//! divergence into a [`FidelityReport`]:
//!
//! * **completion-set equality** — every planned job finishes exactly once
//!   in both backends (missing/extra labels otherwise);
//! * **completion-order edit distance** — Levenshtein distance between the
//!   two exit-order label sequences (0 = identical finishing order);
//! * **per-job sojourn ratio distribution** — `candidate/reference`
//!   sojourn per matched label, streamed into a [`QuantileSketch`] so the
//!   report carries p50/p95/p99 and the extremes, not just a mean;
//! * **makespan ratio** — candidate wall of the whole run over reference.
//!
//! The comparator is *pure logic over records*: no threads, no clocks —
//! which is what makes its tolerance behaviour unit-testable with
//! synthetic fixtures (see `tests/fidelity_fixtures.rs`).  The CLI's
//! exit-code decision ([`FidelityReport::exit_code`]) lives here for the
//! same reason.

use crate::sketch::QuantileSketch;
use crate::sojourn::Percentiles;
use crate::summary::CompletionRecord;

/// Tolerance bands for [`FidelityReport::violations`].
///
/// Ratios compare candidate to reference; a band is `(lo, hi)` and a value
/// outside it is a violation.  Completion-set inequality is *always* a
/// violation — the backends disagreeing on *which* jobs finished is never
/// within tolerance.
#[derive(Debug, Clone, Copy)]
pub struct FidelityTolerance {
    /// Maximum allowed completion-order edit distance.
    pub max_order_edit_distance: usize,
    /// Allowed band for the median per-job sojourn ratio.
    pub sojourn_p50: (f64, f64),
    /// Allowed band for the makespan ratio.
    pub makespan: (f64, f64),
}

impl Default for FidelityTolerance {
    /// Generous CI defaults: order may differ freely (real schedulers
    /// reorder close finishes), but the median sojourn and the makespan
    /// must stay within 4× either way — catching structural divergence
    /// (wrong allocator inputs, broken governor) without flaking on
    /// machine noise.
    fn default() -> Self {
        FidelityTolerance {
            max_order_edit_distance: usize::MAX,
            sojourn_p50: (0.25, 4.0),
            makespan: (0.25, 4.0),
        }
    }
}

/// The divergence between a reference and a candidate run.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Jobs completed in the reference run.
    pub reference_jobs: usize,
    /// Jobs completed in the candidate run.
    pub candidate_jobs: usize,
    /// Labels the reference completed but the candidate did not.
    pub missing_labels: Vec<String>,
    /// Labels the candidate completed but the reference did not.
    pub extra_labels: Vec<String>,
    /// Whether both runs completed exactly the same set of jobs.
    pub completion_set_equal: bool,
    /// Levenshtein distance between the exit-order label sequences.
    pub order_edit_distance: usize,
    /// Labels present in both runs (the sojourn-ratio population).
    pub matched: usize,
    /// Per-job `candidate/reference` sojourn ratios.
    pub sojourn_ratios: QuantileSketch,
    /// Reference run makespan in seconds.
    pub makespan_reference: f64,
    /// Candidate run makespan in seconds.
    pub makespan_candidate: f64,
}

impl FidelityReport {
    /// `candidate/reference` makespan ratio (1.0 when the reference
    /// makespan is zero — two empty runs are identical, not divergent).
    pub fn makespan_ratio(&self) -> f64 {
        if self.makespan_reference <= 0.0 {
            if self.makespan_candidate <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.makespan_candidate / self.makespan_reference
        }
    }

    /// p50/p95/p99 of the per-job sojourn ratios (`None` when no labels
    /// matched).
    pub fn sojourn_ratio_percentiles(&self) -> Option<Percentiles> {
        if self.sojourn_ratios.is_empty() {
            None
        } else {
            Some(Percentiles::of(&self.sojourn_ratios))
        }
    }

    /// Whether *any* divergence is visible at all: set inequality, order
    /// permutation, a per-job sojourn ratio outside `[0.8, 1.25]`, or a
    /// makespan ratio off unity by more than 5%.  Chaos smoke tests assert
    /// this is `true` — a physically throttled governor must be *seen*.
    pub fn divergent(&self) -> bool {
        if !self.completion_set_equal || self.order_edit_distance > 0 {
            return true;
        }
        let spread = self
            .sojourn_ratios
            .quantile(1.0)
            .zip(self.sojourn_ratios.quantile(0.0));
        if let Some((max, min)) = spread {
            if max > 1.25 || min < 0.8 {
                return true;
            }
        }
        (self.makespan_ratio() - 1.0).abs() > 0.05
    }

    /// Tolerance violations, each as a human-readable line (empty = pass).
    pub fn violations(&self, tol: &FidelityTolerance) -> Vec<String> {
        let mut v = Vec::new();
        if !self.completion_set_equal {
            v.push(format!(
                "completion sets differ: {} missing, {} extra",
                self.missing_labels.len(),
                self.extra_labels.len()
            ));
        }
        if self.order_edit_distance > tol.max_order_edit_distance {
            v.push(format!(
                "completion-order edit distance {} exceeds {}",
                self.order_edit_distance, tol.max_order_edit_distance
            ));
        }
        if let Some(p) = self.sojourn_ratio_percentiles() {
            let (lo, hi) = tol.sojourn_p50;
            if p.p50 < lo || p.p50 > hi {
                v.push(format!(
                    "sojourn ratio p50 {:.3} outside [{lo}, {hi}]",
                    p.p50
                ));
            }
        }
        let (lo, hi) = tol.makespan;
        let ratio = self.makespan_ratio();
        if ratio < lo || ratio > hi {
            v.push(format!("makespan ratio {ratio:.3} outside [{lo}, {hi}]"));
        }
        v
    }

    /// The harness exit code: `0` within tolerance, `2` on breach.
    ///
    /// Under `chaos` the run is *supposed* to diverge, so only the
    /// invariant that must survive chaos is enforced: completion-set
    /// equality (a straggling or churned container still finishes its
    /// job).  Timing tolerances apply to non-chaos runs only.
    pub fn exit_code(&self, tol: &FidelityTolerance, chaos: bool) -> i32 {
        let breach = if chaos {
            !self.completion_set_equal
        } else {
            !self.violations(tol).is_empty()
        };
        if breach {
            2
        } else {
            0
        }
    }
}

/// Align two completion-record streams and measure their divergence.
///
/// Records arrive in exit order (as [`RunSummary`](crate::summary::RunSummary)
/// stores them); per-label alignment uses the *first* occurrence of each
/// label in either stream.  Sojourn ratios are taken over labels present
/// in both runs with a strictly positive reference sojourn.
pub fn compare(reference: &[CompletionRecord], candidate: &[CompletionRecord]) -> FidelityReport {
    let ref_order: Vec<&str> = reference.iter().map(|c| c.label.as_str()).collect();
    let cand_order: Vec<&str> = candidate.iter().map(|c| c.label.as_str()).collect();

    let mut missing_labels: Vec<String> = reference
        .iter()
        .filter(|r| !candidate.iter().any(|c| c.label == r.label))
        .map(|r| r.label.clone())
        .collect();
    missing_labels.sort();
    let mut extra_labels: Vec<String> = candidate
        .iter()
        .filter(|c| !reference.iter().any(|r| r.label == c.label))
        .map(|c| c.label.clone())
        .collect();
    extra_labels.sort();
    let completion_set_equal =
        missing_labels.is_empty() && extra_labels.is_empty() && reference.len() == candidate.len();

    let mut sojourn_ratios = QuantileSketch::new();
    let mut matched = 0usize;
    for r in reference {
        if let Some(c) = candidate.iter().find(|c| c.label == r.label) {
            matched += 1;
            let ref_sojourn = r.completion_secs();
            let cand_sojourn = c.completion_secs();
            if ref_sojourn > 0.0 && cand_sojourn >= 0.0 {
                sojourn_ratios.insert(cand_sojourn / ref_sojourn);
            }
        }
    }

    FidelityReport {
        reference_jobs: reference.len(),
        candidate_jobs: candidate.len(),
        missing_labels,
        extra_labels,
        completion_set_equal,
        order_edit_distance: levenshtein(&ref_order, &cand_order),
        matched,
        sojourn_ratios,
        makespan_reference: makespan(reference),
        makespan_candidate: makespan(candidate),
    }
}

fn makespan(records: &[CompletionRecord]) -> f64 {
    records
        .iter()
        .map(|c| c.finished.as_secs_f64())
        .fold(0.0, f64::max)
}

/// Levenshtein distance between two label sequences (single-row DP:
/// O(min·len) time, O(len) space — fidelity runs are tens of jobs, not
/// millions).
fn levenshtein(a: &[&str], b: &[&str]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ai) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &bj) in b.iter().enumerate() {
            let cost = if ai == bj { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_sim::time::SimTime;

    fn rec(label: &str, arrival: f64, finished: f64) -> CompletionRecord {
        CompletionRecord {
            label: label.into(),
            arrival: SimTime::from_secs_f64(arrival),
            finished: SimTime::from_secs_f64(finished),
            exit_code: 0,
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(&[], &[]), 0);
        assert_eq!(levenshtein(&["a", "b"], &[]), 2);
        assert_eq!(levenshtein(&["a", "b", "c"], &["a", "b", "c"]), 0);
        assert_eq!(levenshtein(&["a", "b", "c"], &["a", "c", "b"]), 2);
        assert_eq!(levenshtein(&["a", "b"], &["a", "b", "c"]), 1);
        assert_eq!(levenshtein(&["x", "b", "c"], &["a", "b", "c"]), 1);
    }

    #[test]
    fn empty_runs_are_identical() {
        let report = compare(&[], &[]);
        assert!(report.completion_set_equal);
        assert_eq!(report.order_edit_distance, 0);
        assert_eq!(report.makespan_ratio(), 1.0);
        assert!(!report.divergent());
        assert_eq!(report.exit_code(&FidelityTolerance::default(), false), 0);
    }

    #[test]
    fn one_sided_makespan_is_infinite_ratio() {
        let report = compare(&[], &[rec("a", 0.0, 5.0)]);
        assert!(!report.completion_set_equal);
        assert!(report.makespan_ratio().is_infinite());
    }
}
