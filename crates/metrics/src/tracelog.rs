//! Chrome trace-event export of [`FlightRecorder`] timelines.
//!
//! The tracing layer itself lives in [`flowcon_sim::trace`] (re-exported
//! here for convenience): deterministic, sim-time-stamped POD events in a
//! preallocated ring.  This module renders a merged event sequence as a
//! [Chrome trace-event JSON] document that loads directly into Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Lane (thread-id) layout keeps begin/end spans properly nested without
//! a real thread model:
//!
//! * tid `1` — the simulation engine (`engine.advance` / `engine.event`);
//! * tid `2` — cluster-scheduler barriers, placement/preemption/migration
//!   instants, and the queue-depth counter;
//! * tid `1000 + node` — per-node policy activity (reconfigure spans and
//!   the water-filling counter);
//! * tid `10000 + job` — one lane per job, holding its `job.run` span and
//!   admission/completion instants.
//!
//! The document is built from deterministic inputs only (sim-time
//! timestamps, stable event order), so a given run exports byte-identical
//! JSON every time — the property `repro timeline` smoke-tests in CI.
//!
//! [Chrome trace-event JSON]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use flowcon_sim::time::SimTime;
pub use flowcon_sim::trace::{
    FlightRecorder, NoopTracer, TraceEvent, TraceKind, TracePhase, Tracer,
};

use crate::export::{json_escape, write_value, JsonValue};

/// The `otherData.format` tag stamped into every exported document.
pub const CHROME_TRACE_FORMAT: &str = "flowcon-trace/v1";

/// The Chrome trace-event lane (`tid`) an event renders into.
fn lane_of(e: &TraceEvent) -> u64 {
    match e.kind {
        TraceKind::EngineAdvance | TraceKind::EngineEvent => 1,
        TraceKind::SchedBarrier
        | TraceKind::SchedPlace
        | TraceKind::SchedPreempt
        | TraceKind::SchedMigrate
        | TraceKind::QueueDepth => 2,
        TraceKind::Reconfigure | TraceKind::Waterfill => 1_000 + e.b as u64,
        TraceKind::JobAdmit | TraceKind::JobRun | TraceKind::JobComplete => 10_000 + e.a as u64,
    }
}

/// The trace-event `ph` string of a phase.
fn ph_of(phase: TracePhase) -> &'static str {
    match phase {
        TracePhase::Begin => "B",
        TracePhase::End => "E",
        TracePhase::Instant => "i",
        TracePhase::Counter => "C",
    }
}

/// Render a merged event sequence as one Chrome trace-event JSON document.
///
/// Events are stably sorted by timestamp (merging per-node recorders at
/// barriers leaves short backward jumps; viewers expect monotone `ts`,
/// and the stable sort keeps same-timestamp order — e.g. a span's begin
/// before its end — exactly as recorded).  `dropped` is the ring's
/// overwrite count, surfaced in `otherData` so a truncated timeline is
/// visible in the viewer's metadata rather than silently partial.
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.at.as_micros());
    let mut out = String::with_capacity(128 + 160 * ordered.len());
    out.push_str("{\"traceEvents\":[");
    for (i, e) in ordered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":");
    let meta = JsonValue::Obj(vec![
        (
            "format".to_string(),
            JsonValue::Str(CHROME_TRACE_FORMAT.to_string()),
        ),
        ("events".to_string(), JsonValue::Int(events.len() as u64)),
        ("dropped".to_string(), JsonValue::Int(dropped)),
    ]);
    write_value(&mut out, &meta);
    out.push_str("}\n");
    out
}

/// Append one trace event as a Chrome trace-event object.
fn write_event(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
        json_escape(e.kind.name()),
        json_escape(e.kind.layer()),
        ph_of(e.phase),
        e.at.as_micros(),
        lane_of(e),
    );
    if e.phase == TracePhase::Instant {
        // Thread-scoped instants render as markers in the event's lane.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":");
    let args = match e.phase {
        // Counter tracks draw their named series from `args` values.
        TracePhase::Counter => JsonValue::Obj(vec![(
            "value".to_string(),
            JsonValue::Num(if e.value.is_finite() { e.value } else { 0.0 }),
        )]),
        _ => JsonValue::Obj(vec![
            ("a".to_string(), JsonValue::Int(e.a as u64)),
            ("b".to_string(), JsonValue::Int(e.b as u64)),
            (
                "value".to_string(),
                JsonValue::Num(if e.value.is_finite() { e.value } else { 0.0 }),
            ),
        ]),
    };
    write_value(out, &args);
    out.push('}');
}

/// Per-kind event counts in [`TraceKind::ALL`] order (zero counts
/// included), for `repro timeline --summary` tables.
pub fn kind_counts(events: &[TraceEvent]) -> Vec<(TraceKind, u64)> {
    let mut counts = vec![0u64; TraceKind::ALL.len()];
    for e in events {
        if let Some(i) = TraceKind::ALL.iter().position(|k| *k == e.kind) {
            counts[i] += 1;
        }
    }
    TraceKind::ALL.iter().copied().zip(counts).collect()
}

/// Timestamp span `(first, last)` of a timeline, if non-empty.
pub fn time_span(events: &[TraceEvent]) -> Option<(SimTime, SimTime)> {
    let min = events.iter().map(|e| e.at).min()?;
    let max = events.iter().map(|e| e.at).max()?;
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(us: u64, phase: TracePhase, kind: TraceKind, a: u32, b: u32) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(us),
            phase,
            kind,
            a,
            b,
            value: a as f64,
        }
    }

    #[test]
    fn export_is_valid_trace_json_with_expected_lanes() {
        let events = vec![
            event(0, TracePhase::Begin, TraceKind::EngineAdvance, 0, 0),
            event(5, TracePhase::End, TraceKind::EngineAdvance, 0, 0),
            event(5, TracePhase::Instant, TraceKind::JobAdmit, 3, 0),
            event(5, TracePhase::Counter, TraceKind::QueueDepth, 0, 0),
            event(7, TracePhase::Counter, TraceKind::Waterfill, 2, 4),
        ];
        let doc = chrome_trace_json(&events, 9);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"engine.advance\""));
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        // Instants are thread-scoped; jobs get their own lane.
        assert!(doc.contains("\"ph\":\"i\",\"ts\":5,\"pid\":1,\"tid\":10003,\"s\":\"t\""));
        // Counters live in the sched (2) and per-node (1000+b) lanes.
        assert!(doc.contains("\"ph\":\"C\",\"ts\":5,\"pid\":1,\"tid\":2"));
        assert!(doc.contains("\"ph\":\"C\",\"ts\":7,\"pid\":1,\"tid\":1004"));
        assert!(doc.contains("\"format\":\"flowcon-trace/v1\""));
        assert!(doc.contains("\"events\":5"));
        assert!(doc.contains("\"dropped\":9"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn export_sorts_by_timestamp_but_keeps_ties_in_recorded_order() {
        // Barrier-merged input: a node event at t=3 arrives after the
        // sched event at t=10, plus a same-timestamp begin/end pair.
        let events = vec![
            event(10, TracePhase::Begin, TraceKind::SchedBarrier, 0, 0),
            event(3, TracePhase::Counter, TraceKind::Waterfill, 1, 0),
            event(10, TracePhase::End, TraceKind::SchedBarrier, 0, 0),
        ];
        let doc = chrome_trace_json(&events, 0);
        let waterfill = doc.find("policy.waterfill").unwrap();
        let begin = doc.find("\"ph\":\"B\"").unwrap();
        let end = doc.find("\"ph\":\"E\"").unwrap();
        assert!(waterfill < begin, "t=3 sorts before t=10");
        assert!(
            begin < end,
            "stable sort keeps begin before end at equal ts"
        );
    }

    #[test]
    fn export_is_deterministic() {
        let events: Vec<TraceEvent> = (0..100)
            .map(|i| {
                event(
                    i % 7,
                    TracePhase::Instant,
                    TraceKind::EngineEvent,
                    i as u32,
                    0,
                )
            })
            .collect();
        assert_eq!(chrome_trace_json(&events, 1), chrome_trace_json(&events, 1));
    }

    #[test]
    fn kind_counts_cover_every_kind_in_stable_order() {
        let events = vec![
            event(0, TracePhase::Instant, TraceKind::JobAdmit, 1, 0),
            event(1, TracePhase::Instant, TraceKind::JobAdmit, 2, 0),
            event(2, TracePhase::Counter, TraceKind::QueueDepth, 0, 0),
        ];
        let counts = kind_counts(&events);
        assert_eq!(counts.len(), TraceKind::ALL.len());
        let of = |kind: TraceKind| counts.iter().find(|(k, _)| *k == kind).unwrap().1;
        assert_eq!(of(TraceKind::JobAdmit), 2);
        assert_eq!(of(TraceKind::QueueDepth), 1);
        assert_eq!(of(TraceKind::EngineAdvance), 0);
        assert_eq!(
            time_span(&events),
            Some((SimTime::ZERO, SimTime::from_micros(2)))
        );
        assert_eq!(time_span(&[]), None);
    }
}
