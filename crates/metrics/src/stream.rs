//! Steady-state statistics of open-loop runs.
//!
//! A closed (plan-driven) run is summarized by its makespan and per-job
//! completion times.  An **open-loop** run — jobs arriving while the
//! policy reconfigures, terminated by a horizon — asks a different
//! question: *does the node keep up?*  The answer lives in rates and
//! time-weighted occupancies, not in a makespan:
//!
//! * **arrival vs. completion rate** — a stable system completes as fast
//!   as it admits; a persistent gap means the queue is growing;
//! * **mean queue depth** — the time-weighted average number of jobs in
//!   the container pool (`∫ pool·dt / T`);
//! * **utilization** — the fraction of node CPU capacity actually
//!   allocated (`∫ Σrates·dt / (capacity · T)`).
//!
//! The worker simulation accumulates the two integrals with
//! `flowcon_sim::stats::TimeWeighted` during its fluid `advance_to` step
//! (no series retained, no allocation) and the session layer packages them
//! as a [`StreamStats`] next to whatever the run's `Recorder` produced.

/// Steady-state accounting of one open-loop run (one worker, or a whole
/// cluster after [`StreamStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Jobs admitted before the horizon.
    pub submitted: u64,
    /// Jobs that exited (including injected failures).
    pub completed: u64,
    /// Simulated end of the run in seconds (the drain point: when the last
    /// admitted job exited).  After a merge: the latest worker's end.
    pub duration_secs: f64,
    /// `∫ Σ allocated CPU rates · dt` in CPU-seconds.
    pub busy_cpu_secs: f64,
    /// `∫ pool size · dt` in job-seconds.
    pub queue_job_secs: f64,
    /// `Σ capacity · duration` in CPU-seconds — each worker's CPU supply
    /// over its own active window (the utilization denominator).
    pub capacity_cpu_secs: f64,
}

impl StreamStats {
    /// Jobs admitted per simulated second over the run.
    pub fn arrival_rate(&self) -> f64 {
        per_sec(self.submitted, self.duration_secs)
    }

    /// Jobs completed per simulated second over the run.
    ///
    /// An open-loop run drains after its horizon, so over the full run
    /// this approaches [`StreamStats::arrival_rate`] exactly when the
    /// system is stable; it can never exceed it.
    pub fn completion_rate(&self) -> f64 {
        per_sec(self.completed, self.duration_secs)
    }

    /// Time-weighted mean number of jobs in the pool.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.queue_job_secs / self.duration_secs
        } else {
            0.0
        }
    }

    /// Fraction of CPU supply actually allocated, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_cpu_secs > 0.0 {
            self.busy_cpu_secs / self.capacity_cpu_secs
        } else {
            0.0
        }
    }

    /// Fold another worker's stats into this one (cluster aggregation):
    /// counts and integrals add, the observation window extends to the
    /// latest worker's end.
    pub fn merge(&mut self, other: &StreamStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.duration_secs = self.duration_secs.max(other.duration_secs);
        self.busy_cpu_secs += other.busy_cpu_secs;
        self.queue_job_secs += other.queue_job_secs;
        self.capacity_cpu_secs += other.capacity_cpu_secs;
    }
}

fn per_sec(count: u64, duration_secs: f64) -> f64 {
    if duration_secs > 0.0 {
        count as f64 / duration_secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(submitted: u64, completed: u64, dur: f64, busy: f64, queue: f64) -> StreamStats {
        StreamStats {
            submitted,
            completed,
            duration_secs: dur,
            busy_cpu_secs: busy,
            queue_job_secs: queue,
            capacity_cpu_secs: dur, // capacity-1 node
        }
    }

    #[test]
    fn rates_and_occupancies_follow_their_definitions() {
        let s = worker(10, 10, 200.0, 150.0, 380.0);
        assert!((s.arrival_rate() - 0.05).abs() < 1e-12);
        assert!((s.completion_rate() - 0.05).abs() < 1e-12);
        assert!((s.mean_queue_depth() - 1.9).abs() < 1e-12);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_runs_report_zero_not_nan() {
        let s = StreamStats::default();
        assert_eq!(s.arrival_rate(), 0.0);
        assert_eq!(s.completion_rate(), 0.0);
        assert_eq!(s.mean_queue_depth(), 0.0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_extends_the_window() {
        let mut total = worker(4, 4, 100.0, 80.0, 120.0);
        total.merge(&worker(6, 5, 250.0, 100.0, 300.0));
        assert_eq!(total.submitted, 10);
        assert_eq!(total.completed, 9);
        assert_eq!(total.duration_secs, 250.0);
        assert!((total.busy_cpu_secs - 180.0).abs() < 1e-12);
        // Utilization denominator is per-worker supply, not max-window.
        assert!((total.utilization() - 180.0 / 350.0).abs() < 1e-12);
        // System-wide mean depth over the full window.
        assert!((total.mean_queue_depth() - 420.0 / 250.0).abs() < 1e-12);
    }
}
