//! Run summaries and baseline comparisons.
//!
//! A [`RunSummary`] captures everything the paper reports about one
//! experiment run: per-job completion times, the overall makespan, CPU and
//! growth-efficiency traces, and scheduler overhead counters.  Comparison
//! helpers compute the derived quantities the paper quotes (Table 2's
//! completion-time reductions, overlap between jobs, win/loss counts).
//!
//! Both summary types are built through recorder-facing `record_*` methods:
//! the session layer's `Recorder` implementations (`flowcon-core`) push
//! completions, usage samples and growth points here instead of reaching
//! into the fields, so summary construction lives in one place.
//! [`CompletionStats`] is the headless counterpart — label-free completion
//! records only, the O(completions) output of a `CompletionsOnly` recorder.

use flowcon_sim::time::SimTime;

use crate::timeseries::MultiSeries;

/// The makespan over a stream of per-job (or per-worker) finish times in
/// seconds: "the total length of the schedule for all the jobs" (§5.2).
///
/// The single canonical implementation — [`RunSummary::makespan_secs`],
/// [`CompletionStats::makespan_secs`] and the cluster layer's
/// `ClusterRun::makespan_secs` all delegate here.
pub fn makespan_over(finish_secs: impl IntoIterator<Item = f64>) -> f64 {
    finish_secs.into_iter().fold(0.0, f64::max)
}

/// Completion record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionRecord {
    /// Job label (`Job-3`, `MNIST (Tensorflow)`, ...).
    pub label: String,
    /// Submission time.
    pub arrival: SimTime,
    /// Exit time.
    pub finished: SimTime,
    /// Exit code (0 = converged).
    pub exit_code: i32,
}

impl CompletionRecord {
    /// Completion time in seconds (exit − arrival), the paper's per-job
    /// metric.
    pub fn completion_secs(&self) -> f64 {
        self.finished.saturating_since(self.arrival).as_secs_f64()
    }
}

/// A label-free completion record: the minimal datum the paper's headline
/// metrics (per-job completion time, makespan) need.
///
/// This is what a headless `CompletionsOnly` recorder keeps per job — no
/// label clone, no traces — so a 10k-worker cluster run retains
/// O(completions) memory instead of O(workers × series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Submission time.
    pub arrival: SimTime,
    /// Exit time.
    pub finished: SimTime,
    /// Exit code (0 = converged).
    pub exit_code: i32,
}

impl Completion {
    /// Completion time in seconds (exit − arrival).
    pub fn completion_secs(&self) -> f64 {
        self.finished.saturating_since(self.arrival).as_secs_f64()
    }
}

/// The headless run summary: completions and scheduler counters, nothing
/// else.  Produced by the session layer's `CompletionsOnly` recorder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompletionStats {
    /// Label-free per-job completion records, in exit-processing order.
    pub completions: Vec<Completion>,
    /// Number of times the policy's algorithm ran.
    pub algorithm_runs: u64,
    /// Number of `docker update` calls issued.
    pub update_calls: u64,
}

impl CompletionStats {
    /// Record one completed job (recorder-facing construction).
    pub fn record_completion(&mut self, arrival: SimTime, finished: SimTime, exit_code: i32) {
        self.completions.push(Completion {
            arrival,
            finished,
            exit_code,
        });
    }

    /// Number of completed jobs.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True if no job completed.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// The makespan (latest exit over all jobs); delegates to
    /// [`makespan_over`].
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.completions.iter().map(|c| c.finished.as_secs_f64()))
    }

    /// Mean per-job completion time, or `None` if nothing completed.
    pub fn mean_completion_secs(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let sum: f64 = self
            .completions
            .iter()
            .map(Completion::completion_secs)
            .sum();
        Some(sum / self.completions.len() as f64)
    }
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Policy name (`FlowCon-5%-20`, `NA`, ...).
    pub policy: String,
    /// Per-job completion records, in submission order.
    pub completions: Vec<CompletionRecord>,
    /// Per-job CPU-usage traces (Figs. 7/8/10/11/15/16).
    pub cpu_usage: MultiSeries,
    /// Per-job growth-efficiency traces (Figs. 13/14).
    pub growth_efficiency: MultiSeries,
    /// Per-job resource-limit traces (FlowCon's decisions over time).
    pub limits: MultiSeries,
    /// Number of times Algorithm 1 ran (scheduler overhead proxy).
    pub algorithm_runs: u64,
    /// Number of `docker update` calls issued.
    pub update_calls: u64,
}

impl RunSummary {
    /// A summary for the named policy.
    pub fn new(policy: impl Into<String>) -> Self {
        RunSummary {
            policy: policy.into(),
            ..Default::default()
        }
    }

    /// Record one completed job (recorder-facing construction).
    ///
    /// The label is cloned here and nowhere else on the full-recording
    /// path; headless recorders use [`CompletionStats::record_completion`]
    /// instead and never clone it.
    pub fn record_completion(
        &mut self,
        label: &str,
        arrival: SimTime,
        finished: SimTime,
        exit_code: i32,
    ) {
        self.completions.push(CompletionRecord {
            label: label.to_string(),
            arrival,
            finished,
            exit_code,
        });
    }

    /// Record one usage/limit sample pair for `label` (recorder-facing
    /// construction): pushes onto the `cpu_usage` and `limits` traces.
    pub fn record_usage_sample(&mut self, now: SimTime, label: &str, usage: f64, limit: f64) {
        self.cpu_usage.series_mut(label).push(now, usage);
        self.limits.series_mut(label).push(now, limit);
    }

    /// Record one growth-efficiency point for `label` (recorder-facing
    /// construction).
    pub fn record_growth(&mut self, now: SimTime, label: &str, growth: f64) {
        self.growth_efficiency.series_mut(label).push(now, growth);
    }

    /// The makespan: "the total length of the schedule for all the jobs"
    /// (§5.2) — the latest exit time over all jobs; delegates to
    /// [`makespan_over`].
    pub fn makespan_secs(&self) -> f64 {
        makespan_over(self.completions.iter().map(|c| c.finished.as_secs_f64()))
    }

    /// Completion time of the job with `label`.
    pub fn completion_of(&self, label: &str) -> Option<f64> {
        self.completions
            .iter()
            .find(|c| c.label == label)
            .map(|c| c.completion_secs())
    }

    /// Seconds during which at least `k` jobs were simultaneously alive
    /// (between arrival and exit) — the paper's "overlap" (§5.3).
    pub fn overlap_secs(&self, k: usize) -> f64 {
        let mut edges: Vec<(f64, i32)> = Vec::with_capacity(self.completions.len() * 2);
        for c in &self.completions {
            edges.push((c.arrival.as_secs_f64(), 1));
            edges.push((c.finished.as_secs_f64(), -1));
        }
        edges.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(b.1.cmp(&a.1))
        });
        let mut active = 0i32;
        let mut overlap = 0.0;
        let mut last_t = 0.0;
        for (t, delta) in edges {
            if active as usize >= k {
                overlap += t - last_t;
            }
            active += delta;
            last_t = t;
        }
        overlap
    }

    /// Percentage reduction in `label`'s completion time vs `baseline`
    /// (positive = this run is faster), as reported in Table 2.
    pub fn reduction_vs(&self, baseline: &RunSummary, label: &str) -> Option<f64> {
        let ours = self.completion_of(label)?;
        let theirs = baseline.completion_of(label)?;
        (theirs > 0.0).then(|| 100.0 * (theirs - ours) / theirs)
    }

    /// Percentage makespan improvement vs `baseline` (positive = faster).
    pub fn makespan_improvement_vs(&self, baseline: &RunSummary) -> f64 {
        let theirs = baseline.makespan_secs();
        if theirs <= 0.0 {
            return 0.0;
        }
        100.0 * (theirs - self.makespan_secs()) / theirs
    }

    /// `(wins, losses)` in per-job completion time vs a baseline with the
    /// same job labels (§5.4: "FlowCon reduces the completion time for 4
    /// jobs ... out of 5").
    pub fn wins_losses_vs(&self, baseline: &RunSummary) -> (usize, usize) {
        let mut wins = 0;
        let mut losses = 0;
        for c in &self.completions {
            if let Some(b) = baseline.completion_of(&c.label) {
                let ours = c.completion_secs();
                if ours < b {
                    wins += 1;
                } else if ours > b {
                    losses += 1;
                }
            }
        }
        (wins, losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, arrival: u64, finished: u64) -> CompletionRecord {
        CompletionRecord {
            label: label.into(),
            arrival: SimTime::from_secs(arrival),
            finished: SimTime::from_secs(finished),
            exit_code: 0,
        }
    }

    fn summary(policy: &str, recs: Vec<CompletionRecord>) -> RunSummary {
        RunSummary {
            policy: policy.into(),
            completions: recs,
            ..Default::default()
        }
    }

    #[test]
    fn completion_and_makespan() {
        let s = summary(
            "NA",
            vec![rec("a", 0, 390), rec("b", 40, 270), rec("c", 80, 165)],
        );
        assert_eq!(s.completion_of("c"), Some(85.0));
        assert_eq!(s.makespan_secs(), 390.0);
        assert_eq!(s.completion_of("missing"), None);
    }

    #[test]
    fn overlap_counts_concurrent_lifetime() {
        let s = summary(
            "NA",
            vec![rec("a", 0, 100), rec("b", 40, 120), rec("c", 80, 90)],
        );
        // >=2 alive: [40, 100] = 60; >=3 alive: [80, 90] = 10.
        assert!((s.overlap_secs(2) - 60.0).abs() < 1e-9);
        assert!((s.overlap_secs(3) - 10.0).abs() < 1e-9);
        assert!((s.overlap_secs(1) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_vs_baseline_matches_paper_arithmetic() {
        // §5.3: 84.7s -> 57.7s is a 31.9% reduction.
        let fc = summary("FlowCon", vec![rec("mnist", 80, 138)]); // 57.7 ≈ 58
        let na = summary("NA", vec![rec("mnist", 80, 165)]); // 84.7 ≈ 85
        let red = fc.reduction_vs(&na, "mnist").unwrap();
        assert!((red - 100.0 * (85.0 - 58.0) / 85.0).abs() < 1e-9);
    }

    #[test]
    fn wins_losses() {
        let fc = summary(
            "FlowCon",
            vec![rec("1", 0, 100), rec("2", 0, 210), rec("3", 0, 90)],
        );
        let na = summary(
            "NA",
            vec![rec("1", 0, 120), rec("2", 0, 200), rec("3", 0, 100)],
        );
        assert_eq!(fc.wins_losses_vs(&na), (2, 1));
    }

    #[test]
    fn completion_stats_mirrors_run_summary_makespan() {
        let mut stats = CompletionStats::default();
        let mut summary = RunSummary::new("NA");
        for (label, a, f) in [("a", 0u64, 390u64), ("b", 40, 270), ("c", 80, 165)] {
            stats.record_completion(SimTime::from_secs(a), SimTime::from_secs(f), 0);
            summary.record_completion(label, SimTime::from_secs(a), SimTime::from_secs(f), 0);
        }
        // One canonical makespan implementation behind both types.
        assert_eq!(
            stats.makespan_secs().to_bits(),
            summary.makespan_secs().to_bits()
        );
        assert_eq!(stats.len(), 3);
        assert!(!stats.is_empty());
        let mean = stats.mean_completion_secs().unwrap();
        assert!((mean - (390.0 + 230.0 + 85.0) / 3.0).abs() < 1e-9, "{mean}");
        assert_eq!(CompletionStats::default().mean_completion_secs(), None);
    }

    #[test]
    fn recorder_facing_construction_matches_manual() {
        let mut s = RunSummary::new("FlowCon");
        s.record_usage_sample(SimTime::from_secs(1), "job", 0.5, 1.0);
        s.record_usage_sample(SimTime::from_secs(2), "job", 0.25, 0.4);
        s.record_growth(SimTime::from_secs(2), "job", 0.01);
        assert_eq!(
            s.cpu_usage.get("job").unwrap().points(),
            &[(1.0, 0.5), (2.0, 0.25)]
        );
        assert_eq!(
            s.limits.get("job").unwrap().points(),
            &[(1.0, 1.0), (2.0, 0.4)]
        );
        assert_eq!(
            s.growth_efficiency.get("job").unwrap().points(),
            &[(2.0, 0.01)]
        );
    }

    #[test]
    fn makespan_improvement_sign() {
        let fc = summary("FlowCon", vec![rec("a", 0, 380)]);
        let na = summary("NA", vec![rec("a", 0, 394)]);
        let imp = fc.makespan_improvement_vs(&na);
        assert!(imp > 3.0 && imp < 4.0, "{imp}");
        assert!(na.makespan_improvement_vs(&fc) < 0.0);
    }
}
