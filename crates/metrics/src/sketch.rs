//! Constant-memory, mergeable streaming quantile sketch.
//!
//! [`QuantileSketch`] is a DDSketch-style relative-error sketch: a value
//! `v > 0` lands in the logarithmic bucket `ceil(ln v / ln γ)` where
//! `γ = (1 + α) / (1 − α)` for a configured relative accuracy `α`, so any
//! reported quantile is within a factor `α` of an exact order statistic.
//! Memory is bounded by the *dynamic range* of the data (one `u64` per
//! occupied bucket, stored contiguously), not by the sample count.
//!
//! # Determinism
//!
//! The sketch is built for the repo's bit-identity discipline (sharded ≡
//! sequential, asserted in `crates/cluster/tests/`):
//!
//! * Bucket keys are **integers** — no float keys, no hashing, no
//!   `HashMap` iteration order.  Counts live in a dense `Vec<u64>` whose
//!   layout is fully determined by the set of occupied keys, so two
//!   sketches fed the same multiset of samples compare equal with
//!   [`PartialEq`] regardless of insertion order or sharding.
//! * [`QuantileSketch::merge`] adds bucket counts in ascending key order;
//!   integer addition is associative and commutative, so merging
//!   per-worker sketches equals inserting every sample into one sketch.
//! * No floating-point *sum* is kept (f64 addition is not associative —
//!   a running sum would break sharded-vs-sequential bit-identity).  Only
//!   order-independent float state survives: `min`/`max`, which are
//!   associative and commutative for the finite inputs the sketch accepts.
//!
//! # Zero allocations when warm
//!
//! [`QuantileSketch::insert`] only allocates when a sample opens a bucket
//! outside the current key range; once the range of the workload is
//! covered, inserts are a key computation plus a counter bump.  The
//! `metrics/sketch/insert` bench row and the counting-allocator test in
//! `crates/cluster/tests/` pin this.

#![deny(missing_docs)]

/// Default relative accuracy: quantiles are within 1 % of an exact order
/// statistic.
pub const DEFAULT_ACCURACY: f64 = 0.01;

/// Values at or below this threshold are tracked exactly in a dedicated
/// zero bucket (a logarithmic index cannot represent 0).
const MIN_TRACKABLE: f64 = 1e-9;

/// A mergeable, constant-memory streaming quantile sketch with bounded
/// relative error (DDSketch-style logarithmic buckets).
///
/// ```
/// use flowcon_metrics::sketch::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for v in 1..=1000 {
///     s.insert(v as f64);
/// }
/// let p50 = s.quantile(0.50).unwrap();
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Configured relative accuracy `α`.
    alpha: f64,
    /// `γ = (1 + α) / (1 − α)`; bucket `k` covers `(γ^(k−1), γ^k]`.
    gamma: f64,
    /// `ln γ`, precomputed for the key computation on the insert path.
    ln_gamma: f64,
    /// Dense bucket counts; `counts[i]` is the count for key `offset + i`.
    /// The length always exactly covers `[lowest key, highest key]` seen,
    /// so the layout (and thus `PartialEq`) depends only on the sample
    /// multiset, never on insertion order.
    counts: Vec<u64>,
    /// Key of `counts[0]`.
    offset: i32,
    /// Samples `≤ MIN_TRACKABLE` (including exact zeros).
    zero_count: u64,
    /// Total samples, including the zero bucket.
    total: u64,
    /// Smallest sample seen (`+∞` when empty); quantiles clamp to it.
    min: f64,
    /// Largest sample seen (`−∞` when empty); quantiles clamp to it.
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// A sketch with the [`DEFAULT_ACCURACY`] (1 % relative error).
    pub fn new() -> Self {
        Self::with_accuracy(DEFAULT_ACCURACY)
    }

    /// A sketch whose quantiles carry relative error at most `alpha`
    /// (clamped to `(0, 0.5]`; smaller `alpha` means more buckets).
    pub fn with_accuracy(alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(1e-4, 0.5)
        } else {
            DEFAULT_ACCURACY
        };
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            counts: Vec::new(),
            offset: 0,
            zero_count: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy `α`.
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// Number of samples inserted (including merged-in samples).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the sketch has seen no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample seen, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// The logarithmic bucket key for a trackable value.
    fn key_of(&self, value: f64) -> i32 {
        (value.ln() / self.ln_gamma).ceil() as i32
    }

    /// Record one sample.
    ///
    /// Negative, NaN and infinite samples are ignored (sojourn times and
    /// queue waits are non-negative by construction; a quiet drop keeps
    /// the hot path branch-cheap).  Zero allocations once the workload's
    /// value range has been seen.
    pub fn insert(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= MIN_TRACKABLE {
            self.zero_count += 1;
            return;
        }
        let key = self.key_of(value);
        let idx = self.ensure_key(key);
        self.counts[idx] += 1;
    }

    /// Grow `counts` so `key` is addressable; returns its index.  The
    /// length is kept *exactly* `[lowest, highest]`-covering so layout is
    /// order-independent (capacity may over-allocate; `len` never does).
    fn ensure_key(&mut self, key: i32) -> usize {
        if self.counts.is_empty() {
            self.offset = key;
            self.counts.push(0);
            return 0;
        }
        if key < self.offset {
            let grow = (self.offset - key) as usize;
            self.counts.splice(0..0, std::iter::repeat(0).take(grow));
            self.offset = key;
            return 0;
        }
        let idx = (key - self.offset) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        idx
    }

    /// Merge another sketch into this one, bucket by bucket in ascending
    /// key order.
    ///
    /// Folding per-worker sketches in worker-index order yields a sketch
    /// bit-identical to inserting every sample sequentially — the property
    /// the sharded executor relies on.  Both sketches must share the same
    /// accuracy (debug-asserted; merging across accuracies would silently
    /// mis-bucket).
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "merging sketches with different accuracies"
        );
        if other.total == 0 {
            return;
        }
        self.total += other.total;
        self.zero_count += other.zero_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if !other.counts.is_empty() {
            self.ensure_key(other.offset);
            let hi_key = other.offset + (other.counts.len() - 1) as i32;
            self.ensure_key(hi_key);
            // Both ends are now addressable and `self.offset ≤ other.offset`.
            let lo = (other.offset - self.offset) as usize;
            for (i, &c) in other.counts.iter().enumerate() {
                self.counts[lo + i] += c;
            }
        }
    }

    /// The value at quantile `q ∈ [0, 1]`, or `None` when the sketch is
    /// empty.
    ///
    /// The estimate is the geometric midpoint of the bucket containing the
    /// rank-`⌊q·(n−1)⌋` sample, clamped to the observed `[min, max]` — so a
    /// single-sample sketch reports that sample exactly at every quantile,
    /// and any answer is within the configured relative accuracy of an
    /// exact order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64) as u64;
        if rank < self.zero_count {
            return Some(self.min.max(0.0).min(self.max));
        }
        let mut cum = self.zero_count;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let key = self.offset + i as i32;
                let upper = (key as f64 * self.ln_gamma).exp();
                let mid = upper * 2.0 / (1.0 + self.gamma);
                return Some(mid.clamp(self.min, self.max));
            }
        }
        // Counts always cover `total − zero_count` samples; unreachable
        // unless the invariants above are broken.
        Some(self.max)
    }

    /// Clear all samples, keeping the allocated bucket range for reuse
    /// (the recycling shape `WorkerScratch` relies on).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.offset = 0;
        self.zero_count = 0;
        self.total = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_nothing() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_is_reported_exactly_at_every_quantile() {
        let mut s = QuantileSketch::new();
        s.insert(37.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(37.5));
        }
        assert_eq!(s.min(), Some(37.5));
        assert_eq!(s.max(), Some(37.5));
    }

    #[test]
    fn zeros_land_in_the_zero_bucket() {
        let mut s = QuantileSketch::new();
        for _ in 0..9 {
            s.insert(0.0);
        }
        s.insert(100.0);
        assert_eq!(s.count(), 10);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
    }

    #[test]
    fn relative_error_is_bounded_on_a_uniform_ramp() {
        let mut s = QuantileSketch::new();
        let n = 10_000;
        for i in 1..=n {
            s.insert(i as f64);
        }
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = (q * (n - 1) as f64) as usize as f64 + 1.0;
            let got = s.quantile(q).unwrap();
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.02, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
    }

    #[test]
    fn non_finite_and_negative_samples_are_ignored() {
        let mut s = QuantileSketch::new();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        s.insert(-1.0);
        assert!(s.is_empty());
        s.insert(2.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_equals_sequential_insert_bit_for_bit() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 991) as f64 / 7.0).collect();
        let mut sequential = QuantileSketch::new();
        for &v in &values {
            sequential.insert(v);
        }
        let mut merged = QuantileSketch::new();
        for chunk in values.chunks(61) {
            let mut shard = QuantileSketch::new();
            for &v in chunk {
                shard.insert(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(sequential, merged);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                sequential.quantile(q).unwrap().to_bits(),
                merged.quantile(q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn merge_into_empty_adopts_the_other_sketch() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        b.insert(5.0);
        b.insert(0.0);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn reset_recycles_without_leaking_state() {
        let mut s = QuantileSketch::new();
        s.insert(10.0);
        s.insert(0.0);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        s.insert(3.0);
        assert_eq!(s.quantile(0.5), Some(3.0));
    }

    #[test]
    fn layout_is_insertion_order_independent() {
        let mut up = QuantileSketch::new();
        let mut down = QuantileSketch::new();
        let values = [0.5, 2.0, 80.0, 1000.0, 7.25];
        for &v in &values {
            up.insert(v);
        }
        for &v in values.iter().rev() {
            down.insert(v);
        }
        assert_eq!(up, down);
    }

    #[test]
    fn warm_inserts_do_not_allocate_new_buckets() {
        let mut s = QuantileSketch::new();
        for i in 1..=100 {
            s.insert(i as f64);
        }
        let len = s.counts.len();
        let cap = s.counts.capacity();
        for i in 1..=100 {
            s.insert(i as f64);
        }
        assert_eq!(s.counts.len(), len);
        assert_eq!(s.counts.capacity(), cap);
    }
}
