//! Placement strategies.
//!
//! When a job is submitted the manager must pick a worker.  Like real
//! cluster managers (and unlike an oracle), strategies only see what has
//! been *submitted*: how many jobs each worker has been assigned and the
//! demand those jobs declared — not how far along they are.

use flowcon_dl::models::ModelSpec;
use flowcon_dl::workload::JobRequest;

/// What the manager knows about each worker at placement time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLoad {
    /// Jobs assigned so far.
    pub jobs_assigned: usize,
    /// Sum of declared total work (CPU-seconds) assigned so far.
    pub work_assigned: f64,
}

/// A placement strategy: pick a worker index for the next job.
pub trait PlacementStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// Choose a worker in `0..loads.len()`.
    fn place(&mut self, job: &JobRequest, loads: &[WorkerLoad]) -> usize;
}

/// Cycle through workers in order.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    next: usize,
}

impl PlacementStrategy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn place(&mut self, _job: &JobRequest, loads: &[WorkerLoad]) -> usize {
        assert!(!loads.is_empty());
        let idx = self.next % loads.len();
        self.next = self.next.wrapping_add(1);
        idx
    }
}

/// Fewest assigned jobs first (docker swarm's "spread").
#[derive(Debug, Default, Clone)]
pub struct Spread;

impl PlacementStrategy for Spread {
    fn name(&self) -> &'static str {
        "spread"
    }
    fn place(&mut self, _job: &JobRequest, loads: &[WorkerLoad]) -> usize {
        assert!(!loads.is_empty());
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.jobs_assigned)
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

/// Least total declared work first — a resource-aware spread (in the spirit
/// of the authors' earlier DRAPS placement work, reference \[28]).
#[derive(Debug, Default, Clone)]
pub struct LeastLoaded;

impl PlacementStrategy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }
    fn place(&mut self, _job: &JobRequest, loads: &[WorkerLoad]) -> usize {
        assert!(!loads.is_empty());
        loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.work_assigned
                    .partial_cmp(&b.work_assigned)
                    .expect("finite work")
            })
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

/// Update a worker's load after assigning `job` to it.
pub fn record_assignment(load: &mut WorkerLoad, job: &JobRequest) {
    load.jobs_assigned += 1;
    load.work_assigned += ModelSpec::of(job.model).total_work;
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcon_dl::ModelId;
    use flowcon_sim::time::SimTime;

    fn job(model: ModelId) -> JobRequest {
        JobRequest::new("j", model, SimTime::ZERO)
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let loads = vec![WorkerLoad::default(); 3];
        let picks: Vec<usize> = (0..6)
            .map(|_| rr.place(&job(ModelId::Gru), &loads))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn spread_prefers_fewest_jobs() {
        let mut s = Spread;
        let mut loads = vec![WorkerLoad::default(); 2];
        loads[0].jobs_assigned = 3;
        assert_eq!(s.place(&job(ModelId::Gru), &loads), 1);
    }

    #[test]
    fn least_loaded_prefers_least_work() {
        let mut s = LeastLoaded;
        let mut loads = vec![WorkerLoad::default(); 3];
        loads[0].work_assigned = 100.0;
        loads[1].work_assigned = 20.0;
        loads[2].work_assigned = 50.0;
        assert_eq!(s.place(&job(ModelId::Vae), &loads), 1);
    }

    #[test]
    fn record_assignment_accumulates() {
        let mut load = WorkerLoad::default();
        record_assignment(&mut load, &job(ModelId::Gru));
        assert_eq!(load.jobs_assigned, 1);
        assert!(load.work_assigned > 0.0);
    }
}
