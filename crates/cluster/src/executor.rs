//! The sharded cluster executor: a bounded, work-stealing-free thread pool.
//!
//! `Manager::run` used to spawn one OS thread per worker node, which caps
//! cluster experiments at a few dozen nodes.  This module generalizes the
//! shared-cursor pool that `flowcon-bench` used for parameter sweeps into a
//! reusable executor: at most [`std::thread::available_parallelism`] OS
//! threads (the *shards*) pull items off an atomic cursor, so a
//! 1000-worker cluster runs on an 8-way machine with 8 threads.
//!
//! The executor's distinguishing feature over a plain `parallel_map` is
//! **per-shard state**: each shard owns one `S` created by `init` and
//! threads it through every item it processes ([`map_sharded`]).  The
//! cluster manager uses this to recycle one
//! [`flowcon_core::worker::WorkerScratch`] per shard across the hundreds of
//! worker simulations that shard drives, so worker hot-path buffers are
//! reused instead of reallocated per simulation.
//!
//! Items are claimed in input order and results land in their input slot,
//! so output order is deterministic regardless of thread scheduling — and
//! because each simulation is itself deterministic, a sharded cluster run
//! is bit-identical to the legacy thread-per-worker path (pinned by
//! `crates/cluster/tests/cluster_scale.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of pool shards for `n` items: `available_parallelism` capped by
/// the item count (and at least 1).
pub fn shard_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n)
        .max(1)
}

/// Run `f` over `inputs` on a bounded pool, preserving input order of
/// results.  Stateless convenience wrapper over [`map_sharded`].
pub fn map_bounded<T, O, F>(inputs: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    map_sharded(inputs, || (), |(), item| f(item))
}

/// Run `f` over `inputs` on a bounded pool with per-shard state, preserving
/// input order of results.
///
/// Each of the at most [`shard_count`]`(inputs.len())` OS threads calls
/// `init` once, then claims items off a shared cursor and runs
/// `f(&mut state, item)` — the shard's state is reused across every item
/// the shard processes.  The degenerate single-shard case runs inline on
/// the caller's thread (no spawn at all).
pub fn map_sharded<T, S, O, I, F>(inputs: Vec<T>, init: I, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let shards = shard_count(n);
    if shards == 1 {
        let mut state = init();
        return inputs.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // Shared-cursor claim loop: each shard takes the next unclaimed index,
    // computes the item, and writes the result into its slot, so output
    // order always matches input order regardless of scheduling.  The
    // per-item mutexes are uncontended by construction (each index is
    // claimed exactly once) — they only exist to keep this crate
    // `forbid(unsafe_code)`.
    let cells: Vec<Mutex<Option<T>>> = inputs
        .into_iter()
        .map(|input| Mutex::new(Some(input)))
        .collect();
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..shards {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let input = cells[i]
                        .lock()
                        .expect("cell mutex poisoned")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let out = f(&mut state, input);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot filled by a shard")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_bounded_preserves_order() {
        let out = map_bounded((0..32).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_bounded_handles_many_more_items_than_cores() {
        // 1000 items must not spawn 1000 threads; the bounded pool finishes
        // with at most `available_parallelism` shards.
        let out = map_bounded((0..1000).collect(), |x: u64| x * x);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64).pow(2)));
    }

    #[test]
    fn map_bounded_empty_and_single() {
        assert!(map_bounded(Vec::<u8>::new(), |x: u8| x).is_empty());
        assert_eq!(map_bounded(vec![7], |x: u8| x + 1), vec![8]);
    }

    #[test]
    fn shard_state_is_initialized_once_per_shard_and_reused() {
        let inits = AtomicUsize::new(0);
        let out = map_sharded(
            (0..257).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |seen, item| {
                seen.push(item);
                (item, seen.len())
            },
        );
        // Every item processed exactly once, in order.
        assert!(out.iter().enumerate().all(|(i, &(item, _))| item == i));
        // States created once per shard, not once per item.
        let shards = shard_count(257);
        assert_eq!(inits.load(Ordering::Relaxed), shards);
        // At least one shard processed more than one item (257 > shards),
        // i.e. state really is carried across items.
        assert!(out.iter().any(|&(_, len)| len > 1) || shards == 257);
    }

    #[test]
    fn shard_count_is_bounded_by_items_and_positive() {
        assert_eq!(shard_count(1), 1);
        assert!(shard_count(0) >= 1);
        assert!(shard_count(100_000) <= 1024, "bounded by the machine");
    }
}
