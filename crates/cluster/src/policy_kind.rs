//! Policy selection for workers.

use flowcon_core::config::FlowConConfig;
use flowcon_core::policy::{
    FairSharePolicy, FlowConPolicy, QualityProportionalPolicy, ResourcePolicy, StaticEqualPolicy,
};
use flowcon_sim::time::SimDuration;

/// A constructible description of a worker-side policy.
///
/// The manager hands one of these to every worker; each worker builds its
/// own policy instance (policies are stateful and worker-local).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// FlowCon with the given configuration.
    FlowCon(FlowConConfig),
    /// The NA baseline (free competition).
    Baseline,
    /// Hard equal 1/n partitioning.
    StaticEqual,
    /// SLAQ-like quality-proportional shares on a fixed interval.
    QualityProportional {
        /// Reconfiguration interval in seconds.
        interval_secs: u64,
        /// Minimum share floor.
        floor: f64,
    },
}

impl PolicyKind {
    /// Build a fresh policy instance.
    pub fn build(&self) -> Box<dyn ResourcePolicy> {
        match *self {
            PolicyKind::FlowCon(config) => Box::new(FlowConPolicy::new(config)),
            PolicyKind::Baseline => Box::new(FairSharePolicy::new()),
            PolicyKind::StaticEqual => Box::new(StaticEqualPolicy::new()),
            PolicyKind::QualityProportional {
                interval_secs,
                floor,
            } => Box::new(QualityProportionalPolicy::new(
                SimDuration::from_secs(interval_secs),
                floor,
            )),
        }
    }

    /// Build a fresh policy instance behind a `Send` box.
    ///
    /// The cluster scheduler keeps one live policy per node and moves the
    /// node sims across executor shards between quanta, so those boxes
    /// must be `Send` (every built-in policy is plain data).
    pub fn build_send(&self) -> Box<dyn ResourcePolicy + Send> {
        match *self {
            PolicyKind::FlowCon(config) => Box::new(FlowConPolicy::new(config)),
            PolicyKind::Baseline => Box::new(FairSharePolicy::new()),
            PolicyKind::StaticEqual => Box::new(StaticEqualPolicy::new()),
            PolicyKind::QualityProportional {
                interval_secs,
                floor,
            } => Box::new(QualityProportionalPolicy::new(
                SimDuration::from_secs(interval_secs),
                floor,
            )),
        }
    }

    /// Display name of the built policy.
    pub fn name(&self) -> String {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_distinct_policies() {
        assert_eq!(PolicyKind::Baseline.name(), "NA");
        assert_eq!(
            PolicyKind::FlowCon(FlowConConfig::with_params(0.05, 20)).name(),
            "FlowCon-5%-20"
        );
        assert_eq!(PolicyKind::StaticEqual.name(), "Static-1/n");
        assert!(PolicyKind::QualityProportional {
            interval_secs: 30,
            floor: 0.05
        }
        .name()
        .starts_with("QualityProp"));
    }

    #[test]
    fn each_build_is_fresh_state() {
        let kind = PolicyKind::FlowCon(FlowConConfig::default());
        let a = kind.build();
        let b = kind.build();
        assert_eq!(a.name(), b.name());
    }
}
