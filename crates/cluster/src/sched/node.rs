//! The pausable node-local FlowCon simulation driven by the scheduler's
//! quantum barriers.
//!
//! Each [`NodeSim`] is the dense worker sim
//! (`flowcon_core::dense`) reshaped for *online* control: instead of an
//! event queue draining a fixed plan, the node holds a small slot arena
//! of running jobs and exposes three verbs to the engine — `admit`,
//! `preempt`, and `advance_to(barrier)`.  Between barriers the node
//! integrates its fluid state exactly like the dense path (water-filling
//! rates, contention efficiency, FlowCon policy ticks at their own
//! cadence), so per-node physics are identical; only job arrival and
//! departure are externally driven.
//!
//! `advance_to` is a pure function of the node's own state: no shared
//! memory, no RNG outside the node's private stream.  That is what makes
//! the engine's sequential and sharded advance modes bit-identical
//! (pinned by `crates/cluster/tests/sched_determinism.rs`).

use flowcon_container::{ContainerId, ResourceLimits, UpdateOptions, Workload};
use flowcon_core::config::NodeConfig;
use flowcon_core::metric::{progress_score, GrowthMeasurement};
use flowcon_core::policy::ResourcePolicy;
use flowcon_dl::{ModelId, ModelSpec, TrainingJob};
use flowcon_sim::alloc::{waterfill_soft_into, AllocRequest, WaterfillScratch};
use flowcon_sim::rng::SimRng;
use flowcon_sim::time::{SimDuration, SimTime};
use flowcon_sim::trace::{NoopTracer, TraceKind, Tracer};
use flowcon_sim::{ResourceKind, ResourceVec, RESOURCE_KINDS};

use super::policy::RunningJobView;

/// Must match `monitor::MIN_INTERVAL_SECS` (measurement reuse window).
const MIN_INTERVAL_SECS: f64 = 0.1;

/// Remaining work at or below this is "finished" — keeps the inner
/// advance loop from chasing femtosecond tails.
const EPS_REMAINING: f64 = 1e-9;

/// A job completion observed by a node mid-quantum, at its exact time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeCompletion {
    pub(crate) gid: u32,
    pub(crate) arrival: SimTime,
    pub(crate) finished: SimTime,
}

/// What `preempt` hands back to the engine: enough to requeue and later
/// resume the job elsewhere.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreemptedJob {
    pub(crate) model: ModelId,
    /// Remaining work as a fraction of the catalog total (becomes the
    /// resumed job's `work_scale`).
    pub(crate) remaining_scale: f64,
    /// Total effective CPU-seconds attained across all placements.
    pub(crate) attained_cpu_secs: f64,
    /// Original submission time.
    pub(crate) arrival: SimTime,
}

/// Dense mirror of the container monitor's per-container state.
#[derive(Debug, Clone, Copy)]
struct Mon {
    tracked: bool,
    last_tick: SimTime,
    last_eval: Option<f64>,
    last_cumulative: ResourceVec,
    cached_progress: Option<f64>,
    cached_avg_usage: ResourceVec,
}

impl Mon {
    const UNTRACKED: Mon = Mon {
        tracked: false,
        last_tick: SimTime::ZERO,
        last_eval: None,
        last_cumulative: ResourceVec::ZERO,
        cached_progress: None,
        cached_avg_usage: ResourceVec::ZERO,
    };
}

/// One occupied job slot.  The slot index is the container id the
/// node-local `ResourcePolicy` sees.
#[derive(Debug)]
struct Slot {
    gid: u32,
    model: ModelId,
    job: TrainingJob,
    limits: ResourceLimits,
    arrival: SimTime,
    placed_at: SimTime,
    rem_at_place: f64,
    base_attained: f64,
    cumulative: ResourceVec,
    mon: Mon,
}

impl Slot {
    fn remaining(&self) -> f64 {
        self.job.remaining_cpu_seconds().unwrap_or(0.0)
    }

    fn attained(&self) -> f64 {
        self.base_attained + (self.rem_at_place - self.remaining()).max(0.0)
    }
}

/// One node of the scheduled cluster: slot arena + node-local FlowCon
/// policy + private RNG, advanced barrier-to-barrier by the engine.
///
/// Each node owns a **per-shard flight recorder** (`tracer`, forked from
/// the run's tracer): node-local events recorded during a parallel
/// `advance_to` are a pure function of the node's own state, and the
/// engine drains them back in node-index order at every barrier — which
/// is why sharded and sequential traced runs merge to identical
/// sequences.
pub(crate) struct NodeSim<T: Tracer = NoopTracer> {
    cfg: NodeConfig,
    policy: Box<dyn ResourcePolicy + Send>,
    rng: SimRng,
    now: SimTime,
    /// Next node-local policy reconfiguration, if one is scheduled.
    next_tick: Option<SimTime>,
    slots: Vec<Option<Slot>>,
    live: usize,
    /// ∫ allocated CPU rate dt (for utilization).
    pub(crate) busy_cpu_secs: f64,
    /// ∫ live jobs dt (for mean queue depth).
    pub(crate) live_job_secs: f64,
    pub(crate) algorithm_runs: u64,
    pub(crate) update_calls: u64,
    /// Completions since the engine last drained them, in time order.
    pub(crate) completions: Vec<NodeCompletion>,
    /// Per-node flight recorder, drained by the engine at each barrier.
    pub(crate) tracer: T,
    /// This node's index, stamped into its trace events.
    trace_id: u32,
    /// Cumulative water-filling invocations (trace counter payload).
    waterfill_runs: u64,
    // Recycled hot-path buffers.
    alloc: WaterfillScratch,
    requests: Vec<AllocRequest>,
    order: Vec<usize>,
    rates: Vec<f64>,
    effs: Vec<f64>,
    measures: Vec<GrowthMeasurement>,
    pool_ids: Vec<ContainerId>,
    updates: Vec<(ContainerId, f64)>,
}

impl<T: Tracer> NodeSim<T> {
    pub(crate) fn new(
        cfg: NodeConfig,
        policy: Box<dyn ResourcePolicy + Send>,
        slots: usize,
        tracer: T,
        trace_id: u32,
    ) -> Self {
        assert!(slots > 0, "a node needs at least one job slot");
        Self {
            cfg,
            policy,
            rng: SimRng::new(cfg.seed),
            now: SimTime::ZERO,
            next_tick: None,
            slots: (0..slots).map(|_| None).collect(),
            live: 0,
            busy_cpu_secs: 0.0,
            live_job_secs: 0.0,
            algorithm_runs: 0,
            update_calls: 0,
            completions: Vec::new(),
            tracer,
            trace_id,
            waterfill_runs: 0,
            alloc: WaterfillScratch::default(),
            requests: Vec::new(),
            order: Vec::new(),
            rates: Vec::new(),
            effs: Vec::new(),
            measures: Vec::new(),
            pool_ids: Vec::new(),
            updates: Vec::new(),
        }
    }

    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Append one [`RunningJobView`] per occupied slot, in slot order.
    pub(crate) fn fill_views(&self, out: &mut Vec<RunningJobView>) {
        for slot in self.slots.iter().flatten() {
            out.push(RunningJobView {
                id: slot.gid,
                attained_cpu_secs: slot.attained(),
                placed_at: slot.placed_at,
            });
        }
    }

    /// Admit a job into the lowest free slot at the node's current time.
    ///
    /// `work_scale` is relative to the catalog spec (1.0 for a fresh
    /// job, the remaining fraction for a resumed one); `base_attained`
    /// carries service from earlier placements.  Panics if the node is
    /// full — the engine validates placements before applying them.
    pub(crate) fn admit(
        &mut self,
        gid: u32,
        model: ModelId,
        work_scale: f64,
        arrival: SimTime,
        base_attained: f64,
    ) {
        let now = self.now;
        let idx = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .expect("scheduler placed a job on a full node");
        let spec = ModelSpec::of(model).scaled_by(work_scale);
        // Same RNG protocol as the worker sim's admission: the ±3% work
        // jitter models checkpoint-restore noise on resume.
        let job = TrainingJob::with_label(spec, String::new(), &mut self.rng);
        let rem = job.remaining_cpu_seconds().unwrap_or(0.0);
        self.slots[idx] = Some(Slot {
            gid,
            model,
            job,
            limits: ResourceLimits::unlimited(),
            arrival,
            placed_at: now,
            rem_at_place: rem,
            base_attained,
            cumulative: ResourceVec::ZERO,
            mon: Mon::UNTRACKED,
        });
        self.live += 1;

        self.rebuild_pool_ids();
        let pool_ids = std::mem::take(&mut self.pool_ids);
        let interrupt = self.policy.on_pool_change(now, &pool_ids);
        self.pool_ids = pool_ids;
        if interrupt {
            self.reconfigure(now);
        } else if self.live == 1 {
            self.next_tick = self
                .policy
                .initial_interval()
                .filter(|d| *d > SimDuration::ZERO)
                .map(|d| now + d);
        }
    }

    /// Checkpoint a running job out of its slot.
    pub(crate) fn preempt(&mut self, gid: u32) -> PreemptedJob {
        let now = self.now;
        let idx = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.gid == gid))
            .expect("scheduler preempted a job this node does not run");
        let slot = self.slots[idx]
            .take()
            .expect("slot occupancy checked above");
        self.live -= 1;

        let rem = slot.remaining();
        let total = ModelSpec::of(slot.model).total_work;
        let out = PreemptedJob {
            model: slot.model,
            remaining_scale: (rem / total).max(f64::MIN_POSITIVE),
            attained_cpu_secs: slot.attained(),
            arrival: slot.arrival,
        };

        self.rebuild_pool_ids();
        let pool_ids = std::mem::take(&mut self.pool_ids);
        let interrupt = self.policy.on_pool_change(now, &pool_ids);
        self.pool_ids = pool_ids;
        if self.live == 0 {
            self.next_tick = None;
        } else if interrupt {
            self.reconfigure(now);
        }
        out
    }

    /// Integrate the node's fluid state forward to `barrier`, completing
    /// jobs at their exact finish times and running policy ticks at
    /// their own cadence.  Pure in the node's own state.
    pub(crate) fn advance_to(&mut self, barrier: SimTime) {
        debug_assert!(barrier >= self.now, "barrier in the past");
        while self.now < barrier {
            if self.live == 0 {
                break;
            }
            self.recompute_rates();

            // Next stop: the barrier, the policy tick, or the earliest
            // projected completion (with the worker sim's 1 µs margin so
            // integration strictly crosses the finish line).
            let mut target = barrier;
            if let Some(tick) = self.next_tick {
                if tick < target {
                    target = tick;
                }
            }
            let window = barrier.saturating_since(self.now).as_secs_f64();
            let mut eta_best: Option<f64> = None;
            for (k, &idx) in self.order.iter().enumerate() {
                let slot = self.slots[idx]
                    .as_ref()
                    .expect("order tracks occupied slots");
                let speed = self.rates[k] * self.effs[k];
                if speed > 1e-12 {
                    let eta = slot.remaining() / speed;
                    eta_best = Some(eta_best.map_or(eta, |b: f64| b.min(eta)));
                }
            }
            if let Some(eta) = eta_best {
                if eta <= window {
                    let at =
                        self.now + SimDuration::from_secs_f64(eta) + SimDuration::from_micros(1);
                    if at < target {
                        target = at;
                    }
                }
            }

            let dt = target.saturating_since(self.now).as_secs_f64();
            if dt > 0.0 {
                for (k, &idx) in self.order.iter().enumerate() {
                    let rate = self.rates[k];
                    let eff = self.effs[k];
                    let slot = self.slots[idx]
                        .as_mut()
                        .expect("order tracks occupied slots");
                    let mut usage = slot.job.footprint();
                    usage.set(ResourceKind::Cpu, rate);
                    slot.cumulative += usage.scale(dt);
                    slot.job.advance(target, rate * eff * dt);
                    self.busy_cpu_secs += rate * dt;
                }
                self.live_job_secs += self.live as f64 * dt;
            }
            self.now = target;

            // Collect exact-time completions.
            let mut exited = false;
            for idx in 0..self.slots.len() {
                let done = self.slots[idx]
                    .as_ref()
                    .is_some_and(|s| s.remaining() <= EPS_REMAINING);
                if done {
                    let slot = self.slots[idx].take().expect("occupancy checked above");
                    self.live -= 1;
                    exited = true;
                    self.completions.push(NodeCompletion {
                        gid: slot.gid,
                        arrival: slot.arrival,
                        finished: self.now,
                    });
                }
            }
            if exited {
                self.rebuild_pool_ids();
                let pool_ids = std::mem::take(&mut self.pool_ids);
                let interrupt = self.policy.on_pool_change(self.now, &pool_ids);
                self.pool_ids = pool_ids;
                if self.live == 0 {
                    self.next_tick = None;
                } else if interrupt {
                    self.reconfigure(self.now);
                }
            }
            if self.next_tick.is_some_and(|tick| tick <= self.now) && self.live > 0 {
                self.reconfigure(self.now);
            }
        }
        self.now = barrier;
    }

    /// Water-fill the node capacity over the occupied slots (identical
    /// math to the dense worker path: soft limits, then contention
    /// efficiency per container).
    fn recompute_rates(&mut self) {
        self.waterfill_runs += 1;
        if T::ENABLED {
            self.tracer.counter(
                self.now,
                TraceKind::Waterfill,
                self.trace_id,
                self.waterfill_runs as f64,
            );
        }
        self.order.clear();
        self.requests.clear();
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(slot) = slot {
                self.order.push(idx);
                self.requests.push(AllocRequest {
                    limit: slot.limits.cpu_limit(),
                    demand: slot.job.demand(),
                    weight: 1.0,
                });
            }
        }
        waterfill_soft_into(&mut self.alloc, self.cfg.capacity, &self.requests);
        self.rates.clear();
        self.rates.extend_from_slice(self.alloc.rates());
        let n = self.order.len();
        self.effs.clear();
        self.effs.extend(self.requests.iter().map(|r| {
            let shaped = r.limit < 0.999;
            self.cfg.contention.container_efficiency(n, shaped)
        }));
    }

    fn rebuild_pool_ids(&mut self) {
        self.pool_ids.clear();
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.is_some() {
                self.pool_ids.push(ContainerId::from_raw(idx as u32));
            }
        }
    }

    /// Mirror of the dense monitor's `measure_into` over the slot arena.
    fn measure_into(&mut self, now: SimTime) {
        self.measures.clear();
        for idx in 0..self.slots.len() {
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            let id = ContainerId::from_raw(idx as u32);
            let eval_now = slot.job.eval(now);
            let cumulative = slot.cumulative;
            let limit = slot.limits.cpu_limit();
            let m = &mut slot.mon;
            let measurement = if !m.tracked {
                *m = Mon {
                    tracked: true,
                    last_tick: now,
                    last_eval: eval_now,
                    last_cumulative: cumulative,
                    cached_progress: None,
                    cached_avg_usage: ResourceVec::ZERO,
                };
                GrowthMeasurement {
                    id,
                    progress: None,
                    avg_usage: ResourceVec::ZERO,
                    cpu_limit: limit,
                }
            } else {
                let dt = now.saturating_since(m.last_tick).as_secs_f64();
                if dt < MIN_INTERVAL_SECS {
                    GrowthMeasurement {
                        id,
                        progress: m.cached_progress,
                        avg_usage: m.cached_avg_usage,
                        cpu_limit: limit,
                    }
                } else {
                    let mut avg_usage = ResourceVec::ZERO;
                    for kind in RESOURCE_KINDS {
                        avg_usage.set(
                            kind,
                            (cumulative.get(kind) - m.last_cumulative.get(kind)) / dt,
                        );
                    }
                    let progress = match (eval_now, m.last_eval) {
                        (Some(e), Some(p)) => progress_score(e, p, dt),
                        _ => None,
                    };
                    m.last_tick = now;
                    m.last_eval = eval_now.or(m.last_eval);
                    m.last_cumulative = cumulative;
                    m.cached_progress = progress;
                    m.cached_avg_usage = avg_usage;
                    GrowthMeasurement {
                        id,
                        progress,
                        avg_usage,
                        cpu_limit: limit,
                    }
                }
            };
            self.measures.push(measurement);
        }
    }

    /// Run one node-local policy reconfiguration and reschedule its tick.
    fn reconfigure(&mut self, now: SimTime) {
        if T::ENABLED {
            self.tracer
                .span_begin(now, TraceKind::Reconfigure, self.live as u32, self.trace_id);
        }
        self.measure_into(now);
        self.updates.clear();
        let measures = std::mem::take(&mut self.measures);
        let mut updates = std::mem::take(&mut self.updates);
        let next = self.policy.reconfigure_into(now, &measures, &mut updates);
        self.algorithm_runs += 1;
        for &(id, limit) in updates.iter() {
            let idx = id.index();
            if idx < self.slots.len() {
                if let Some(slot) = self.slots[idx].as_mut() {
                    let opts = UpdateOptions::new().cpus(limit);
                    slot.limits = opts.apply_to(slot.limits);
                    self.update_calls += 1;
                }
            }
        }
        self.measures = measures;
        self.updates = updates;
        self.next_tick = next.filter(|d| *d > SimDuration::ZERO).map(|d| now + d);
        if T::ENABLED {
            self.tracer
                .span_end(now, TraceKind::Reconfigure, self.live as u32, self.trace_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy_kind::PolicyKind;
    use flowcon_core::config::FlowConConfig;

    fn node(slots: usize) -> NodeSim {
        NodeSim::new(
            NodeConfig::default().with_seed(0xF10C),
            PolicyKind::FlowCon(FlowConConfig::default()).build_send(),
            slots,
            NoopTracer,
            0,
        )
    }

    #[test]
    fn an_admitted_job_runs_to_completion_mid_quantum() {
        let mut sim = node(2);
        sim.admit(0, ModelId::MnistTorch, 0.05, SimTime::ZERO, 0.0);
        assert!(!sim.is_idle());
        // A heavily scaled-down job finishes well inside a huge barrier.
        sim.advance_to(SimTime::from_secs(100_000));
        assert!(sim.is_idle());
        assert_eq!(sim.completions.len(), 1);
        let c = sim.completions[0];
        assert_eq!(c.gid, 0);
        assert!(c.finished > SimTime::ZERO);
        assert!(c.finished < SimTime::from_secs(100_000));
        assert!(sim.busy_cpu_secs > 0.0);
    }

    #[test]
    fn preempt_returns_remaining_work_and_attained_service() {
        let mut sim = node(1);
        sim.admit(7, ModelId::MnistTorch, 1.0, SimTime::from_secs(3), 0.0);
        sim.advance_to(SimTime::from_secs(50));
        let p = sim.preempt(7);
        assert!(sim.is_idle());
        assert_eq!(p.arrival, SimTime::from_secs(3));
        assert!(
            p.attained_cpu_secs > 0.0,
            "50 s of solo running attains service"
        );
        assert!(p.remaining_scale > 0.0 && p.remaining_scale < 1.1);
        // Attained + remaining ≈ the jittered total (±3%).
        let total = ModelSpec::of(ModelId::MnistTorch).total_work;
        let recon = p.attained_cpu_secs + p.remaining_scale * total;
        assert!(
            (recon / total - 1.0).abs() < 0.05,
            "recon={recon} total={total}"
        );
    }

    #[test]
    fn advance_is_deterministic_for_the_same_inputs() {
        let run = || {
            let mut sim = node(2);
            sim.admit(0, ModelId::MnistTorch, 0.2, SimTime::ZERO, 0.0);
            sim.admit(1, ModelId::Vae, 0.1, SimTime::ZERO, 0.0);
            sim.advance_to(SimTime::from_secs(200_000));
            (
                sim.completions
                    .iter()
                    .map(|c| (c.gid, c.finished))
                    .collect::<Vec<_>>(),
                sim.busy_cpu_secs.to_bits(),
                sim.algorithm_runs,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn idle_advance_is_a_no_op() {
        let mut sim = node(2);
        sim.advance_to(SimTime::from_secs(500));
        assert!(sim.is_idle());
        assert_eq!(sim.busy_cpu_secs, 0.0);
        assert!(sim.completions.is_empty());
    }
}
